#!/usr/bin/env python3
"""vbsrm-lint: project-invariant checker for the vbsrm C++ tree.

The reproduction's correctness story depends on invariants no compiler
enforces: all special-function and randomness calls flow through the
deterministic wrappers in src/math/specfun.hpp and src/random/, log-space
weights are combined with math::log_sum_exp instead of naked exp(),
library code never writes to stdout, and every header is include-guarded.
This linter greps for violations of that catalog and fails the build
(it runs as a ctest) unless the hit is listed in the checked-in
allowlist.

Usage:
  vbsrm_lint.py [--root DIR]... [--allowlist FILE] [--json] [--list-rules]

Exit status: 0 = clean (or every hit allowlisted), 1 = violations,
2 = usage error.

Allowlist format (tools/lint/allowlist.txt): one entry per line,
  <rule-id> <path-suffix> [# comment]
Blank lines and lines starting with '#' are ignored.  An entry suppresses
every hit of <rule-id> in any file whose project-relative path ends with
<path-suffix>.  Keep entries narrow (full relative paths) and commented.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# --- rule catalog -----------------------------------------------------------

# Each rule: id, human message, regex over a comment/string-stripped line,
# and a predicate over the project-relative posix path saying whether the
# rule applies to that file at all.


def _in_dir(*prefixes: str):
    def pred(relpath: str) -> bool:
        return any(relpath.startswith(p) for p in prefixes)

    return pred


def _library_code(relpath: str) -> bool:
    """src/ except the executables (serve_main is a CLI front end)."""
    return relpath.startswith("src/")


RULES = [
    {
        "id": "specfun-wrapper",
        "message": "call std::lgamma/std::tgamma via math::log_gamma "
                   "(src/math/specfun.hpp); libm gamma functions are not "
                   "bit-reproducible across platforms",
        "regex": re.compile(r"(?:std::|[^\w:.])l?tgamma\s*\(|(?:std::|[^\w:.])lgamma\s*\("),
        "applies": _library_code,
    },
    {
        "id": "random-wrapper",
        "message": "use random::Rng (src/random/rng.hpp); std::rand/"
                   "random_device/mt19937 draws are not reproducible",
        "regex": re.compile(
            r"std::rand\b|[^\w:.]srand\s*\(|random_device|std::mt19937"),
        "applies": _library_code,
    },
    {
        "id": "wall-clock-seed",
        "message": "do not derive state from time(); seeds are explicit "
                   "(determinism invariant; wall-clock only via "
                   "std::chrono for latency metrics)",
        "regex": re.compile(r"[^\w:.]time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
        "applies": _library_code,
    },
    {
        "id": "naked-exp-log-weight",
        "message": "summing exp(log-weight) overflows/underflows; combine "
                   "log-space weights with math::log_sum_exp",
        "regex": re.compile(
            r"(?:std::|[^\w.])exp\s*\(\s*log_?w(?:eight)?s?\b"),
        "applies": _library_code,
    },
    {
        "id": "include-guard",
        "message": "header lacks #pragma once (or a classic include guard)",
        "regex": None,  # whole-file check, see lint_file
        "applies": _library_code,
    },
    {
        "id": "stdout-in-library",
        "message": "no stdout/stderr writes in library code; return values "
                   "or throw — only CLI front ends print",
        "regex": re.compile(
            r"std::cout|std::cerr|(?:std::|[^\w.])\bf?printf\s*\(|std::puts\b"),
        "applies": _library_code,
    },
    {
        "id": "catch-by-value",
        "message": "catch exceptions by const reference, not by value "
                   "(slicing, extra copy)",
        "regex": re.compile(
            r"catch\s*\(\s*(?!\.\.\.)[\w:<>]+(?:\s*<[^)]*>)?\s+\w+\s*\)"),
        "applies": _library_code,
    },
]

CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".hh"}
HEADER_SUFFIXES = {".hpp", ".h", ".hh"}


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines.

    A linter that fires on prose in comments is a linter people turn
    off; the rules only ever see code.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            inner = "".join(ch if ch == "\n" else " " for ch in text[i + 1:j - 1])
            out.append(quote + inner + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


GUARD_RE = re.compile(
    r"^\s*#\s*ifndef\s+(\w+)\s*\n\s*#\s*define\s+\1\b", re.MULTILINE)


def lint_file(path: Path, relpath: str) -> list[dict]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [{"rule": "io-error", "path": relpath, "line": 0,
                 "message": str(e), "snippet": ""}]
    findings = []
    code = strip_comments_and_strings(text)

    if path.suffix in HEADER_SUFFIXES:
        rule = next(r for r in RULES if r["id"] == "include-guard")
        if rule["applies"](relpath) and "#pragma once" not in text \
                and not GUARD_RE.search(text):
            findings.append({"rule": "include-guard", "path": relpath,
                             "line": 1, "message": rule["message"],
                             "snippet": ""})

    lines = code.splitlines()
    raw_lines = text.splitlines()
    for rule in RULES:
        if rule["regex"] is None or not rule["applies"](relpath):
            continue
        for lineno, line in enumerate(lines, start=1):
            for _ in rule["regex"].finditer(line):
                findings.append({
                    "rule": rule["id"],
                    "path": relpath,
                    "line": lineno,
                    "message": rule["message"],
                    "snippet": raw_lines[lineno - 1].strip()[:160],
                })
    return findings


# --- allowlist --------------------------------------------------------------

def load_allowlist(path: Path) -> list[tuple[str, str]]:
    entries = []
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(),
                                 start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(
                f"{path}:{lineno}: expected '<rule-id> <path-suffix>', "
                f"got {raw!r}")
        rule, suffix = parts
        if rule != "*" and rule not in {r["id"] for r in RULES}:
            raise ValueError(f"{path}:{lineno}: unknown rule id {rule!r}")
        entries.append((rule, suffix))
    return entries


def allowed(finding: dict, entries: list[tuple[str, str]]) -> bool:
    return any((rule == "*" or rule == finding["rule"])
               and finding["path"].endswith(suffix)
               for rule, suffix in entries)


# --- driver -----------------------------------------------------------------

def iter_sources(roots: list[Path], project_root: Path):
    for root in roots:
        for path in sorted(root.rglob("*")):
            if path.suffix not in CPP_SUFFIXES or not path.is_file():
                continue
            try:
                rel = path.resolve().relative_to(project_root.resolve())
            except ValueError:
                rel = path
            yield path, rel.as_posix()


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", action="append", default=[],
                        help="directory to scan (repeatable; default: src)")
    parser.add_argument("--project-root", default=None,
                        help="base for relative paths (default: the parent "
                             "of the first --root)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: allowlist.txt next "
                             "to this script)")
    parser.add_argument("--no-allowlist", action="store_true",
                        help="report every hit, suppressing nothing")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable findings on stdout")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule['id']}: {rule['message']}")
        return 0

    roots = [Path(r) for r in (args.root or ["src"])]
    for root in roots:
        if not root.is_dir():
            print(f"vbsrm-lint: no such directory: {root}", file=sys.stderr)
            return 2
    project_root = Path(args.project_root) if args.project_root \
        else roots[0].parent

    entries: list[tuple[str, str]] = []
    if not args.no_allowlist:
        allowlist_path = Path(args.allowlist) if args.allowlist \
            else Path(__file__).resolve().parent / "allowlist.txt"
        if allowlist_path.exists():
            try:
                entries = load_allowlist(allowlist_path)
            except ValueError as e:
                print(f"vbsrm-lint: bad allowlist: {e}", file=sys.stderr)
                return 2

    findings = []
    n_files = 0
    for path, rel in iter_sources(roots, project_root):
        n_files += 1
        findings.extend(f for f in lint_file(path, rel)
                        if not allowed(f, entries))

    if args.as_json:
        print(json.dumps({"files_scanned": n_files, "findings": findings},
                         indent=2))
    else:
        for f in findings:
            print(f"{f['path']}:{f['line']}: [{f['rule']}] {f['message']}")
            if f["snippet"]:
                print(f"    {f['snippet']}")
        status = "clean" if not findings else f"{len(findings)} violation(s)"
        print(f"vbsrm-lint: scanned {n_files} files: {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
