# Empty compiler generated dependencies file for test_nint.
# This may be replaced when dependencies are built.
