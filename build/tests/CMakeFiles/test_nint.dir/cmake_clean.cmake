file(REMOVE_RECURSE
  "CMakeFiles/test_nint.dir/test_nint.cpp.o"
  "CMakeFiles/test_nint.dir/test_nint.cpp.o.d"
  "test_nint"
  "test_nint.pdb"
  "test_nint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
