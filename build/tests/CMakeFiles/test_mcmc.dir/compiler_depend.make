# Empty compiler generated dependencies file for test_mcmc.
# This may be replaced when dependencies are built.
