file(REMOVE_RECURSE
  "CMakeFiles/test_mcmc.dir/test_mcmc.cpp.o"
  "CMakeFiles/test_mcmc.dir/test_mcmc.cpp.o.d"
  "test_mcmc"
  "test_mcmc.pdb"
  "test_mcmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
