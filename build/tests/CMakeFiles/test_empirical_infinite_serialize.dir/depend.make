# Empty dependencies file for test_empirical_infinite_serialize.
# This may be replaced when dependencies are built.
