file(REMOVE_RECURSE
  "CMakeFiles/test_empirical_infinite_serialize.dir/test_empirical_infinite_serialize.cpp.o"
  "CMakeFiles/test_empirical_infinite_serialize.dir/test_empirical_infinite_serialize.cpp.o.d"
  "test_empirical_infinite_serialize"
  "test_empirical_infinite_serialize.pdb"
  "test_empirical_infinite_serialize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_empirical_infinite_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
