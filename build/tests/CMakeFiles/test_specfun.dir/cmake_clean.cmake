file(REMOVE_RECURSE
  "CMakeFiles/test_specfun.dir/test_specfun.cpp.o"
  "CMakeFiles/test_specfun.dir/test_specfun.cpp.o.d"
  "test_specfun"
  "test_specfun.pdb"
  "test_specfun[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_specfun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
