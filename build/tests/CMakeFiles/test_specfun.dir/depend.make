# Empty dependencies file for test_specfun.
# This may be replaced when dependencies are built.
