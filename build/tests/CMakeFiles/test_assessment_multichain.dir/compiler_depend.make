# Empty compiler generated dependencies file for test_assessment_multichain.
# This may be replaced when dependencies are built.
