file(REMOVE_RECURSE
  "CMakeFiles/test_assessment_multichain.dir/test_assessment_multichain.cpp.o"
  "CMakeFiles/test_assessment_multichain.dir/test_assessment_multichain.cpp.o.d"
  "test_assessment_multichain"
  "test_assessment_multichain.pdb"
  "test_assessment_multichain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assessment_multichain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
