file(REMOVE_RECURSE
  "CMakeFiles/test_laplace.dir/test_laplace.cpp.o"
  "CMakeFiles/test_laplace.dir/test_laplace.cpp.o.d"
  "test_laplace"
  "test_laplace.pdb"
  "test_laplace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_laplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
