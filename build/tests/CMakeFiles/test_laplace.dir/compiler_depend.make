# Empty compiler generated dependencies file for test_laplace.
# This may be replaced when dependencies are built.
