# Empty dependencies file for test_families.
# This may be replaced when dependencies are built.
