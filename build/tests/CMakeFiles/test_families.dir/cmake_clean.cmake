file(REMOVE_RECURSE
  "CMakeFiles/test_families.dir/test_families.cpp.o"
  "CMakeFiles/test_families.dir/test_families.cpp.o.d"
  "test_families"
  "test_families.pdb"
  "test_families[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
