# Empty compiler generated dependencies file for test_property_end2end.
# This may be replaced when dependencies are built.
