file(REMOVE_RECURSE
  "CMakeFiles/test_property_end2end.dir/test_property_end2end.cpp.o"
  "CMakeFiles/test_property_end2end.dir/test_property_end2end.cpp.o.d"
  "test_property_end2end"
  "test_property_end2end.pdb"
  "test_property_end2end[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_end2end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
