# Empty dependencies file for test_assessment_grouped.
# This may be replaced when dependencies are built.
