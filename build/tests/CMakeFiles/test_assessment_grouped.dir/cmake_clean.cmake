file(REMOVE_RECURSE
  "CMakeFiles/test_assessment_grouped.dir/test_assessment_grouped.cpp.o"
  "CMakeFiles/test_assessment_grouped.dir/test_assessment_grouped.cpp.o.d"
  "test_assessment_grouped"
  "test_assessment_grouped.pdb"
  "test_assessment_grouped[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assessment_grouped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
