file(REMOVE_RECURSE
  "CMakeFiles/test_roots_optimize.dir/test_roots_optimize.cpp.o"
  "CMakeFiles/test_roots_optimize.dir/test_roots_optimize.cpp.o.d"
  "test_roots_optimize"
  "test_roots_optimize.pdb"
  "test_roots_optimize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roots_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
