# Empty dependencies file for test_roots_optimize.
# This may be replaced when dependencies are built.
