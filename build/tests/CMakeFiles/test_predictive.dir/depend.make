# Empty dependencies file for test_predictive.
# This may be replaced when dependencies are built.
