file(REMOVE_RECURSE
  "CMakeFiles/test_predictive.dir/test_predictive.cpp.o"
  "CMakeFiles/test_predictive.dir/test_predictive.cpp.o.d"
  "test_predictive"
  "test_predictive.pdb"
  "test_predictive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predictive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
