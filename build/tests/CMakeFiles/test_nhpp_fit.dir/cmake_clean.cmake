file(REMOVE_RECURSE
  "CMakeFiles/test_nhpp_fit.dir/test_nhpp_fit.cpp.o"
  "CMakeFiles/test_nhpp_fit.dir/test_nhpp_fit.cpp.o.d"
  "test_nhpp_fit"
  "test_nhpp_fit.pdb"
  "test_nhpp_fit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nhpp_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
