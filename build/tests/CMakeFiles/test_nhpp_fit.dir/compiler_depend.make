# Empty compiler generated dependencies file for test_nhpp_fit.
# This may be replaced when dependencies are built.
