file(REMOVE_RECURSE
  "CMakeFiles/test_cross_method.dir/test_cross_method.cpp.o"
  "CMakeFiles/test_cross_method.dir/test_cross_method.cpp.o.d"
  "test_cross_method"
  "test_cross_method.pdb"
  "test_cross_method[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
