# Empty compiler generated dependencies file for test_cross_method.
# This may be replaced when dependencies are built.
