# Empty dependencies file for test_quadrature.
# This may be replaced when dependencies are built.
