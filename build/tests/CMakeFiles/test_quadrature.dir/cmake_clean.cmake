file(REMOVE_RECURSE
  "CMakeFiles/test_quadrature.dir/test_quadrature.cpp.o"
  "CMakeFiles/test_quadrature.dir/test_quadrature.cpp.o.d"
  "test_quadrature"
  "test_quadrature.pdb"
  "test_quadrature[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quadrature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
