file(REMOVE_RECURSE
  "CMakeFiles/test_vb1.dir/test_vb1.cpp.o"
  "CMakeFiles/test_vb1.dir/test_vb1.cpp.o.d"
  "test_vb1"
  "test_vb1.pdb"
  "test_vb1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vb1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
