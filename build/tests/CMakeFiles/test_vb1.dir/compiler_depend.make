# Empty compiler generated dependencies file for test_vb1.
# This may be replaced when dependencies are built.
