file(REMOVE_RECURSE
  "CMakeFiles/test_gamma_mixture.dir/test_gamma_mixture.cpp.o"
  "CMakeFiles/test_gamma_mixture.dir/test_gamma_mixture.cpp.o.d"
  "test_gamma_mixture"
  "test_gamma_mixture.pdb"
  "test_gamma_mixture[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gamma_mixture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
