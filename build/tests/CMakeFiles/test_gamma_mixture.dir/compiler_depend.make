# Empty compiler generated dependencies file for test_gamma_mixture.
# This may be replaced when dependencies are built.
