# Empty dependencies file for test_nhpp_prediction_trend.
# This may be replaced when dependencies are built.
