file(REMOVE_RECURSE
  "CMakeFiles/test_nhpp_prediction_trend.dir/test_nhpp_prediction_trend.cpp.o"
  "CMakeFiles/test_nhpp_prediction_trend.dir/test_nhpp_prediction_trend.cpp.o.d"
  "test_nhpp_prediction_trend"
  "test_nhpp_prediction_trend.pdb"
  "test_nhpp_prediction_trend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nhpp_prediction_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
