# Empty compiler generated dependencies file for test_vb2.
# This may be replaced when dependencies are built.
