file(REMOVE_RECURSE
  "CMakeFiles/test_vb2.dir/test_vb2.cpp.o"
  "CMakeFiles/test_vb2.dir/test_vb2.cpp.o.d"
  "test_vb2"
  "test_vb2.pdb"
  "test_vb2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vb2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
