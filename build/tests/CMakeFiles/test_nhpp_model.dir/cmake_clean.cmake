file(REMOVE_RECURSE
  "CMakeFiles/test_nhpp_model.dir/test_nhpp_model.cpp.o"
  "CMakeFiles/test_nhpp_model.dir/test_nhpp_model.cpp.o.d"
  "test_nhpp_model"
  "test_nhpp_model.pdb"
  "test_nhpp_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nhpp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
