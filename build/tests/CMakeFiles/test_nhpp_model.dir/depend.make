# Empty dependencies file for test_nhpp_model.
# This may be replaced when dependencies are built.
