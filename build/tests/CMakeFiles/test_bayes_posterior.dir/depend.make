# Empty dependencies file for test_bayes_posterior.
# This may be replaced when dependencies are built.
