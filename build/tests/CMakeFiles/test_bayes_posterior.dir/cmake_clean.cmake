file(REMOVE_RECURSE
  "CMakeFiles/test_bayes_posterior.dir/test_bayes_posterior.cpp.o"
  "CMakeFiles/test_bayes_posterior.dir/test_bayes_posterior.cpp.o.d"
  "test_bayes_posterior"
  "test_bayes_posterior.pdb"
  "test_bayes_posterior[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bayes_posterior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
