# Empty dependencies file for test_profile_coverage.
# This may be replaced when dependencies are built.
