file(REMOVE_RECURSE
  "CMakeFiles/test_profile_coverage.dir/test_profile_coverage.cpp.o"
  "CMakeFiles/test_profile_coverage.dir/test_profile_coverage.cpp.o.d"
  "test_profile_coverage"
  "test_profile_coverage.pdb"
  "test_profile_coverage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profile_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
