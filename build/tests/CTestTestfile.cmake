# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_assessment_grouped[1]_include.cmake")
include("/root/repo/build/tests/test_assessment_multichain[1]_include.cmake")
include("/root/repo/build/tests/test_bayes_posterior[1]_include.cmake")
include("/root/repo/build/tests/test_cross_method[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_empirical_infinite_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_families[1]_include.cmake")
include("/root/repo/build/tests/test_gamma_mixture[1]_include.cmake")
include("/root/repo/build/tests/test_laplace[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_mcmc[1]_include.cmake")
include("/root/repo/build/tests/test_nhpp_fit[1]_include.cmake")
include("/root/repo/build/tests/test_nhpp_model[1]_include.cmake")
include("/root/repo/build/tests/test_nhpp_prediction_trend[1]_include.cmake")
include("/root/repo/build/tests/test_nint[1]_include.cmake")
include("/root/repo/build/tests/test_predictive[1]_include.cmake")
include("/root/repo/build/tests/test_profile_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_property_end2end[1]_include.cmake")
include("/root/repo/build/tests/test_quadrature[1]_include.cmake")
include("/root/repo/build/tests/test_random[1]_include.cmake")
include("/root/repo/build/tests/test_roots_optimize[1]_include.cmake")
include("/root/repo/build/tests/test_specfun[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_vb1[1]_include.cmake")
include("/root/repo/build/tests/test_vb2[1]_include.cmake")
