# Empty dependencies file for bench_table6_mcmc_time.
# This may be replaced when dependencies are built.
