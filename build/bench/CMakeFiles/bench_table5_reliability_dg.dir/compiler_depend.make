# Empty compiler generated dependencies file for bench_table5_reliability_dg.
# This may be replaced when dependencies are built.
