# Empty dependencies file for bench_table7_vb2_time.
# This may be replaced when dependencies are built.
