file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_ci_dg.dir/bench_table3_ci_dg.cpp.o"
  "CMakeFiles/bench_table3_ci_dg.dir/bench_table3_ci_dg.cpp.o.d"
  "bench_table3_ci_dg"
  "bench_table3_ci_dg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ci_dg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
