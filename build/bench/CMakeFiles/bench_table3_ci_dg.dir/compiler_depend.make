# Empty compiler generated dependencies file for bench_table3_ci_dg.
# This may be replaced when dependencies are built.
