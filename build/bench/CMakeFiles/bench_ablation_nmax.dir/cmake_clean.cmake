file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nmax.dir/bench_ablation_nmax.cpp.o"
  "CMakeFiles/bench_ablation_nmax.dir/bench_ablation_nmax.cpp.o.d"
  "bench_ablation_nmax"
  "bench_ablation_nmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
