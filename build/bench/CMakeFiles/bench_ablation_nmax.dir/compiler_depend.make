# Empty compiler generated dependencies file for bench_ablation_nmax.
# This may be replaced when dependencies are built.
