file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_factorization.dir/bench_ablation_factorization.cpp.o"
  "CMakeFiles/bench_ablation_factorization.dir/bench_ablation_factorization.cpp.o.d"
  "bench_ablation_factorization"
  "bench_ablation_factorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_factorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
