# Empty dependencies file for bench_ablation_factorization.
# This may be replaced when dependencies are built.
