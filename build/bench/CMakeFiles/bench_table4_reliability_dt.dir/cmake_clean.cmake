file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_reliability_dt.dir/bench_table4_reliability_dt.cpp.o"
  "CMakeFiles/bench_table4_reliability_dt.dir/bench_table4_reliability_dt.cpp.o.d"
  "bench_table4_reliability_dt"
  "bench_table4_reliability_dt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_reliability_dt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
