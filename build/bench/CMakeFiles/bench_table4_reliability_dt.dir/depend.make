# Empty dependencies file for bench_table4_reliability_dt.
# This may be replaced when dependencies are built.
