file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ci_dt.dir/bench_table2_ci_dt.cpp.o"
  "CMakeFiles/bench_table2_ci_dt.dir/bench_table2_ci_dt.cpp.o.d"
  "bench_table2_ci_dt"
  "bench_table2_ci_dt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ci_dt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
