# Empty dependencies file for bench_table2_ci_dt.
# This may be replaced when dependencies are built.
