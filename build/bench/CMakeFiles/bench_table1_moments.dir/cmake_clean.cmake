file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_moments.dir/bench_table1_moments.cpp.o"
  "CMakeFiles/bench_table1_moments.dir/bench_table1_moments.cpp.o.d"
  "bench_table1_moments"
  "bench_table1_moments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_moments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
