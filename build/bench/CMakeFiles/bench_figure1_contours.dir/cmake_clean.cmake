file(REMOVE_RECURSE
  "CMakeFiles/bench_figure1_contours.dir/bench_figure1_contours.cpp.o"
  "CMakeFiles/bench_figure1_contours.dir/bench_figure1_contours.cpp.o.d"
  "bench_figure1_contours"
  "bench_figure1_contours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1_contours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
