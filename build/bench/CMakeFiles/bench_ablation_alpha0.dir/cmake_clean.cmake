file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_alpha0.dir/bench_ablation_alpha0.cpp.o"
  "CMakeFiles/bench_ablation_alpha0.dir/bench_ablation_alpha0.cpp.o.d"
  "bench_ablation_alpha0"
  "bench_ablation_alpha0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_alpha0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
