file(REMOVE_RECURSE
  "CMakeFiles/vbsrm_stats.dir/descriptive.cpp.o"
  "CMakeFiles/vbsrm_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/vbsrm_stats.dir/diagnostics.cpp.o"
  "CMakeFiles/vbsrm_stats.dir/diagnostics.cpp.o.d"
  "CMakeFiles/vbsrm_stats.dir/gof.cpp.o"
  "CMakeFiles/vbsrm_stats.dir/gof.cpp.o.d"
  "CMakeFiles/vbsrm_stats.dir/histogram.cpp.o"
  "CMakeFiles/vbsrm_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/vbsrm_stats.dir/quantiles.cpp.o"
  "CMakeFiles/vbsrm_stats.dir/quantiles.cpp.o.d"
  "libvbsrm_stats.a"
  "libvbsrm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbsrm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
