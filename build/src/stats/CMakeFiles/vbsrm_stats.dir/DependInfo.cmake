
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/vbsrm_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/vbsrm_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/diagnostics.cpp" "src/stats/CMakeFiles/vbsrm_stats.dir/diagnostics.cpp.o" "gcc" "src/stats/CMakeFiles/vbsrm_stats.dir/diagnostics.cpp.o.d"
  "/root/repo/src/stats/gof.cpp" "src/stats/CMakeFiles/vbsrm_stats.dir/gof.cpp.o" "gcc" "src/stats/CMakeFiles/vbsrm_stats.dir/gof.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/vbsrm_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/vbsrm_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/quantiles.cpp" "src/stats/CMakeFiles/vbsrm_stats.dir/quantiles.cpp.o" "gcc" "src/stats/CMakeFiles/vbsrm_stats.dir/quantiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/vbsrm_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
