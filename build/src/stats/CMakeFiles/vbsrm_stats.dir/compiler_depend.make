# Empty compiler generated dependencies file for vbsrm_stats.
# This may be replaced when dependencies are built.
