file(REMOVE_RECURSE
  "libvbsrm_stats.a"
)
