# CMake generated Testfile for 
# Source directory: /root/repo/src/nhpp
# Build directory: /root/repo/build/src/nhpp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
