file(REMOVE_RECURSE
  "libvbsrm_nhpp.a"
)
