file(REMOVE_RECURSE
  "CMakeFiles/vbsrm_nhpp.dir/assessment.cpp.o"
  "CMakeFiles/vbsrm_nhpp.dir/assessment.cpp.o.d"
  "CMakeFiles/vbsrm_nhpp.dir/families.cpp.o"
  "CMakeFiles/vbsrm_nhpp.dir/families.cpp.o.d"
  "CMakeFiles/vbsrm_nhpp.dir/fit.cpp.o"
  "CMakeFiles/vbsrm_nhpp.dir/fit.cpp.o.d"
  "CMakeFiles/vbsrm_nhpp.dir/infinite.cpp.o"
  "CMakeFiles/vbsrm_nhpp.dir/infinite.cpp.o.d"
  "CMakeFiles/vbsrm_nhpp.dir/likelihood.cpp.o"
  "CMakeFiles/vbsrm_nhpp.dir/likelihood.cpp.o.d"
  "CMakeFiles/vbsrm_nhpp.dir/model.cpp.o"
  "CMakeFiles/vbsrm_nhpp.dir/model.cpp.o.d"
  "CMakeFiles/vbsrm_nhpp.dir/prediction.cpp.o"
  "CMakeFiles/vbsrm_nhpp.dir/prediction.cpp.o.d"
  "CMakeFiles/vbsrm_nhpp.dir/trend.cpp.o"
  "CMakeFiles/vbsrm_nhpp.dir/trend.cpp.o.d"
  "libvbsrm_nhpp.a"
  "libvbsrm_nhpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbsrm_nhpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
