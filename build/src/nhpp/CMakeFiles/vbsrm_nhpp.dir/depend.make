# Empty dependencies file for vbsrm_nhpp.
# This may be replaced when dependencies are built.
