
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nhpp/assessment.cpp" "src/nhpp/CMakeFiles/vbsrm_nhpp.dir/assessment.cpp.o" "gcc" "src/nhpp/CMakeFiles/vbsrm_nhpp.dir/assessment.cpp.o.d"
  "/root/repo/src/nhpp/families.cpp" "src/nhpp/CMakeFiles/vbsrm_nhpp.dir/families.cpp.o" "gcc" "src/nhpp/CMakeFiles/vbsrm_nhpp.dir/families.cpp.o.d"
  "/root/repo/src/nhpp/fit.cpp" "src/nhpp/CMakeFiles/vbsrm_nhpp.dir/fit.cpp.o" "gcc" "src/nhpp/CMakeFiles/vbsrm_nhpp.dir/fit.cpp.o.d"
  "/root/repo/src/nhpp/infinite.cpp" "src/nhpp/CMakeFiles/vbsrm_nhpp.dir/infinite.cpp.o" "gcc" "src/nhpp/CMakeFiles/vbsrm_nhpp.dir/infinite.cpp.o.d"
  "/root/repo/src/nhpp/likelihood.cpp" "src/nhpp/CMakeFiles/vbsrm_nhpp.dir/likelihood.cpp.o" "gcc" "src/nhpp/CMakeFiles/vbsrm_nhpp.dir/likelihood.cpp.o.d"
  "/root/repo/src/nhpp/model.cpp" "src/nhpp/CMakeFiles/vbsrm_nhpp.dir/model.cpp.o" "gcc" "src/nhpp/CMakeFiles/vbsrm_nhpp.dir/model.cpp.o.d"
  "/root/repo/src/nhpp/prediction.cpp" "src/nhpp/CMakeFiles/vbsrm_nhpp.dir/prediction.cpp.o" "gcc" "src/nhpp/CMakeFiles/vbsrm_nhpp.dir/prediction.cpp.o.d"
  "/root/repo/src/nhpp/trend.cpp" "src/nhpp/CMakeFiles/vbsrm_nhpp.dir/trend.cpp.o" "gcc" "src/nhpp/CMakeFiles/vbsrm_nhpp.dir/trend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/vbsrm_math.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vbsrm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vbsrm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/vbsrm_random.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
