
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/linalg.cpp" "src/math/CMakeFiles/vbsrm_math.dir/linalg.cpp.o" "gcc" "src/math/CMakeFiles/vbsrm_math.dir/linalg.cpp.o.d"
  "/root/repo/src/math/optimize.cpp" "src/math/CMakeFiles/vbsrm_math.dir/optimize.cpp.o" "gcc" "src/math/CMakeFiles/vbsrm_math.dir/optimize.cpp.o.d"
  "/root/repo/src/math/quadrature.cpp" "src/math/CMakeFiles/vbsrm_math.dir/quadrature.cpp.o" "gcc" "src/math/CMakeFiles/vbsrm_math.dir/quadrature.cpp.o.d"
  "/root/repo/src/math/roots.cpp" "src/math/CMakeFiles/vbsrm_math.dir/roots.cpp.o" "gcc" "src/math/CMakeFiles/vbsrm_math.dir/roots.cpp.o.d"
  "/root/repo/src/math/specfun.cpp" "src/math/CMakeFiles/vbsrm_math.dir/specfun.cpp.o" "gcc" "src/math/CMakeFiles/vbsrm_math.dir/specfun.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
