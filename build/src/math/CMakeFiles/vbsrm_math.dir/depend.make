# Empty dependencies file for vbsrm_math.
# This may be replaced when dependencies are built.
