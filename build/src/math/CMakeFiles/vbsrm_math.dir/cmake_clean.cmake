file(REMOVE_RECURSE
  "CMakeFiles/vbsrm_math.dir/linalg.cpp.o"
  "CMakeFiles/vbsrm_math.dir/linalg.cpp.o.d"
  "CMakeFiles/vbsrm_math.dir/optimize.cpp.o"
  "CMakeFiles/vbsrm_math.dir/optimize.cpp.o.d"
  "CMakeFiles/vbsrm_math.dir/quadrature.cpp.o"
  "CMakeFiles/vbsrm_math.dir/quadrature.cpp.o.d"
  "CMakeFiles/vbsrm_math.dir/roots.cpp.o"
  "CMakeFiles/vbsrm_math.dir/roots.cpp.o.d"
  "CMakeFiles/vbsrm_math.dir/specfun.cpp.o"
  "CMakeFiles/vbsrm_math.dir/specfun.cpp.o.d"
  "libvbsrm_math.a"
  "libvbsrm_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbsrm_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
