file(REMOVE_RECURSE
  "libvbsrm_math.a"
)
