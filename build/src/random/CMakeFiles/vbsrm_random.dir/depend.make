# Empty dependencies file for vbsrm_random.
# This may be replaced when dependencies are built.
