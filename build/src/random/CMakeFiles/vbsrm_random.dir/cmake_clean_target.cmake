file(REMOVE_RECURSE
  "libvbsrm_random.a"
)
