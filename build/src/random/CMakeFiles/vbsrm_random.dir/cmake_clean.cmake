file(REMOVE_RECURSE
  "CMakeFiles/vbsrm_random.dir/distributions.cpp.o"
  "CMakeFiles/vbsrm_random.dir/distributions.cpp.o.d"
  "CMakeFiles/vbsrm_random.dir/rng.cpp.o"
  "CMakeFiles/vbsrm_random.dir/rng.cpp.o.d"
  "libvbsrm_random.a"
  "libvbsrm_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbsrm_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
