file(REMOVE_RECURSE
  "CMakeFiles/vbsrm_core.dir/coverage.cpp.o"
  "CMakeFiles/vbsrm_core.dir/coverage.cpp.o.d"
  "CMakeFiles/vbsrm_core.dir/gamma_mixture.cpp.o"
  "CMakeFiles/vbsrm_core.dir/gamma_mixture.cpp.o.d"
  "CMakeFiles/vbsrm_core.dir/predictive.cpp.o"
  "CMakeFiles/vbsrm_core.dir/predictive.cpp.o.d"
  "CMakeFiles/vbsrm_core.dir/vb1.cpp.o"
  "CMakeFiles/vbsrm_core.dir/vb1.cpp.o.d"
  "CMakeFiles/vbsrm_core.dir/vb2.cpp.o"
  "CMakeFiles/vbsrm_core.dir/vb2.cpp.o.d"
  "libvbsrm_core.a"
  "libvbsrm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbsrm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
