file(REMOVE_RECURSE
  "libvbsrm_core.a"
)
