
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coverage.cpp" "src/core/CMakeFiles/vbsrm_core.dir/coverage.cpp.o" "gcc" "src/core/CMakeFiles/vbsrm_core.dir/coverage.cpp.o.d"
  "/root/repo/src/core/gamma_mixture.cpp" "src/core/CMakeFiles/vbsrm_core.dir/gamma_mixture.cpp.o" "gcc" "src/core/CMakeFiles/vbsrm_core.dir/gamma_mixture.cpp.o.d"
  "/root/repo/src/core/predictive.cpp" "src/core/CMakeFiles/vbsrm_core.dir/predictive.cpp.o" "gcc" "src/core/CMakeFiles/vbsrm_core.dir/predictive.cpp.o.d"
  "/root/repo/src/core/vb1.cpp" "src/core/CMakeFiles/vbsrm_core.dir/vb1.cpp.o" "gcc" "src/core/CMakeFiles/vbsrm_core.dir/vb1.cpp.o.d"
  "/root/repo/src/core/vb2.cpp" "src/core/CMakeFiles/vbsrm_core.dir/vb2.cpp.o" "gcc" "src/core/CMakeFiles/vbsrm_core.dir/vb2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/vbsrm_math.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/vbsrm_random.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vbsrm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nhpp/CMakeFiles/vbsrm_nhpp.dir/DependInfo.cmake"
  "/root/repo/build/src/bayes/CMakeFiles/vbsrm_bayes.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vbsrm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
