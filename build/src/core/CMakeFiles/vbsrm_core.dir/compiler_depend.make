# Empty compiler generated dependencies file for vbsrm_core.
# This may be replaced when dependencies are built.
