
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/datasets.cpp" "src/data/CMakeFiles/vbsrm_data.dir/datasets.cpp.o" "gcc" "src/data/CMakeFiles/vbsrm_data.dir/datasets.cpp.o.d"
  "/root/repo/src/data/failure_data.cpp" "src/data/CMakeFiles/vbsrm_data.dir/failure_data.cpp.o" "gcc" "src/data/CMakeFiles/vbsrm_data.dir/failure_data.cpp.o.d"
  "/root/repo/src/data/simulate.cpp" "src/data/CMakeFiles/vbsrm_data.dir/simulate.cpp.o" "gcc" "src/data/CMakeFiles/vbsrm_data.dir/simulate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/vbsrm_math.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/vbsrm_random.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
