file(REMOVE_RECURSE
  "CMakeFiles/vbsrm_data.dir/datasets.cpp.o"
  "CMakeFiles/vbsrm_data.dir/datasets.cpp.o.d"
  "CMakeFiles/vbsrm_data.dir/failure_data.cpp.o"
  "CMakeFiles/vbsrm_data.dir/failure_data.cpp.o.d"
  "CMakeFiles/vbsrm_data.dir/simulate.cpp.o"
  "CMakeFiles/vbsrm_data.dir/simulate.cpp.o.d"
  "libvbsrm_data.a"
  "libvbsrm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbsrm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
