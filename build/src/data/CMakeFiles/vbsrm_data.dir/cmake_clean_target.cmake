file(REMOVE_RECURSE
  "libvbsrm_data.a"
)
