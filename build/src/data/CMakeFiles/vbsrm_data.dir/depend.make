# Empty dependencies file for vbsrm_data.
# This may be replaced when dependencies are built.
