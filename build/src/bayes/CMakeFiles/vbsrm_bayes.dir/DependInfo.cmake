
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bayes/chain.cpp" "src/bayes/CMakeFiles/vbsrm_bayes.dir/chain.cpp.o" "gcc" "src/bayes/CMakeFiles/vbsrm_bayes.dir/chain.cpp.o.d"
  "/root/repo/src/bayes/empirical.cpp" "src/bayes/CMakeFiles/vbsrm_bayes.dir/empirical.cpp.o" "gcc" "src/bayes/CMakeFiles/vbsrm_bayes.dir/empirical.cpp.o.d"
  "/root/repo/src/bayes/gibbs.cpp" "src/bayes/CMakeFiles/vbsrm_bayes.dir/gibbs.cpp.o" "gcc" "src/bayes/CMakeFiles/vbsrm_bayes.dir/gibbs.cpp.o.d"
  "/root/repo/src/bayes/laplace.cpp" "src/bayes/CMakeFiles/vbsrm_bayes.dir/laplace.cpp.o" "gcc" "src/bayes/CMakeFiles/vbsrm_bayes.dir/laplace.cpp.o.d"
  "/root/repo/src/bayes/metropolis.cpp" "src/bayes/CMakeFiles/vbsrm_bayes.dir/metropolis.cpp.o" "gcc" "src/bayes/CMakeFiles/vbsrm_bayes.dir/metropolis.cpp.o.d"
  "/root/repo/src/bayes/multichain.cpp" "src/bayes/CMakeFiles/vbsrm_bayes.dir/multichain.cpp.o" "gcc" "src/bayes/CMakeFiles/vbsrm_bayes.dir/multichain.cpp.o.d"
  "/root/repo/src/bayes/nint.cpp" "src/bayes/CMakeFiles/vbsrm_bayes.dir/nint.cpp.o" "gcc" "src/bayes/CMakeFiles/vbsrm_bayes.dir/nint.cpp.o.d"
  "/root/repo/src/bayes/posterior.cpp" "src/bayes/CMakeFiles/vbsrm_bayes.dir/posterior.cpp.o" "gcc" "src/bayes/CMakeFiles/vbsrm_bayes.dir/posterior.cpp.o.d"
  "/root/repo/src/bayes/prior.cpp" "src/bayes/CMakeFiles/vbsrm_bayes.dir/prior.cpp.o" "gcc" "src/bayes/CMakeFiles/vbsrm_bayes.dir/prior.cpp.o.d"
  "/root/repo/src/bayes/profile.cpp" "src/bayes/CMakeFiles/vbsrm_bayes.dir/profile.cpp.o" "gcc" "src/bayes/CMakeFiles/vbsrm_bayes.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/vbsrm_math.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/vbsrm_random.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vbsrm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vbsrm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nhpp/CMakeFiles/vbsrm_nhpp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
