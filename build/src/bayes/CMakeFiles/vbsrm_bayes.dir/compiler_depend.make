# Empty compiler generated dependencies file for vbsrm_bayes.
# This may be replaced when dependencies are built.
