file(REMOVE_RECURSE
  "CMakeFiles/vbsrm_bayes.dir/chain.cpp.o"
  "CMakeFiles/vbsrm_bayes.dir/chain.cpp.o.d"
  "CMakeFiles/vbsrm_bayes.dir/empirical.cpp.o"
  "CMakeFiles/vbsrm_bayes.dir/empirical.cpp.o.d"
  "CMakeFiles/vbsrm_bayes.dir/gibbs.cpp.o"
  "CMakeFiles/vbsrm_bayes.dir/gibbs.cpp.o.d"
  "CMakeFiles/vbsrm_bayes.dir/laplace.cpp.o"
  "CMakeFiles/vbsrm_bayes.dir/laplace.cpp.o.d"
  "CMakeFiles/vbsrm_bayes.dir/metropolis.cpp.o"
  "CMakeFiles/vbsrm_bayes.dir/metropolis.cpp.o.d"
  "CMakeFiles/vbsrm_bayes.dir/multichain.cpp.o"
  "CMakeFiles/vbsrm_bayes.dir/multichain.cpp.o.d"
  "CMakeFiles/vbsrm_bayes.dir/nint.cpp.o"
  "CMakeFiles/vbsrm_bayes.dir/nint.cpp.o.d"
  "CMakeFiles/vbsrm_bayes.dir/posterior.cpp.o"
  "CMakeFiles/vbsrm_bayes.dir/posterior.cpp.o.d"
  "CMakeFiles/vbsrm_bayes.dir/prior.cpp.o"
  "CMakeFiles/vbsrm_bayes.dir/prior.cpp.o.d"
  "CMakeFiles/vbsrm_bayes.dir/profile.cpp.o"
  "CMakeFiles/vbsrm_bayes.dir/profile.cpp.o.d"
  "libvbsrm_bayes.a"
  "libvbsrm_bayes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbsrm_bayes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
