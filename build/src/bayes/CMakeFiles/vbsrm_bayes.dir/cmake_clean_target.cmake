file(REMOVE_RECURSE
  "libvbsrm_bayes.a"
)
