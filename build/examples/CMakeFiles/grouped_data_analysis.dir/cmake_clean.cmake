file(REMOVE_RECURSE
  "CMakeFiles/grouped_data_analysis.dir/grouped_data_analysis.cpp.o"
  "CMakeFiles/grouped_data_analysis.dir/grouped_data_analysis.cpp.o.d"
  "grouped_data_analysis"
  "grouped_data_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouped_data_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
