# Empty dependencies file for grouped_data_analysis.
# This may be replaced when dependencies are built.
