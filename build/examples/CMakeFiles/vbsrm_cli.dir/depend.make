# Empty dependencies file for vbsrm_cli.
# This may be replaced when dependencies are built.
