file(REMOVE_RECURSE
  "CMakeFiles/vbsrm_cli.dir/vbsrm_cli.cpp.o"
  "CMakeFiles/vbsrm_cli.dir/vbsrm_cli.cpp.o.d"
  "vbsrm_cli"
  "vbsrm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbsrm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
