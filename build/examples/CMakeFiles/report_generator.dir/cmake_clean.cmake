file(REMOVE_RECURSE
  "CMakeFiles/report_generator.dir/report_generator.cpp.o"
  "CMakeFiles/report_generator.dir/report_generator.cpp.o.d"
  "report_generator"
  "report_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
