# Empty compiler generated dependencies file for report_generator.
# This may be replaced when dependencies are built.
