# Empty dependencies file for empirical_bayes.
# This may be replaced when dependencies are built.
