file(REMOVE_RECURSE
  "CMakeFiles/empirical_bayes.dir/empirical_bayes.cpp.o"
  "CMakeFiles/empirical_bayes.dir/empirical_bayes.cpp.o.d"
  "empirical_bayes"
  "empirical_bayes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/empirical_bayes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
