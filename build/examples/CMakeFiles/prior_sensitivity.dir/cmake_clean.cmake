file(REMOVE_RECURSE
  "CMakeFiles/prior_sensitivity.dir/prior_sensitivity.cpp.o"
  "CMakeFiles/prior_sensitivity.dir/prior_sensitivity.cpp.o.d"
  "prior_sensitivity"
  "prior_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prior_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
