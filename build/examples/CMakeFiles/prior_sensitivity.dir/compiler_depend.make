# Empty compiler generated dependencies file for prior_sensitivity.
# This may be replaced when dependencies are built.
