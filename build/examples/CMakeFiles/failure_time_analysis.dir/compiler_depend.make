# Empty compiler generated dependencies file for failure_time_analysis.
# This may be replaced when dependencies are built.
