file(REMOVE_RECURSE
  "CMakeFiles/failure_time_analysis.dir/failure_time_analysis.cpp.o"
  "CMakeFiles/failure_time_analysis.dir/failure_time_analysis.cpp.o.d"
  "failure_time_analysis"
  "failure_time_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_time_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
