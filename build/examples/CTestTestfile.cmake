# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_demo "/root/repo/build/examples/vbsrm_cli" "demo")
set_tests_properties(cli_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/examples/vbsrm_cli" "bogus-command")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_model_zoo "/root/repo/build/examples/model_zoo")
set_tests_properties(example_model_zoo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
