// Microbenchmarks (google-benchmark) for the numerical kernels that
// dominate the estimators' cost profiles: incomplete gamma, digamma,
// gamma quantile, samplers, the VB2 component solve, and one full VB2 /
// Gibbs iteration.  These back the Table 6/7 analysis with per-kernel
// numbers.
#include <benchmark/benchmark.h>

#include "bayes/gibbs.hpp"
#include "bayes/prior.hpp"
#include "core/vb2.hpp"
#include "data/datasets.hpp"
#include "math/specfun.hpp"
#include "random/distributions.hpp"

namespace m = vbsrm::math;
using vbsrm::bayes::GammaPrior;
using vbsrm::bayes::PriorPair;

namespace {

PriorPair info_dt() {
  return {GammaPrior::from_mean_sd(50.0, 15.8),
          GammaPrior::from_mean_sd(1e-5, 3.2e-6)};
}

void BM_LogGamma(benchmark::State& state) {
  double x = 1.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m::log_gamma(x));
    x += 0.37;
    if (x > 500.0) x = 1.1;
  }
}
BENCHMARK(BM_LogGamma);

void BM_Digamma(benchmark::State& state) {
  double x = 0.9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m::digamma(x));
    x += 0.41;
    if (x > 300.0) x = 0.9;
  }
}
BENCHMARK(BM_Digamma);

void BM_GammaP(benchmark::State& state) {
  const double a = static_cast<double>(state.range(0));
  double x = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m::gamma_p(a, x));
    x += 0.73;
    if (x > 4.0 * a + 20.0) x = 0.1;
  }
}
BENCHMARK(BM_GammaP)->Arg(1)->Arg(10)->Arg(100);

void BM_InvGammaP(benchmark::State& state) {
  const double a = static_cast<double>(state.range(0));
  double p = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m::inv_gamma_p(a, p));
    p += 0.0137;
    if (p >= 0.99) p = 0.01;
  }
}
BENCHMARK(BM_InvGammaP)->Arg(2)->Arg(48);

void BM_SampleGamma(benchmark::State& state) {
  vbsrm::random::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vbsrm::random::sample_gamma(rng, 9.77, 2.0));
  }
}
BENCHMARK(BM_SampleGamma);

void BM_SamplePoisson(benchmark::State& state) {
  vbsrm::random::Rng rng(2);
  const double mean = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vbsrm::random::sample_poisson(rng, mean));
  }
}
BENCHMARK(BM_SamplePoisson)->Arg(5)->Arg(500);

void BM_SampleTruncatedGammaInterval(benchmark::State& state) {
  vbsrm::random::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vbsrm::random::sample_truncated_gamma(rng, 1.0, 2.6e-2, 17.0, 18.0));
  }
}
BENCHMARK(BM_SampleTruncatedGammaInterval);

void BM_Vb2ComponentSolveGrouped(benchmark::State& state) {
  const auto dg = vbsrm::data::datasets::system17_grouped();
  const PriorPair priors{GammaPrior::from_mean_sd(50.0, 15.8),
                         GammaPrior::from_mean_sd(3.3e-2, 1.1e-2)};
  const vbsrm::core::Vb2Estimator vb(1.0, dg, priors);
  std::uint64_t n = 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vb.solve_component(n));
    n = 40 + (n + 7) % 80;
  }
}
BENCHMARK(BM_Vb2ComponentSolveGrouped);

void BM_Vb2FullFailureTimes(benchmark::State& state) {
  const auto dt = vbsrm::data::datasets::system17_failure_times();
  const auto priors = info_dt();
  for (auto _ : state) {
    const vbsrm::core::Vb2Estimator vb(1.0, dt, priors);
    benchmark::DoNotOptimize(vb.posterior().summary());
  }
}
BENCHMARK(BM_Vb2FullFailureTimes);

void BM_GibbsFailureTimes1000(benchmark::State& state) {
  const auto dt = vbsrm::data::datasets::system17_failure_times();
  const auto priors = info_dt();
  vbsrm::bayes::McmcOptions opt;
  opt.burn_in = 0;
  opt.thin = 1;
  opt.samples = 1000;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    opt.seed = seed++;
    benchmark::DoNotOptimize(
        vbsrm::bayes::gibbs_failure_times(1.0, dt, priors, opt));
  }
}
BENCHMARK(BM_GibbsFailureTimes1000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
