// Ablation A1: the paper's core design choice — the structured
// factorization Pv(T|N) Pv(mu|N) Pv(N) (VB2) versus the fully
// factorized Pv(U) Pv(mu) (VB1, Eq. 15).
//
// Sweeps datasets (failure-time / grouped), prior strengths, and
// censoring fractions, reporting how much posterior correlation and
// variance each factorization retains relative to the MCMC reference.
// The expected picture everywhere: VB1 has corr == 0 and a variance
// ratio well below 1; VB2 tracks MCMC.
#include <cmath>
#include <cstdio>

#include "bayes/gibbs.hpp"
#include "bench_common.hpp"
#include "core/vb1.hpp"
#include "data/simulate.hpp"
#include "random/rng.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

namespace {

void compare(const char* label, const data::FailureTimeData& dt,
             const bayes::PriorPair& priors) {
  const core::Vb2Estimator vb2(1.0, dt, priors);
  const core::Vb1Estimator vb1(1.0, dt, priors);
  bayes::McmcOptions mc;
  mc.seed = 77;
  mc.burn_in = 4000;
  mc.thin = 4;
  mc.samples = 10000;
  const auto chain = bayes::gibbs_failure_times(1.0, dt, priors, mc);

  const auto sm = chain.summary();
  const auto s1 = vb1.posterior().summary();
  const auto s2 = vb2.posterior().summary();
  auto corr = [](const bayes::PosteriorSummary& s) {
    return s.cov / std::sqrt(s.var_omega * s.var_beta);
  };
  std::printf("%-28s %8.3f %8.3f %8.3f %10.3f %10.3f\n", label, corr(sm),
              corr(s1), corr(s2), s1.var_omega / sm.var_omega,
              s2.var_omega / sm.var_omega);
}

}  // namespace

int main() {
  std::printf("Ablation A1: factorization structure (VB1 vs VB2)\n");
  std::printf("%-28s %8s %8s %8s %10s %10s\n", "scenario", "corrMC",
              "corrVB1", "corrVB2", "VarW1/MC", "VarW2/MC");
  print_rule();

  // 1) The System 17 stand-in under three prior strengths.
  const auto dt = data::datasets::system17_failure_times();
  compare("S17 informative", dt, info_priors_dt());
  compare("S17 flat", dt, noinfo_priors());
  {
    bayes::PriorPair weak{bayes::GammaPrior::from_mean_sd(50.0, 50.0),
                          bayes::GammaPrior::from_mean_sd(1e-5, 1e-5)};
    compare("S17 weakly informative", dt, weak);
  }

  // 2) Censoring sweep: the earlier testing stops, the more latent mass
  //    the factorization must model, and the worse VB1 gets.
  for (double frac : {0.4, 0.7, 1.2}) {
    random::Rng rng(1234);
    // True GO(80, beta) with mean life 1/beta = 1000; horizon frac*1000.
    const auto sim = data::simulate_gamma_nhpp(rng, 80.0, 1.0, 1e-3,
                                               frac * 1000.0);
    char label[64];
    std::snprintf(label, sizeof label, "sim censor at %.1f lifetimes", frac);
    compare(label, sim, noinfo_priors());
  }

  std::printf("\nReading: corrVB1 is structurally 0; VB2 keeps the MCMC\n"
              "correlation and variance.  The gap widens as censoring\n"
              "increases (more unobserved data for Pv(U) to mismodel).\n");
  return 0;
}
