// Figure 1 reproduction: contour plots of the approximate joint
// posterior densities for D_G with Info priors — NINT, LAPL, VB1, VB2 —
// plus the 10000-sample MCMC scatter (rendered as a 2-D histogram).
//
// Outputs:
//   * ASCII contours on stdout for quick inspection (the paper's
//     qualitative signatures: NINT/MCMC/VB2 tilted and right-skewed,
//     LAPL a symmetric ellipse, VB1 axis-aligned);
//   * CSV grids under figure1_out/ for external plotting.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <vector>

#include "bayes/gibbs.hpp"
#include "bayes/laplace.hpp"
#include "bench_common.hpp"
#include "core/vb1.hpp"
#include "stats/histogram.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

namespace {

constexpr int kGrid = 60;

struct Window {
  double wlo, whi, blo, bhi;
};

std::vector<std::vector<double>> densify(
    const Window& win, const std::function<double(double, double)>& f) {
  std::vector<std::vector<double>> grid(kGrid, std::vector<double>(kGrid));
  for (int i = 0; i < kGrid; ++i) {      // rows: beta (y axis)
    for (int j = 0; j < kGrid; ++j) {    // cols: omega (x axis)
      const double omega = win.wlo + (win.whi - win.wlo) * (j + 0.5) / kGrid;
      const double beta = win.blo + (win.bhi - win.blo) * (i + 0.5) / kGrid;
      grid[i][j] = f(omega, beta);
    }
  }
  return grid;
}

void emit(const std::string& name, const Window& win,
          const std::vector<std::vector<double>>& grid) {
  std::printf("\n--- %s (omega in [%.1f, %.1f] left-to-right, beta in "
              "[%.3g, %.3g] bottom-to-top) ---\n",
              name.c_str(), win.wlo, win.whi, win.blo, win.bhi);
  std::fputs(stats::ascii_contour(grid).c_str(), stdout);

  std::filesystem::create_directories("figure1_out");
  std::ofstream csv("figure1_out/" + name + ".csv");
  csv << "omega,beta,density\n";
  for (int i = 0; i < kGrid; ++i) {
    for (int j = 0; j < kGrid; ++j) {
      const double omega = win.wlo + (win.whi - win.wlo) * (j + 0.5) / kGrid;
      const double beta = win.blo + (win.bhi - win.blo) * (i + 0.5) / kGrid;
      csv << omega << ',' << beta << ',' << grid[i][j] << '\n';
    }
  }
}

}  // namespace

int main() {
  std::printf("Reproduction of Figure 1 (Okamura et al., DSN 2007): joint\n"
              "posterior contours, D_G and Info.  Expected shapes: NINT/\n"
              "MCMC/VB2 right-skewed with negative tilt; LAPL symmetric\n"
              "ellipse; VB1 axis-aligned (no correlation).\n");

  const auto dg = data::datasets::system17_grouped();
  const auto priors = info_priors_dg();

  const core::Vb2Estimator vb2(1.0, dg, priors);
  const bayes::LogPosterior post(1.0, dg, priors);
  const bayes::NintEstimator nint(post, nint_box_from_vb2(vb2));
  const bayes::LaplaceEstimator lap(post);
  const core::Vb1Estimator vb1(1.0, dg, priors);

  // Common window like the paper's axes (30..70 x 0.013..0.047 scaled to
  // our stand-in): use NINT's 0.1%..99.9% quantiles.
  const Window win{nint.quantile_omega(0.002), nint.quantile_omega(0.998),
                   nint.quantile_beta(0.002), nint.quantile_beta(0.998)};

  emit("NINT", win,
       densify(win, [&](double o, double b) { return nint.joint_density(o, b); }));
  emit("LAPL", win,
       densify(win, [&](double o, double b) { return lap.joint_density(o, b); }));

  // MCMC scatter: 10000 samples into a 2-D histogram, as in the paper.
  bayes::McmcOptions mc;
  mc.seed = 20070701;
  mc.samples = 10000;
  const auto chain = bayes::gibbs_grouped(1.0, dg, priors, mc);
  stats::Histogram2D hist(win.wlo, win.whi, kGrid, win.blo, win.bhi, kGrid);
  hist.add_all(chain.omega(), chain.beta());
  std::vector<std::vector<double>> mgrid(kGrid, std::vector<double>(kGrid));
  for (int i = 0; i < kGrid; ++i) {
    for (int j = 0; j < kGrid; ++j) mgrid[i][j] = hist.density(j, i);
  }
  emit("MCMC", win, mgrid);

  emit("VB1", win, densify(win, [&](double o, double b) {
         return vb1.posterior().joint_density(o, b);
       }));
  emit("VB2", win, densify(win, [&](double o, double b) {
         return vb2.posterior().joint_density(o, b);
       }));

  // Quantitative shape fingerprints: correlation and skew per method.
  print_header("Figure 1 shape fingerprints");
  auto corr = [](const bayes::PosteriorSummary& s) {
    return s.cov / std::sqrt(s.var_omega * s.var_beta);
  };
  std::printf("corr(NINT)=%.3f corr(LAPL)=%.3f corr(VB1)=%.3f "
              "corr(VB2)=%.3f corr(MCMC)=%.3f\n",
              corr(nint.summary()), corr(lap.summary()),
              corr(vb1.posterior().summary()), corr(vb2.posterior().summary()),
              corr(chain.summary()));
  std::printf("CSV grids written to figure1_out/*.csv\n");
  return 0;
}
