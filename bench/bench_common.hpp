// Shared scaffolding for the reproduction benches: the paper's prior
// scenarios, engine requests for them, VB2-guided NINT boxes,
// wall-clock timing, and fixed-width table printing with
// paper-vs-measured rows.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "bayes/nint.hpp"
#include "bayes/prior.hpp"
#include "core/vb2.hpp"
#include "data/datasets.hpp"
#include "engine/batch.hpp"
#include "engine/registry.hpp"

namespace vbsrm::bench {

/// Registry keys in the paper's presentation order (NINT is the
/// reference and comes first), with the table row labels.
struct MethodRow {
  const char* key;
  const char* label;
};
inline const MethodRow kPaperMethods[] = {{"nint", "NINT"},
                                          {"laplace", "LAPL"},
                                          {"mcmc", "MCMC"},
                                          {"vb1", "VB1"},
                                          {"vb2", "VB2"}};

/// Engine request for a paper scenario (GO model, alpha0 = 1).
template <typename Data>
engine::EstimatorRequest paper_request(const Data& data,
                                       const bayes::PriorPair& priors,
                                       std::uint64_t mcmc_seed) {
  engine::EstimatorRequest req(1.0, data, priors);
  req.mcmc.base.seed = mcmc_seed;
  return req;
}

/// The paper's "Info" priors (Sec. 6): good guesses for the parameters.
inline bayes::PriorPair info_priors_dt() {
  return {bayes::GammaPrior::from_mean_sd(50.0, 15.8),
          bayes::GammaPrior::from_mean_sd(1.0e-5, 3.2e-6)};
}

inline bayes::PriorPair info_priors_dg() {
  return {bayes::GammaPrior::from_mean_sd(50.0, 15.8),
          bayes::GammaPrior::from_mean_sd(3.3e-2, 1.1e-2)};
}

/// The paper's "NoInfo" scenario: flat densities.
inline bayes::PriorPair noinfo_priors() { return bayes::PriorPair::flat(); }

/// The paper's NINT integration-box rule, driven by VB2 quantiles.
inline bayes::Box nint_box_from_vb2(const core::Vb2Estimator& vb2) {
  return bayes::Box::from_quantiles(vb2.posterior().quantile_omega(0.005),
                                    vb2.posterior().quantile_omega(0.995),
                                    vb2.posterior().quantile_beta(0.005),
                                    vb2.posterior().quantile_beta(0.995));
}

/// Wall-clock seconds of a callable.
template <typename F>
double time_seconds(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_rule() {
  std::printf("%s\n", std::string(78, '-').c_str());
}

/// Relative deviation in percent, formatted like the paper's tables.
inline double rel_dev_pct(double value, double reference) {
  if (reference == 0.0) return 0.0;
  return 100.0 * (value - reference) / reference;
}

}  // namespace vbsrm::bench
