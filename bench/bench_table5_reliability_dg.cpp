// Table 5 reproduction: reliability point + 99% interval estimates on
// the grouped data D_G with Info priors, u in {1, 5} working days.
//
// Paper shape: NINT ~ MCMC ~ VB2; LAPL point estimate biased downward at
// the longer horizon (0.283 vs 0.338); VB1 intervals too narrow.
#include <cstdio>

#include "bayes/gibbs.hpp"
#include "bayes/laplace.hpp"
#include "bench_common.hpp"
#include "core/vb1.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

namespace {

void print_row(const char* name, const bayes::ReliabilityEstimate& r) {
  const bool oob = r.lower < 0.0 || r.upper > 1.0;
  std::printf("%-6s %12.4f %12.4f %12.4f%s\n", name, r.point, r.lower,
              r.upper, oob ? "   <outside [0,1]>" : "");
}

}  // namespace

int main() {
  std::printf("Reproduction of Table 5 (Okamura et al., DSN 2007)\n");
  std::printf("Paper reference (u=1, NINT): R=0.7907 [0.6618, 0.9015]\n");

  const auto dg = data::datasets::system17_grouped();
  const auto priors = info_priors_dg();
  constexpr double kLevel = 0.99;

  const core::Vb2Estimator vb2(1.0, dg, priors);
  const bayes::LogPosterior post(1.0, dg, priors);
  const bayes::NintEstimator nint(post, nint_box_from_vb2(vb2));
  const bayes::LaplaceEstimator lap(post);
  bayes::McmcOptions mc;
  mc.seed = 20070629;
  const auto chain = bayes::gibbs_grouped(1.0, dg, priors, mc);
  const core::Vb1Estimator vb1(1.0, dg, priors);

  for (double u : {1.0, 5.0}) {
    print_header("Table 5: reliability over (s_k, s_k + " +
                 std::to_string(static_cast<int>(u)) +
                 " days], D_G and Info");
    std::printf("%-6s %12s %12s %12s\n", "method", "reliability", "lower",
                "upper");
    print_rule();
    print_row("NINT", nint.reliability(u, kLevel));
    print_row("LAPL", lap.reliability(u, kLevel));
    print_row("MCMC", chain.reliability(u, kLevel));
    print_row("VB1", vb1.posterior().reliability(u, kLevel));
    print_row("VB2", vb2.posterior().reliability(u, kLevel));
  }
  return 0;
}
