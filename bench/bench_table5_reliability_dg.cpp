// Table 5 reproduction: reliability point + 99% interval estimates on
// the grouped data D_G with Info priors, u in {1, 5} working days —
// one engine batch, two reliability windows.
//
// Paper shape: NINT ~ MCMC ~ VB2; LAPL point estimate biased downward at
// the longer horizon (0.283 vs 0.338); VB1 intervals too narrow.
#include <cstdio>
#include <string>

#include "bench_common.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

namespace {

void print_row(const char* name, const bayes::ReliabilityEstimate& r) {
  const bool oob = r.lower < 0.0 || r.upper > 1.0;
  std::printf("%-6s %12.4f %12.4f %12.4f%s\n", name, r.point, r.lower,
              r.upper, oob ? "   <outside [0,1]>" : "");
}

}  // namespace

int main() {
  std::printf("Reproduction of Table 5 (Okamura et al., DSN 2007)\n");
  std::printf("Paper reference (u=1, NINT): R=0.7907 [0.6618, 0.9015]\n");

  const auto dg = data::datasets::system17_grouped();

  engine::BatchSpec spec;
  for (const auto& m : kPaperMethods) spec.methods.push_back(m.key);
  spec.requests = {paper_request(dg, info_priors_dg(), 20070629)};
  spec.levels = {0.99};
  spec.reliability_windows = {1.0, 5.0};
  const auto reports = engine::BatchRunner().run(spec);

  for (std::size_t ui = 0; ui < spec.reliability_windows.size(); ++ui) {
    const double u = spec.reliability_windows[ui];
    print_header("Table 5: reliability over (s_k, s_k + " +
                 std::to_string(static_cast<int>(u)) + " days], D_G and Info");
    std::printf("%-6s %12s %12s %12s\n", "method", "reliability", "lower",
                "upper");
    print_rule();
    for (std::size_t mi = 0; mi < std::size(kPaperMethods); ++mi) {
      const auto& report = reports[mi];
      if (!report.ok) {
        std::printf("%-6s (failed: %s)\n", kPaperMethods[mi].label,
                    report.error.c_str());
        continue;
      }
      print_row(kPaperMethods[mi].label, report.reliability[ui]);
    }
  }
  return 0;
}
