// Ablation A5 (beyond the paper): frequentist coverage of the methods'
// credible intervals.  The paper compares methods against each other on
// one data set; here we simulate from known truth and ask who is
// actually calibrated.  Expected picture from the paper's Sec. 6
// qualitative analysis:
//   * VB2 and PROFILE near nominal coverage;
//   * VB1 under-covers (its intervals are too narrow);
//   * LAPL loses omega coverage on the upper side (left-shifted,
//     symmetric intervals against a right-skewed truth).
#include <cstdio>

#include "bench_common.hpp"
#include "core/coverage.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

namespace {

void run_study(const char* label, const core::CoverageConfig& cfg) {
  print_header(std::string("coverage study: ") + label);
  std::printf("truth: omega=%.0f beta=%.3g horizon=%.0f alpha0=%.0f  "
              "level=%.0f%%  replications=%d\n",
              cfg.omega, cfg.beta, cfg.horizon, cfg.alpha0, 100 * cfg.level,
              cfg.replications);
  const double sec = time_seconds([&] {
    const auto results = core::run_coverage_study(cfg);
    std::printf("%-9s %10s %10s %14s %14s %8s\n", "method", "cov(w)",
                "cov(b)", "mean width w", "mean width b", "errors");
    print_rule();
    for (const auto& r : results) {
      std::printf("%-9s %9.1f%% %9.1f%% %14.2f %14.3e %8d\n",
                  r.method.c_str(), 100 * r.rate_omega(),
                  100 * r.rate_beta(), r.mean_width_omega, r.mean_width_beta,
                  r.failures);
    }
    std::printf("binomial se at nominal: +-%.1f%%\n",
                100 * core::coverage_standard_error(cfg.level,
                                                    cfg.replications));
  });
  std::printf("(study time: %.1f s)\n", sec);
}

}  // namespace

int main() {
  std::printf("Ablation A5: frequentist coverage of credible intervals\n");

  core::CoverageConfig base;
  base.alpha0 = 1.0;
  base.omega = 90.0;
  base.beta = 1.25e-3;
  base.horizon = 1600.0;   // ~86%% of faults observable
  base.level = 0.9;
  base.replications = 250;
  base.seed = 1234;
  base.priors = {bayes::GammaPrior::from_mean_sd(90.0, 45.0),
                 bayes::GammaPrior::from_mean_sd(1.25e-3, 6e-4)};
  run_study("GO, moderate censoring, honest weak priors", base);

  core::CoverageConfig heavy = base;
  heavy.horizon = 700.0;   // ~58%% observed: harder
  heavy.seed = 1235;
  run_study("GO, heavy censoring", heavy);

  core::CoverageConfig dss = base;
  dss.alpha0 = 2.0;
  dss.beta = 2.5e-3;       // same mean life
  dss.seed = 1236;
  run_study("delayed S-shaped truth", dss);

  core::CoverageConfig biased = base;
  biased.priors = {bayes::GammaPrior::from_mean_sd(45.0, 15.0),  // wrong!
                   bayes::GammaPrior::from_mean_sd(1.25e-3, 6e-4)};
  biased.seed = 1237;
  run_study("misleading omega prior (mean 45 vs truth 90)", biased);

  std::printf(
      "\nReading: with honest priors VB2/LAPL/PROFILE sit near nominal\n"
      "while VB1 under-covers badly (60-75%% at the 90%% level) through\n"
      "its collapsed variance — the coverage cost of the Eq. (15)\n"
      "factorization the paper replaces.  Under heavy censoring the\n"
      "priors dominate and every non-VB1 method turns conservative.\n"
      "A confidently wrong prior sinks all Bayesian methods together:\n"
      "intervals are only as honest as the prior (the paper's Info\n"
      "scenario assumes a good guess).\n");
  return 0;
}
