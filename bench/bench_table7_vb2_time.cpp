// Table 7 reproduction: VB2 computation time and tail mass Pv(n_max)
// at fixed truncation points n_max in {100, 200, 500, 1000}, for both
// data schemes with Info priors.  Runs through the engine: timing and
// Pv(n_max) are read off the uniform Diagnostics struct.
//
// Paper (Mathematica): DT times 0.56/1.44/6.59/23.22 s, DG times
// 13.28/58.32/369.53/1429.41 s; Pv(n_max) drops from ~1e-11 (DT,
// n_max=100) to ~1e-86 (n_max=1000).  Shape to verify: Pv(n_max)
// collapses super-exponentially, VB2 costs grow with n_max, and the
// grouped scheme is far more expensive per component than the
// failure-time scheme (no closed form: every component needs the
// fixed-point iteration with incomplete-gamma evaluations).
#include <cstdio>

#include "bench_common.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

namespace {

template <typename Data>
void run_case(const char* title, const Data& data,
              const bayes::PriorPair& priors) {
  print_header(std::string("Table 7: computation time for VB2, ") + title);
  std::printf("%8s %14s %12s %22s\n", "n_max", "Pv(n_max)", "time (sec)",
              "paper time (sec, Mma)");
  print_rule();
  const double paper_dt[] = {0.56, 1.44, 6.59, 23.22};
  const double paper_dg[] = {13.28, 58.32, 369.53, 1429.41};
  const bool grouped = std::is_same_v<Data, data::GroupedData>;
  int row = 0;
  for (std::uint64_t n_max : {100u, 200u, 500u, 1000u}) {
    auto req = paper_request(data, priors, 0);
    req.vb2.n_max = n_max;
    req.vb2.adapt_n_max = false;  // Table 7 fixes the truncation point
    const auto vb2 = engine::make("vb2", req);
    std::printf("%8llu %14.3e %12.4f %22.2f\n",
                static_cast<unsigned long long>(n_max),
                vb2->diagnostics().tail_mass_at_n_max,
                vb2->diagnostics().wall_time_ms / 1000.0,
                grouped ? paper_dg[row] : paper_dt[row]);
    ++row;
  }
}

}  // namespace

int main() {
  std::printf("Reproduction of Table 7 (Okamura et al., DSN 2007)\n");
  std::printf("Paper: DT Pv(n_max) = 2.35e-11 / 4.48e-21 / 3.67e-46 / "
              "1.94e-86 at n_max = 100/200/500/1000.\n");

  const auto dt = data::datasets::system17_failure_times();
  const auto dg = data::datasets::system17_grouped();
  run_case("DT and Info", dt, info_priors_dt());
  run_case("DG and Info", dg, info_priors_dg());

  std::printf("\nShape check (paper Sec. 6): with a tolerance of 5e-15 the "
              "Step-4 criterion already holds at n_max = 200 for D_T.\n");
  auto adaptive = paper_request(dt, info_priors_dt(), 0);
  adaptive.vb2.epsilon = 5e-15;
  adaptive.vb2.n_max = 100;
  const auto vb2 = engine::make("vb2", adaptive);
  std::printf("Adaptive run: n_max_used=%llu, Pv(n_max)=%.3e, iterations=%llu\n",
              static_cast<unsigned long long>(vb2->diagnostics().n_max_used),
              vb2->diagnostics().tail_mass_at_n_max,
              static_cast<unsigned long long>(vb2->diagnostics().iterations));
  return 0;
}
