// Table 6 reproduction: MCMC computation time at the paper's exact
// configuration (burn-in 10000, thinning 10, 20000 collected samples),
// timed through the engine (wall time and variate accounting come from
// the estimator's Diagnostics).
//
// The paper (Mathematica, 2007 hardware) reports 541.97 s for D_T
// (630,000 variates) and 4036.38 s for D_G (8,610,000 variates).
// Absolute times differ by orders of magnitude in compiled C++ on 2026
// hardware; the *shape* to verify is the variate accounting and the
// large D_G/D_T cost ratio caused by data augmentation.
#include <cstdio>

#include "bench_common.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

int main() {
  std::printf("Reproduction of Table 6 (Okamura et al., DSN 2007)\n");
  std::printf("Paper: DT-Info 630000 variates, 541.97 s; "
              "DG-Info 8610000 variates, 4036.38 s (Mathematica).\n");

  const auto dt = data::datasets::system17_failure_times();
  const auto dg = data::datasets::system17_grouped();

  print_header("Table 6: computation time for MCMC");
  std::printf("%-14s %16s %12s %18s\n", "data", "random variates",
              "time (sec)", "paper time (sec)");
  print_rule();

  const auto chain_t =
      engine::make("mcmc", paper_request(dt, info_priors_dt(), 20070630));
  std::printf("%-14s %16llu %12.3f %18.2f\n", "DT and Info",
              static_cast<unsigned long long>(chain_t->diagnostics().variates),
              chain_t->diagnostics().wall_time_ms / 1000.0, 541.97);

  const auto chain_g =
      engine::make("mcmc", paper_request(dg, info_priors_dg(), 20070630));
  std::printf("%-14s %16llu %12.3f %18.2f\n", "DG and Info",
              static_cast<unsigned long long>(chain_g->diagnostics().variates),
              chain_g->diagnostics().wall_time_ms / 1000.0, 4036.38);

  std::printf("\nShape check: DG/DT cost ratio = %.1fx here vs %.1fx in the "
              "paper (data augmentation dominates).\n",
              chain_g->diagnostics().wall_time_ms /
                  chain_t->diagnostics().wall_time_ms,
              4036.38 / 541.97);
  return 0;
}
