// Table 4 reproduction: point and two-sided 99% interval estimates of
// software reliability R(t_e + u | t_e), D_T with Info priors,
// u in {1000, 10000} — a single engine batch with two reliability
// windows (each method is fitted exactly once).
//
// Paper shape: NINT ~ MCMC ~ VB2; VB1 intervals too narrow; LAPL upper
// bound can exceed 1 (flagged <...> in the paper).
#include <cstdio>
#include <string>

#include "bench_common.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

namespace {

void print_row(const char* name, const bayes::ReliabilityEstimate& r) {
  const bool oob = r.lower < 0.0 || r.upper > 1.0;
  std::printf("%-6s %12.4f %12.4f %12.4f%s\n", name, r.point, r.lower,
              r.upper, oob ? "   <outside [0,1]>" : "");
}

}  // namespace

int main() {
  std::printf("Reproduction of Table 4 (Okamura et al., DSN 2007)\n");
  std::printf("Paper reference (u=1000, NINT): R=0.9791 [0.9483, 0.9946]\n");

  const auto dt = data::datasets::system17_failure_times();

  engine::BatchSpec spec;
  for (const auto& m : kPaperMethods) spec.methods.push_back(m.key);
  spec.requests = {paper_request(dt, info_priors_dt(), 20070628)};
  spec.levels = {0.99};
  spec.reliability_windows = {1000.0, 10000.0};
  const auto reports = engine::BatchRunner().run(spec);

  for (std::size_t ui = 0; ui < spec.reliability_windows.size(); ++ui) {
    const double u = spec.reliability_windows[ui];
    print_header("Table 4: reliability over (te, te + " +
                 std::to_string(static_cast<int>(u)) + "], D_T and Info");
    std::printf("%-6s %12s %12s %12s\n", "method", "reliability", "lower",
                "upper");
    print_rule();
    for (std::size_t mi = 0; mi < std::size(kPaperMethods); ++mi) {
      const auto& report = reports[mi];
      if (!report.ok) {
        std::printf("%-6s (failed: %s)\n", kPaperMethods[mi].label,
                    report.error.c_str());
        continue;
      }
      print_row(kPaperMethods[mi].label, report.reliability[ui]);
    }
  }
  return 0;
}
