// Table 4 reproduction: point and two-sided 99% interval estimates of
// software reliability R(t_e + u | t_e), D_T with Info priors,
// u in {1000, 10000}.
//
// Paper shape: NINT ~ MCMC ~ VB2; VB1 intervals too narrow; LAPL upper
// bound can exceed 1 (flagged <...> in the paper).
#include <cstdio>

#include "bayes/gibbs.hpp"
#include "bayes/laplace.hpp"
#include "bench_common.hpp"
#include "core/vb1.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

namespace {

void print_row(const char* name, const bayes::ReliabilityEstimate& r) {
  const bool oob = r.lower < 0.0 || r.upper > 1.0;
  std::printf("%-6s %12.4f %12.4f %12.4f%s\n", name, r.point, r.lower,
              r.upper, oob ? "   <outside [0,1]>" : "");
}

}  // namespace

int main() {
  std::printf("Reproduction of Table 4 (Okamura et al., DSN 2007)\n");
  std::printf("Paper reference (u=1000, NINT): R=0.9791 [0.9483, 0.9946]\n");

  const auto dt = data::datasets::system17_failure_times();
  const auto priors = info_priors_dt();
  constexpr double kLevel = 0.99;

  const core::Vb2Estimator vb2(1.0, dt, priors);
  const bayes::LogPosterior post(1.0, dt, priors);
  const bayes::NintEstimator nint(post, nint_box_from_vb2(vb2));
  const bayes::LaplaceEstimator lap(post);
  bayes::McmcOptions mc;
  mc.seed = 20070628;
  const auto chain = bayes::gibbs_failure_times(1.0, dt, priors, mc);
  const core::Vb1Estimator vb1(1.0, dt, priors);

  for (double u : {1000.0, 10000.0}) {
    print_header("Table 4: reliability over (te, te + " +
                 std::to_string(static_cast<int>(u)) + "], D_T and Info");
    std::printf("%-6s %12s %12s %12s\n", "method", "reliability", "lower",
                "upper");
    print_rule();
    print_row("NINT", nint.reliability(u, kLevel));
    print_row("LAPL", lap.reliability(u, kLevel));
    print_row("MCMC", chain.reliability(u, kLevel));
    print_row("VB1", vb1.posterior().reliability(u, kLevel));
    print_row("VB2", vb2.posterior().reliability(u, kLevel));
  }
  return 0;
}
