// Table 1 reproduction: moments of the approximate posterior
// distributions of (omega, beta) under NINT / LAPL / MCMC / VB1 / VB2
// for {D_T, D_G} x {Info, NoInfo}, with relative deviations from NINT.
//
// The whole 5-method x 4-scenario grid is evaluated by the engine's
// BatchRunner on a worker pool; reports come back in deterministic
// order, so the printout is identical to a serial run.
//
// Shape expectations from the paper (absolute values differ because the
// System 17 data set is a documented synthetic stand-in):
//   * NINT ~ MCMC ~ VB2 everywhere except D_G-NoInfo;
//   * LAPL: means shifted left, Cov misestimated;
//   * VB1: Cov == 0, Var(omega)/Var(beta) strongly underestimated;
//   * D_G-NoInfo: all methods disagree, huge variances (long tail).
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

namespace {

void print_row(const char* name, const bayes::PosteriorSummary& s,
               const std::optional<bayes::PosteriorSummary>& ref) {
  std::printf("%-6s %10.2f %11.3e %12.4g %12.4e %13.4e\n", name,
              s.mean_omega, s.mean_beta, s.var_omega, s.var_beta, s.cov);
  if (ref) {
    std::printf("%-6s %9.1f%% %10.1f%% %11.1f%% %11.1f%% %12.1f%%\n", "",
                rel_dev_pct(s.mean_omega, ref->mean_omega),
                rel_dev_pct(s.mean_beta, ref->mean_beta),
                rel_dev_pct(s.var_omega, ref->var_omega),
                rel_dev_pct(s.var_beta, ref->var_beta),
                rel_dev_pct(s.cov, ref->cov));
  }
}

}  // namespace

int main() {
  std::printf("Reproduction of Table 1 (Okamura et al., DSN 2007)\n");
  std::printf("Paper reference (DT-Info, NINT): E[w]=41.78 E[b]=1.11e-05 "
              "Var(w)=37.69 Var(b)=4.26e-12 Cov=-2.13e-06\n");
  std::printf("Shape checks: VB1 Cov==0 & Var collapsed; LAPL left-shifted; "
              "VB2/MCMC within a few %% of NINT; DG-NoInfo unstable.\n");

  const auto dt = data::datasets::system17_failure_times();
  const auto dg = data::datasets::system17_grouped();
  const char* scenarios[] = {
      "DT and Info", "DT and NoInfo", "DG and Info",
      "DG and NoInfo (expected: unstable, all methods disagree)"};

  engine::BatchSpec spec;
  for (const auto& m : kPaperMethods) spec.methods.push_back(m.key);
  spec.requests = {paper_request(dt, info_priors_dt(), 20070625),
                   paper_request(dt, noinfo_priors(), 20070625),
                   paper_request(dg, info_priors_dg(), 20070625),
                   paper_request(dg, noinfo_priors(), 20070625)};
  spec.levels = {0.99};

  const engine::BatchRunner runner;  // hardware_concurrency workers
  const auto reports = runner.run(spec);
  const std::size_t n_requests = spec.requests.size();

  for (std::size_t ri = 0; ri < n_requests; ++ri) {
    print_header(std::string("Table 1: ") + scenarios[ri]);
    std::printf("%-6s %10s %11s %12s %12s %13s\n", "method", "E[w]", "E[b]",
                "Var(w)", "Var(b)", "Cov(w,b)");
    print_rule();

    std::optional<bayes::PosteriorSummary> ref;
    for (std::size_t mi = 0; mi < std::size(kPaperMethods); ++mi) {
      const auto& report = reports[mi * n_requests + ri];
      if (!report.ok) {
        std::printf("%-6s (failed: %s)\n", kPaperMethods[mi].label,
                    report.error.c_str());
        continue;
      }
      print_row(kPaperMethods[mi].label, report.summary, ref);
      if (mi == 0) ref = report.summary;  // NINT is the reference
    }
  }
  return 0;
}
