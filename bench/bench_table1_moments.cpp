// Table 1 reproduction: moments of the approximate posterior
// distributions of (omega, beta) under NINT / LAPL / MCMC / VB1 / VB2
// for {D_T, D_G} x {Info, NoInfo}, with relative deviations from NINT.
//
// Shape expectations from the paper (absolute values differ because the
// System 17 data set is a documented synthetic stand-in):
//   * NINT ~ MCMC ~ VB2 everywhere except D_G-NoInfo;
//   * LAPL: means shifted left, Cov misestimated;
//   * VB1: Cov == 0, Var(omega)/Var(beta) strongly underestimated;
//   * D_G-NoInfo: all methods disagree, huge variances (long tail).
#include <cstdio>
#include <optional>
#include <string>

#include "bayes/gibbs.hpp"
#include "bayes/laplace.hpp"
#include "bench_common.hpp"
#include "core/vb1.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

namespace {

void print_row(const char* name, const bayes::PosteriorSummary& s,
               const std::optional<bayes::PosteriorSummary>& ref) {
  std::printf("%-6s %10.2f %11.3e %12.4g %12.4e %13.4e\n", name,
              s.mean_omega, s.mean_beta, s.var_omega, s.var_beta, s.cov);
  if (ref) {
    std::printf("%-6s %9.1f%% %10.1f%% %11.1f%% %11.1f%% %12.1f%%\n", "",
                rel_dev_pct(s.mean_omega, ref->mean_omega),
                rel_dev_pct(s.mean_beta, ref->mean_beta),
                rel_dev_pct(s.var_omega, ref->var_omega),
                rel_dev_pct(s.var_beta, ref->var_beta),
                rel_dev_pct(s.cov, ref->cov));
  }
}

template <typename Data>
void run_case(const std::string& title, const Data& data,
              const bayes::PriorPair& priors) {
  print_header("Table 1: " + title);
  std::printf("%-6s %10s %11s %12s %12s %13s\n", "method", "E[w]", "E[b]",
              "Var(w)", "Var(b)", "Cov(w,b)");
  print_rule();

  const core::Vb2Estimator vb2(1.0, data, priors);
  const bayes::LogPosterior post(1.0, data, priors);
  const bayes::NintEstimator nint(post, nint_box_from_vb2(vb2));
  const auto ref = nint.summary();
  print_row("NINT", ref, std::nullopt);

  try {
    const bayes::LaplaceEstimator lap(post);
    print_row("LAPL", lap.summary(), ref);
  } catch (const std::exception& e) {
    std::printf("LAPL   (failed: %s)\n", e.what());
  }

  bayes::McmcOptions mc;  // paper configuration
  mc.seed = 20070625;
  const auto chain = [&] {
    if constexpr (std::is_same_v<Data, data::GroupedData>) {
      return bayes::gibbs_grouped(1.0, data, priors, mc);
    } else {
      return bayes::gibbs_failure_times(1.0, data, priors, mc);
    }
  }();
  print_row("MCMC", chain.summary(), ref);

  const core::Vb1Estimator vb1(1.0, data, priors);
  print_row("VB1", vb1.posterior().summary(), ref);
  print_row("VB2", vb2.posterior().summary(), ref);
}

}  // namespace

int main() {
  std::printf("Reproduction of Table 1 (Okamura et al., DSN 2007)\n");
  std::printf("Paper reference (DT-Info, NINT): E[w]=41.78 E[b]=1.11e-05 "
              "Var(w)=37.69 Var(b)=4.26e-12 Cov=-2.13e-06\n");
  std::printf("Shape checks: VB1 Cov==0 & Var collapsed; LAPL left-shifted; "
              "VB2/MCMC within a few %% of NINT; DG-NoInfo unstable.\n");

  const auto dt = data::datasets::system17_failure_times();
  const auto dg = data::datasets::system17_grouped();

  run_case("DT and Info", dt, info_priors_dt());
  run_case("DT and NoInfo", dt, noinfo_priors());
  run_case("DG and Info", dg, info_priors_dg());
  run_case("DG and NoInfo (expected: unstable, all methods disagree)", dg,
           noinfo_priors());
  return 0;
}
