// Hot-path micro/meso benchmark: VB2 fits and gamma-mixture reliability
// functionals with the optimized paths (GroupedMassTable zeta, lgamma
// ladder, chunked sweep, functional quadrature cache) against the naive
// baselines those paths replace.  Every scenario first asserts that the
// two paths agree, then times them and emits a machine-readable
// BENCH_vb2.json:
//
//   { "bench": "vb2_hotpaths", "mode": "full"|"smoke",
//     "scenarios": [ { "name", "kind": "fit"|"functional",
//                      "fit_seconds", "functional_seconds",
//                      "baseline_seconds", "optimized_seconds",
//                      "speedup" } ] }
//
// Usage: bench_perf_hotpaths [--smoke] [--out PATH]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/gamma_mixture.hpp"
#include "core/vb2.hpp"
#include "data/datasets.hpp"
#include "data/simulate.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace c = vbsrm::core;
namespace b = vbsrm::bayes;
namespace d = vbsrm::data;
using vbsrm::bench::time_seconds;

namespace {

struct Scenario {
  std::string name;
  std::string kind;  // "fit" or "functional"
  double baseline_seconds = 0.0;
  double optimized_seconds = 0.0;
  double speedup() const { return baseline_seconds / optimized_seconds; }
};

c::Vb2Options naive_vb2() {
  c::Vb2Options o;
  o.threads = 1;
  o.sweep_chunk = 0;
  o.use_zeta_table = false;
  o.use_lgamma_recurrence = false;
  o.use_steffensen = false;
  return o;
}

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED equivalence check: %s\n", what);
    std::exit(1);
  }
}

bool close_rel(double a, double bb, double rel) {
  return std::abs(a - bb) <= rel * std::max(std::abs(a), std::abs(bb));
}

/// Time f(), repeating until ~0.2 s has elapsed so sub-millisecond fast
/// paths are still resolvable; returns seconds per call.
template <typename F>
double time_amortized(F&& f) {
  double total = 0.0;
  int reps = 0;
  do {
    total += time_seconds(f);
    ++reps;
  } while (total < 0.2 && reps < 1000);
  return total / reps;
}

Scenario bench_fit_grouped(bool smoke) {
  // Large-n_max grouped VB2 fit: the tentpole workload.  A fixed
  // component range keeps both paths solving the identical ladder.
  const auto dg = d::datasets::system17_grouped();
  const auto priors = vbsrm::bench::info_priors_dg();
  c::Vb2Options fast;
  c::Vb2Options naive = naive_vb2();
  fast.n_max = naive.n_max = smoke ? 400 : 2000;
  fast.adapt_n_max = naive.adapt_n_max = false;

  double s_fast_mean = 0.0, s_naive_mean = 0.0;
  Scenario s{"vb2_fit_grouped_large_nmax", "fit"};
  s.optimized_seconds = time_amortized([&] {
    const c::Vb2Estimator vb(1.0, dg, priors, fast);
    s_fast_mean = vb.posterior().summary().mean_beta;
  });
  s.baseline_seconds = time_amortized([&] {
    const c::Vb2Estimator vb(1.0, dg, priors, naive);
    s_naive_mean = vb.posterior().summary().mean_beta;
  });
  require(close_rel(s_fast_mean, s_naive_mean, 1e-8),
          "grouped fit mean_beta fast vs naive");
  return s;
}

Scenario bench_fit_ft_alpha2(bool smoke) {
  // Failure-time fit with alpha0 = 2: no closed form, so every
  // component runs the fixed point through truncated tail means.
  vbsrm::random::Rng rng(71);
  const auto ft = d::simulate_gamma_nhpp(rng, 150.0, 2.0, 2.0e-3, 2500.0);
  const auto priors = b::PriorPair::flat();
  c::Vb2Options fast;
  c::Vb2Options naive = naive_vb2();
  fast.n_max = naive.n_max = smoke ? 800 : 4000;
  fast.adapt_n_max = naive.adapt_n_max = false;

  double s_fast_mean = 0.0, s_naive_mean = 0.0;
  Scenario s{"vb2_fit_failure_time_alpha2_large_nmax", "fit"};
  s.optimized_seconds = time_amortized([&] {
    const c::Vb2Estimator vb(2.0, ft, priors, fast);
    s_fast_mean = vb.posterior().summary().mean_beta;
  });
  s.baseline_seconds = time_amortized([&] {
    const c::Vb2Estimator vb(2.0, ft, priors, naive);
    s_naive_mean = vb.posterior().summary().mean_beta;
  });
  require(close_rel(s_fast_mean, s_naive_mean, 1e-8),
          "alpha0=2 fit mean_beta fast vs naive");
  return s;
}

/// A synthetic >= 500-component mixture shaped like a NoInfo VB2
/// posterior: geometric weights, omega/beta parameters drifting with N.
/// Tuned so beta * horizon ~ 3 and omega * h spans ~1..13: the
/// reliability distribution then spreads over (0.005, 0.5) and its
/// quantiles sit mid-range, as in the paper's Tables 4-5, rather than
/// degenerating to R ~ 1.
c::GammaMixturePosterior make_wide_mixture(int n_components) {
  std::vector<c::ProductGammaComponent> comps;
  comps.reserve(n_components);
  for (int k = 0; k < n_components; ++k) {
    c::ProductGammaComponent comp;
    comp.n = 40 + static_cast<std::uint64_t>(k);
    comp.weight = std::exp(-0.01 * k);
    const double nd = static_cast<double>(comp.n);
    comp.omega = {1.0 + nd, 1.05};
    comp.beta = {1.0 + nd, (1.0 + nd) / 3e-3};
    comps.push_back(comp);
  }
  return c::GammaMixturePosterior(std::move(comps), 1.0, 1000.0);
}

Scenario bench_reliability_quantile(bool smoke) {
  const int n_comp = smoke ? 500 : 600;
  auto cached = make_wide_mixture(n_comp);
  auto naive = make_wide_mixture(n_comp);
  naive.set_functional_cache(false);
  const double u = 200.0;
  const std::vector<double> ps =
      smoke ? std::vector<double>{0.05} : std::vector<double>{0.05, 0.95};

  for (const double p : ps) {
    require(std::abs(cached.reliability_quantile(p, u) -
                     naive.reliability_quantile(p, u)) < 1e-9,
            "reliability_quantile cached vs naive");
  }

  Scenario s{"reliability_quantile_600_component_mixture", "functional"};
  s.optimized_seconds = time_amortized([&] {
    for (const double p : ps) cached.reliability_quantile(p, u);
  });
  s.baseline_seconds = time_amortized([&] {
    for (const double p : ps) naive.reliability_quantile(p, u);
  });
  return s;
}

Scenario bench_reliability_point(bool smoke) {
  const int n_comp = smoke ? 500 : 600;
  auto cached = make_wide_mixture(n_comp);
  auto naive = make_wide_mixture(n_comp);
  naive.set_functional_cache(false);
  const double u = 200.0;
  require(std::abs(cached.reliability_point(u) -
                   naive.reliability_point(u)) < 1e-10,
          "reliability_point cached vs naive");
  Scenario s{"reliability_point_600_component_mixture", "functional"};
  s.optimized_seconds =
      time_amortized([&] { cached.reliability_point(u); });
  s.baseline_seconds = time_amortized([&] { naive.reliability_point(u); });
  return s;
}

Scenario bench_sample(bool smoke) {
  const int n_comp = smoke ? 500 : 600;
  const auto post = make_wide_mixture(n_comp);
  const int draws = smoke ? 20000 : 100000;
  // Baseline: the pre-optimization linear subtractive scan, including
  // the same two gamma draws from the picked component.
  auto linear_sample = [&](vbsrm::random::Rng& rng) {
    double uu = rng.next_double();
    const c::ProductGammaComponent* pick = &post.components().back();
    for (const auto& comp : post.components()) {
      if (uu < comp.weight) {
        pick = &comp;
        break;
      }
      uu -= comp.weight;
    }
    return vbsrm::random::sample_gamma(rng, pick->omega.shape,
                                       pick->omega.rate) +
           vbsrm::random::sample_gamma(rng, pick->beta.shape,
                                       pick->beta.rate);
  };
  Scenario s{"posterior_sample_600_component_mixture", "functional"};
  vbsrm::random::Rng r1(9), r2(9);
  double sink = 0.0;
  s.optimized_seconds = time_amortized([&] {
    for (int i = 0; i < draws; ++i) sink += post.sample(r1).first;
  });
  s.baseline_seconds = time_amortized([&] {
    for (int i = 0; i < draws; ++i) sink += linear_sample(r2);
  });
  if (sink == 42.0) std::printf(" ");  // keep the sink live
  return s;
}

void write_json(const std::string& path, bool smoke,
                const std::vector<Scenario>& scenarios) {
  std::ofstream out(path);
  out.precision(6);
  out << "{\n  \"bench\": \"vb2_hotpaths\",\n  \"mode\": \""
      << (smoke ? "smoke" : "full") << "\",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    const bool fit = s.kind == "fit";
    out << "    {\"name\": \"" << s.name << "\", \"kind\": \"" << s.kind
        << "\", \"fit_seconds\": " << (fit ? s.optimized_seconds : 0.0)
        << ", \"functional_seconds\": "
        << (fit ? 0.0 : s.optimized_seconds)
        << ", \"baseline_seconds\": " << s.baseline_seconds
        << ", \"optimized_seconds\": " << s.optimized_seconds
        << ", \"speedup\": " << s.speedup() << "}"
        << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_vb2.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  std::vector<Scenario> scenarios;
  scenarios.push_back(bench_fit_grouped(smoke));
  scenarios.push_back(bench_fit_ft_alpha2(smoke));
  scenarios.push_back(bench_reliability_quantile(smoke));
  scenarios.push_back(bench_reliability_point(smoke));
  scenarios.push_back(bench_sample(smoke));

  std::printf("%-45s %12s %12s %9s\n", "scenario", "baseline[s]",
              "optimized[s]", "speedup");
  for (const Scenario& s : scenarios) {
    std::printf("%-45s %12.4f %12.4f %8.2fx\n", s.name.c_str(),
                s.baseline_seconds, s.optimized_seconds, s.speedup());
  }
  write_json(out_path, smoke, scenarios);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
