// Ablation A2: the truncation point n_max and the Step-4 tolerance.
//
// The paper's algorithm doubles n_max until Pv(n_max) < eps.  This bench
// quantifies the accuracy/cost trade-off: posterior moments as a
// function of a *fixed* n_max (against a converged reference), and the
// cost of the adaptive loop across tolerances.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

int main() {
  std::printf("Ablation A2: n_max truncation and tolerance epsilon\n");

  const auto dt = data::datasets::system17_failure_times();
  const auto priors = info_priors_dt();

  // Converged reference.
  core::Vb2Options ref_opt;
  ref_opt.epsilon = 1e-30;
  const core::Vb2Estimator ref(1.0, dt, priors, ref_opt);
  const auto ref_s = ref.posterior().summary();
  std::printf("reference: n_max=%llu E[w]=%.6f Var(w)=%.6f\n",
              static_cast<unsigned long long>(ref.diagnostics().n_max_used),
              ref_s.mean_omega, ref_s.var_omega);

  print_header("fixed n_max sweep (D_T, Info)");
  std::printf("%8s %14s %14s %14s %12s\n", "n_max", "Pv(n_max)",
              "|dE[w]|/E[w]", "|dVar|/Var", "time (ms)");
  print_rule();
  for (std::uint64_t n_max : {45u, 50u, 60u, 80u, 100u, 150u, 200u, 400u}) {
    core::Vb2Options opt;
    opt.n_max = n_max;
    opt.adapt_n_max = false;
    double tail = 0.0, de = 0.0, dv = 0.0;
    const double sec = time_seconds([&] {
      const core::Vb2Estimator vb(1.0, dt, priors, opt);
      tail = vb.diagnostics().prob_at_n_max;
      const auto s = vb.posterior().summary();
      de = std::abs(s.mean_omega - ref_s.mean_omega) / ref_s.mean_omega;
      dv = std::abs(s.var_omega - ref_s.var_omega) / ref_s.var_omega;
    });
    std::printf("%8llu %14.3e %14.3e %14.3e %12.3f\n",
                static_cast<unsigned long long>(n_max), tail, de, dv,
                1e3 * sec);
  }

  print_header("adaptive tolerance sweep (D_T, Info)");
  std::printf("%10s %10s %14s %12s\n", "epsilon", "n_max", "Pv(n_max)",
              "time (ms)");
  print_rule();
  for (double eps : {1e-6, 1e-9, 1e-12, 5e-15, 1e-20, 1e-30}) {
    core::Vb2Options opt;
    opt.n_max = 50;
    opt.epsilon = eps;
    double tail = 0.0;
    std::uint64_t used = 0;
    const double sec = time_seconds([&] {
      const core::Vb2Estimator vb(1.0, dt, priors, opt);
      tail = vb.diagnostics().prob_at_n_max;
      used = vb.diagnostics().n_max_used;
    });
    std::printf("%10.0e %10llu %14.3e %12.3f\n", eps,
                static_cast<unsigned long long>(used), tail, 1e3 * sec);
  }

  std::printf("\nReading: moments converge to ~1e-6 relative error once the\n"
              "tail mass drops below ~1e-9; the paper's eps=5e-15 is very\n"
              "conservative and still cheap because the tail collapses\n"
              "super-exponentially in n_max.\n");
  return 0;
}
