// Table 2 reproduction: two-sided 99% credible intervals for omega and
// beta on the failure-time data D_T, Info and NoInfo priors, for all
// five methods with relative deviations from NINT.
//
// Paper shape: MCMC/VB2 within ~3% of NINT; LAPL shifted left on both
// ends; VB1 too narrow (beta bounds off by 15-20%).
#include <cstdio>

#include "bayes/gibbs.hpp"
#include "bayes/laplace.hpp"
#include "bench_common.hpp"
#include "core/vb1.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

namespace {

struct Row {
  double wl, wu, bl, bu;
};

void print_row(const char* name, const Row& r, const Row* ref) {
  std::printf("%-6s %10.2f %10.2f %12.3e %12.3e\n", name, r.wl, r.wu, r.bl,
              r.bu);
  if (ref) {
    std::printf("%-6s %9.1f%% %9.1f%% %11.1f%% %11.1f%%\n", "",
                rel_dev_pct(r.wl, ref->wl), rel_dev_pct(r.wu, ref->wu),
                rel_dev_pct(r.bl, ref->bl), rel_dev_pct(r.bu, ref->bu));
  }
}

void run_case(const char* title, const data::FailureTimeData& dt,
              const bayes::PriorPair& priors) {
  print_header(std::string("Table 2: 99% CIs, D_T, ") + title);
  std::printf("%-6s %10s %10s %12s %12s\n", "method", "w_lower", "w_upper",
              "b_lower", "b_upper");
  print_rule();
  constexpr double kLevel = 0.99;

  const core::Vb2Estimator vb2(1.0, dt, priors);
  const bayes::LogPosterior post(1.0, dt, priors);
  const bayes::NintEstimator nint(post, nint_box_from_vb2(vb2));
  const auto no = nint.interval_omega(kLevel);
  const auto nb = nint.interval_beta(kLevel);
  const Row ref{no.lower, no.upper, nb.lower, nb.upper};
  print_row("NINT", ref, nullptr);

  const bayes::LaplaceEstimator lap(post);
  const auto lo = lap.interval_omega(kLevel);
  const auto lb = lap.interval_beta(kLevel);
  print_row("LAPL", {lo.lower, lo.upper, lb.lower, lb.upper}, &ref);

  bayes::McmcOptions mc;
  mc.seed = 20070626;
  const auto chain = bayes::gibbs_failure_times(1.0, dt, priors, mc);
  const auto mo = chain.interval_omega(kLevel);
  const auto mb = chain.interval_beta(kLevel);
  print_row("MCMC", {mo.lower, mo.upper, mb.lower, mb.upper}, &ref);

  const core::Vb1Estimator vb1(1.0, dt, priors);
  const auto v1o = vb1.posterior().interval_omega(kLevel);
  const auto v1b = vb1.posterior().interval_beta(kLevel);
  print_row("VB1", {v1o.lower, v1o.upper, v1b.lower, v1b.upper}, &ref);

  const auto v2o = vb2.posterior().interval_omega(kLevel);
  const auto v2b = vb2.posterior().interval_beta(kLevel);
  print_row("VB2", {v2o.lower, v2o.upper, v2b.lower, v2b.upper}, &ref);
}

}  // namespace

int main() {
  std::printf("Reproduction of Table 2 (Okamura et al., DSN 2007)\n");
  std::printf("Paper reference (Info, NINT): w=[27.74, 59.45], "
              "b=[6.27e-06, 1.69e-05]\n");
  const auto dt = data::datasets::system17_failure_times();
  run_case("Info", dt, info_priors_dt());
  run_case("NoInfo", dt, noinfo_priors());
  return 0;
}
