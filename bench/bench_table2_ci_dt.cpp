// Table 2 reproduction: two-sided 99% credible intervals for omega and
// beta on the failure-time data D_T, Info and NoInfo priors, for all
// five methods (one engine request per scenario, one loop) with
// relative deviations from NINT.
//
// Paper shape: MCMC/VB2 within ~3% of NINT; LAPL shifted left on both
// ends; VB1 too narrow (beta bounds off by 15-20%).
#include <cstdio>
#include <optional>
#include <string>

#include "bench_common.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

namespace {

void print_interval_row(const char* name, const engine::EstimationReport& r,
                        const std::optional<engine::EstimationReport>& ref) {
  std::printf("%-6s %10.2f %10.2f %12.3e %12.3e\n", name, r.omega_interval.lower,
              r.omega_interval.upper, r.beta_interval.lower,
              r.beta_interval.upper);
  if (ref) {
    std::printf("%-6s %9.1f%% %9.1f%% %11.1f%% %11.1f%%\n", "",
                rel_dev_pct(r.omega_interval.lower, ref->omega_interval.lower),
                rel_dev_pct(r.omega_interval.upper, ref->omega_interval.upper),
                rel_dev_pct(r.beta_interval.lower, ref->beta_interval.lower),
                rel_dev_pct(r.beta_interval.upper, ref->beta_interval.upper));
  }
}

}  // namespace

int main() {
  std::printf("Reproduction of Table 2 (Okamura et al., DSN 2007)\n");
  std::printf("Paper reference (Info, NINT): w=[27.74, 59.45], "
              "b=[6.27e-06, 1.69e-05]\n");
  const auto dt = data::datasets::system17_failure_times();
  const char* scenarios[] = {"Info", "NoInfo"};

  engine::BatchSpec spec;
  for (const auto& m : kPaperMethods) spec.methods.push_back(m.key);
  spec.requests = {paper_request(dt, info_priors_dt(), 20070626),
                   paper_request(dt, noinfo_priors(), 20070626)};
  spec.levels = {0.99};
  const auto reports = engine::BatchRunner().run(spec);
  const std::size_t n_requests = spec.requests.size();

  for (std::size_t ri = 0; ri < n_requests; ++ri) {
    print_header(std::string("Table 2: 99% CIs, D_T, ") + scenarios[ri]);
    std::printf("%-6s %10s %10s %12s %12s\n", "method", "w_lower", "w_upper",
                "b_lower", "b_upper");
    print_rule();
    std::optional<engine::EstimationReport> ref;
    for (std::size_t mi = 0; mi < std::size(kPaperMethods); ++mi) {
      const auto& report = reports[mi * n_requests + ri];
      if (!report.ok) {
        std::printf("%-6s (failed: %s)\n", kPaperMethods[mi].label,
                    report.error.c_str());
        continue;
      }
      print_interval_row(kPaperMethods[mi].label, report, ref);
      if (mi == 0) ref = report;
    }
  }
  return 0;
}
