// Table 3 reproduction: two-sided 99% credible intervals for omega and
// beta on the grouped data D_G, Info and NoInfo priors.
//
// Paper shape: Info case — MCMC/VB2 within ~1-6% of NINT, LAPL left-
// shifted, VB1 much too narrow (beta upper bound -57%).  NoInfo case —
// wild disagreement everywhere (omega upper bounds range from ~70 to
// ~18500 across methods in the paper).
#include <cstdio>

#include "bayes/gibbs.hpp"
#include "bayes/laplace.hpp"
#include "bench_common.hpp"
#include "core/vb1.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

namespace {

struct Row {
  double wl, wu, bl, bu;
};

void print_row(const char* name, const Row& r, const Row* ref) {
  std::printf("%-6s %10.2f %10.2f %12.3e %12.3e\n", name, r.wl, r.wu, r.bl,
              r.bu);
  if (ref) {
    std::printf("%-6s %9.1f%% %9.1f%% %11.1f%% %11.1f%%\n", "",
                rel_dev_pct(r.wl, ref->wl), rel_dev_pct(r.wu, ref->wu),
                rel_dev_pct(r.bl, ref->bl), rel_dev_pct(r.bu, ref->bu));
  }
}

void run_case(const char* title, const data::GroupedData& dg,
              const bayes::PriorPair& priors) {
  print_header(std::string("Table 3: 99% CIs, D_G, ") + title);
  std::printf("%-6s %10s %10s %12s %12s\n", "method", "w_lower", "w_upper",
              "b_lower", "b_upper");
  print_rule();
  constexpr double kLevel = 0.99;

  const core::Vb2Estimator vb2(1.0, dg, priors);
  const bayes::LogPosterior post(1.0, dg, priors);
  const bayes::NintEstimator nint(post, nint_box_from_vb2(vb2));
  const auto no = nint.interval_omega(kLevel);
  const auto nb = nint.interval_beta(kLevel);
  const Row ref{no.lower, no.upper, nb.lower, nb.upper};
  print_row("NINT", ref, nullptr);

  try {
    const bayes::LaplaceEstimator lap(post);
    const auto lo = lap.interval_omega(kLevel);
    const auto lb = lap.interval_beta(kLevel);
    print_row("LAPL", {lo.lower, lo.upper, lb.lower, lb.upper}, &ref);
    if (lb.lower < 0.0) {
      std::printf("       (LAPL beta lower bound < 0: the paper's Table 3 "
                  "shows the same defect, flagged <...>)\n");
    }
  } catch (const std::exception& e) {
    std::printf("LAPL   (failed: %s)\n", e.what());
  }

  bayes::McmcOptions mc;
  mc.seed = 20070627;
  const auto chain = bayes::gibbs_grouped(1.0, dg, priors, mc);
  const auto mo = chain.interval_omega(kLevel);
  const auto mb = chain.interval_beta(kLevel);
  print_row("MCMC", {mo.lower, mo.upper, mb.lower, mb.upper}, &ref);

  const core::Vb1Estimator vb1(1.0, dg, priors);
  const auto v1o = vb1.posterior().interval_omega(kLevel);
  const auto v1b = vb1.posterior().interval_beta(kLevel);
  print_row("VB1", {v1o.lower, v1o.upper, v1b.lower, v1b.upper}, &ref);

  const auto v2o = vb2.posterior().interval_omega(kLevel);
  const auto v2b = vb2.posterior().interval_beta(kLevel);
  print_row("VB2", {v2o.lower, v2o.upper, v2b.lower, v2b.upper}, &ref);
}

}  // namespace

int main() {
  std::printf("Reproduction of Table 3 (Okamura et al., DSN 2007)\n");
  std::printf("Paper reference (Info, NINT): w=[31.20, 73.80], "
              "b=[1.27e-02, 4.29e-02]\n");
  const auto dg = data::datasets::system17_grouped();
  run_case("Info", dg, info_priors_dg());
  run_case("NoInfo (expected: instability, methods disagree)", dg,
           noinfo_priors());
  return 0;
}
