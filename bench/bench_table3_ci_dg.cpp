// Table 3 reproduction: two-sided 99% credible intervals for omega and
// beta on the grouped data D_G, Info and NoInfo priors, through the
// engine's batch grid.
//
// Paper shape: Info case — MCMC/VB2 within ~1-6% of NINT, LAPL left-
// shifted, VB1 much too narrow (beta upper bound -57%).  NoInfo case —
// wild disagreement everywhere (omega upper bounds range from ~70 to
// ~18500 across methods in the paper).
#include <cstdio>
#include <optional>
#include <string>

#include "bench_common.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

namespace {

void print_interval_row(const char* name, const engine::EstimationReport& r,
                        const std::optional<engine::EstimationReport>& ref) {
  std::printf("%-6s %10.2f %10.2f %12.3e %12.3e\n", name, r.omega_interval.lower,
              r.omega_interval.upper, r.beta_interval.lower,
              r.beta_interval.upper);
  if (ref) {
    std::printf("%-6s %9.1f%% %9.1f%% %11.1f%% %11.1f%%\n", "",
                rel_dev_pct(r.omega_interval.lower, ref->omega_interval.lower),
                rel_dev_pct(r.omega_interval.upper, ref->omega_interval.upper),
                rel_dev_pct(r.beta_interval.lower, ref->beta_interval.lower),
                rel_dev_pct(r.beta_interval.upper, ref->beta_interval.upper));
  }
  if (r.beta_interval.lower < 0.0) {
    std::printf("       (%s beta lower bound < 0: the paper's Table 3 "
                "shows the same defect, flagged <...>)\n",
                name);
  }
}

}  // namespace

int main() {
  std::printf("Reproduction of Table 3 (Okamura et al., DSN 2007)\n");
  std::printf("Paper reference (Info, NINT): w=[31.20, 73.80], "
              "b=[1.27e-02, 4.29e-02]\n");
  const auto dg = data::datasets::system17_grouped();
  const char* scenarios[] = {"Info",
                             "NoInfo (expected: instability, methods disagree)"};

  engine::BatchSpec spec;
  for (const auto& m : kPaperMethods) spec.methods.push_back(m.key);
  spec.requests = {paper_request(dg, info_priors_dg(), 20070627),
                   paper_request(dg, noinfo_priors(), 20070627)};
  spec.levels = {0.99};
  const auto reports = engine::BatchRunner().run(spec);
  const std::size_t n_requests = spec.requests.size();

  for (std::size_t ri = 0; ri < n_requests; ++ri) {
    print_header(std::string("Table 3: 99% CIs, D_G, ") + scenarios[ri]);
    std::printf("%-6s %10s %10s %12s %12s\n", "method", "w_lower", "w_upper",
                "b_lower", "b_upper");
    print_rule();
    std::optional<engine::EstimationReport> ref;
    for (std::size_t mi = 0; mi < std::size(kPaperMethods); ++mi) {
      const auto& report = reports[mi * n_requests + ri];
      if (!report.ok) {
        std::printf("%-6s (failed: %s)\n", kPaperMethods[mi].label,
                    report.error.c_str());
        continue;
      }
      print_interval_row(kPaperMethods[mi].label, report, ref);
      if (mi == 0) ref = report;
    }
  }
  return 0;
}
