// Ablation A4: the gamma-type family beyond the Goel-Okumoto case the
// paper evaluates.  VB2's algorithm covers any fixed alpha0 (Sec. 5.2);
// here we check estimation quality when the model matches or mismatches
// the generating process:
//   * data from GO (alpha0=1) and from delayed S-shaped (alpha0=2),
//   * each fitted with VB2 under alpha0 in {1, 2},
//   * reliability prediction error against the generating truth.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "data/simulate.hpp"
#include "nhpp/model.hpp"
#include "random/rng.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

namespace {

void fit_and_report(const char* label, const data::FailureTimeData& ft,
                    double fit_alpha0, const nhpp::GammaTypeModel& truth) {
  const core::Vb2Estimator vb(fit_alpha0, ft, noinfo_priors());
  const auto s = vb.posterior().summary();
  const double te = ft.observation_end();
  const double u = 0.1 * te;
  const double r_true = truth.reliability(te, u);
  const auto r_est = vb.posterior().reliability(u, 0.99);
  const bool covered = r_true >= r_est.lower && r_true <= r_est.upper;
  std::printf("%-26s %8.1f %10.2f %12.4e %9.4f %9.4f %9s\n", label,
              fit_alpha0, s.mean_omega, s.mean_beta, r_est.point, r_true,
              covered ? "yes" : "NO");
}

}  // namespace

int main() {
  std::printf("Ablation A4: model family (alpha0) match vs mismatch\n");
  std::printf("%-26s %8s %10s %12s %9s %9s %9s\n", "data / fit", "alpha0",
              "E[w]", "E[b]", "R_est", "R_true", "covered");
  print_rule();

  {
    random::Rng rng(2121);
    const auto go_truth = nhpp::goel_okumoto(120.0, 1.5e-3);
    const auto ft = data::simulate_gamma_nhpp(rng, 120.0, 1.0, 1.5e-3,
                                              1200.0);
    fit_and_report("GO data, GO fit", ft, 1.0, go_truth);
    fit_and_report("GO data, DSS fit", ft, 2.0, go_truth);
  }
  print_rule();
  {
    random::Rng rng(2122);
    const auto dss_truth = nhpp::delayed_s_shaped(120.0, 3e-3);
    const auto ft = data::simulate_gamma_nhpp(rng, 120.0, 2.0, 3e-3, 1500.0);
    fit_and_report("DSS data, DSS fit", ft, 2.0, dss_truth);
    fit_and_report("DSS data, GO fit", ft, 1.0, dss_truth);
  }

  std::printf("\nReading: matching alpha0 recovers omega and covers the true\n"
              "reliability; mismatched alpha0 biases omega (GO absorbs the\n"
              "DSS ramp-up into a larger beta / smaller omega and vice\n"
              "versa), showing why the gamma-type generalization matters.\n");
  return 0;
}
