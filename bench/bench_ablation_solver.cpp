// Ablation A3: the per-component fixed-point solver.
//
// The paper uses successive substitution on Eqs. (24)-(27) and
// conjectures (Sec. 6) that a Newton-type solver would make the total
// cost proportional to n_max.  This bench compares three strategies on
// the grouped data (where no closed form exists):
//   * successive substitution (paper's choice),
//   * Newton on the residual g(xi) - xi,
//   * closed form (failure-time GO only, as a sanity anchor).
#include <cstdio>

#include "bench_common.hpp"

using namespace vbsrm;
using namespace vbsrm::bench;

namespace {

void run(const char* label, bool grouped, bool newton,
         std::uint64_t n_max) {
  core::Vb2Options opt;
  opt.n_max = n_max;
  opt.adapt_n_max = false;
  opt.use_newton = newton;
  double mean = 0.0;
  std::uint64_t iters = 0;
  double sec = 0.0;
  if (grouped) {
    const auto dg = data::datasets::system17_grouped();
    sec = time_seconds([&] {
      const core::Vb2Estimator vb(1.0, dg, info_priors_dg(), opt);
      mean = vb.posterior().summary().mean_omega;
      iters = vb.diagnostics().total_fixed_point_iterations;
    });
  } else {
    const auto dt = data::datasets::system17_failure_times();
    sec = time_seconds([&] {
      const core::Vb2Estimator vb(1.0, dt, info_priors_dt(), opt);
      mean = vb.posterior().summary().mean_omega;
      iters = vb.diagnostics().total_fixed_point_iterations;
    });
  }
  std::printf("%-34s %8llu %12llu %12.3f %10.4f\n", label,
              static_cast<unsigned long long>(n_max),
              static_cast<unsigned long long>(iters), 1e3 * sec, mean);
}

}  // namespace

int main() {
  std::printf("Ablation A3: fixed-point solver for (zeta, xi)\n");
  std::printf("%-34s %8s %12s %12s %10s\n", "solver", "n_max", "iterations",
              "time (ms)", "E[w]");
  print_rule();

  for (std::uint64_t n_max : {100u, 200u, 500u, 1000u}) {
    run("DG successive substitution", true, false, n_max);
    run("DG Newton", true, true, n_max);
  }
  print_rule();
  for (std::uint64_t n_max : {200u, 1000u}) {
    run("DT closed form (GO)", false, false, n_max);
  }

  std::printf(
      "\nReading: all solvers land on identical posteriors.  Successive\n"
      "substitution needs more iterations per component as N grows (the\n"
      "fixed-point map's contraction weakens), so its total cost grows\n"
      "super-linearly in n_max — exactly the 'disproportionate' growth\n"
      "the paper reports in Table 7.  Newton keeps the per-component\n"
      "iteration count flat and the total cost near-linear, confirming\n"
      "the paper's Sec. 6 conjecture.\n");
  return 0;
}
