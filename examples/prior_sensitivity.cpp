// Prior-sensitivity study: how interval estimates react as the prior's
// standard deviation sweeps from very tight to essentially flat, and
// what happens when the prior mean is *wrong*.  Small samples are the
// norm in software reliability (the paper's motivation for Bayesian
// interval estimation), so this is the analysis a practitioner should
// run before trusting any interval.
#include <cstdio>

#include "bayes/prior.hpp"
#include "core/vb2.hpp"
#include "data/datasets.hpp"
#include "data/simulate.hpp"
#include "random/rng.hpp"

int main() {
  using namespace vbsrm;

  // A deliberately small data set: the first 15 failures of the System
  // 17 stand-in, censored at the 15th failure time.
  const auto full = data::datasets::system17_failure_times();
  std::vector<double> first(full.times().begin(), full.times().begin() + 15);
  const double te = first.back();
  const data::FailureTimeData data(std::move(first), te);
  std::printf("small sample: %zu failures in %.0f s\n\n", data.count(), te);

  const bayes::GammaPrior beta_prior =
      bayes::GammaPrior::from_mean_sd(1.0e-5, 5e-6);

  std::printf("-- prior sd sweep (prior mean for omega fixed at 50) --\n");
  std::printf("%-14s %10s %24s %10s\n", "prior sd", "E[omega]",
              "99% interval (omega)", "width");
  for (double sd : {5.0, 10.0, 20.0, 40.0, 80.0}) {
    const bayes::PriorPair priors{bayes::GammaPrior::from_mean_sd(50.0, sd),
                                  beta_prior};
    const core::Vb2Estimator vb2(1.0, data, priors);
    const auto io = vb2.posterior().interval_omega(0.99);
    std::printf("%-14.1f %10.1f      [%7.1f, %8.1f] %10.1f\n", sd,
                vb2.posterior().summary().mean_omega, io.lower, io.upper,
                io.upper - io.lower);
  }
  {
    const bayes::PriorPair priors{bayes::GammaPrior::flat(), beta_prior};
    const core::Vb2Estimator vb2(1.0, data, priors);
    const auto io = vb2.posterior().interval_omega(0.99);
    std::printf("%-14s %10.1f      [%7.1f, %8.1f] %10.1f\n", "flat",
                vb2.posterior().summary().mean_omega, io.lower, io.upper,
                io.upper - io.lower);
  }

  std::printf("\n-- wrong prior mean (sd = 10): does the data push back? --\n");
  std::printf("%-14s %10s %24s\n", "prior mean", "E[omega]",
              "99% interval (omega)");
  for (double mean : {20.0, 50.0, 100.0, 200.0}) {
    const bayes::PriorPair priors{
        bayes::GammaPrior::from_mean_sd(mean, 10.0), beta_prior};
    const core::Vb2Estimator vb2(1.0, data, priors);
    const auto io = vb2.posterior().interval_omega(0.99);
    std::printf("%-14.0f %10.1f      [%7.1f, %8.1f]\n", mean,
                vb2.posterior().summary().mean_omega, io.lower, io.upper);
  }

  std::printf(
      "\n-- coverage check: 99%% intervals vs known simulation truth --\n");
  const double true_omega = 60.0, true_beta = 8e-4;
  int covered = 0, runs = 40;
  for (int k = 0; k < runs; ++k) {
    random::Rng rng(4000 + static_cast<std::uint64_t>(k));
    const auto sim =
        data::simulate_gamma_nhpp(rng, true_omega, 1.0, true_beta, 1500.0);
    if (sim.count() < 3) continue;
    const bayes::PriorPair priors{
        bayes::GammaPrior::from_mean_sd(60.0, 30.0),
        bayes::GammaPrior::from_mean_sd(8e-4, 4e-4)};
    const core::Vb2Estimator vb2(1.0, sim, priors);
    const auto io = vb2.posterior().interval_omega(0.99);
    covered += (true_omega >= io.lower && true_omega <= io.upper);
  }
  std::printf("true omega covered in %d / %d replications\n", covered, runs);
  return 0;
}
