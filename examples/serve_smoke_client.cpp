// serve_smoke_client — end-to-end smoke test for the vbsrm_serve daemon.
//
//   serve_smoke_client <path-to-vbsrm_serve>
//
// Spawns the daemon on an ephemeral loopback port (parsing the port
// from its startup banner), then over real HTTP:
//   1. GET  /healthz            -> 200
//   2. GET  /v1/methods         -> 200, lists vb2
//   3. POST /v1/estimate        -> 200, X-Cache: miss
//   4. POST /v1/estimate again  -> 200, X-Cache: hit, byte-identical body
//   5. POST garbage             -> 400
//   6. GET  /metrics            -> 200, counters reflect 1 hit + 1 miss
// and finally SIGTERMs the daemon, requiring a clean drain and exit 0.
// Pure POSIX; exits nonzero with a message on the first failure.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace {

pid_t g_child = -1;

[[noreturn]] void die(const std::string& why) {
  std::fprintf(stderr, "serve_smoke_client: FAIL: %s\n", why.c_str());
  if (g_child > 0) kill(g_child, SIGKILL);
  std::exit(1);
}

void expect(bool ok, const std::string& what) {
  if (!ok) die(what);
  std::printf("ok: %s\n", what.c_str());
}

/// One HTTP exchange on a fresh connection; returns the raw response.
std::string http(int port, const std::string& request) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) die("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    die("connect() failed: " + std::string(strerror(errno)));
  }
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) {
      close(fd);
      die("send() failed");
    }
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[16 * 1024];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // server closes after Connection: close
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string request_for(const std::string& method, const std::string& target,
                        const std::string& body) {
  std::string r = method + " " + target + " HTTP/1.1\r\n";
  r += "Host: 127.0.0.1\r\n";
  r += "Connection: close\r\n";
  if (!body.empty()) {
    r += "Content-Type: application/json\r\n";
    r += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  r += "\r\n" + body;
  return r;
}

int status_of(const std::string& response) {
  int status = 0;
  if (std::sscanf(response.c_str(), "HTTP/1.1 %d", &status) != 1) {
    die("unparseable status line: " + response.substr(0, 64));
  }
  return status;
}

std::string body_of(const std::string& response) {
  const size_t sep = response.find("\r\n\r\n");
  if (sep == std::string::npos) die("no header/body separator in response");
  return response.substr(sep + 4);
}

bool has_header(const std::string& response, const std::string& header) {
  const size_t sep = response.find("\r\n\r\n");
  return response.substr(0, sep == std::string::npos ? response.size() : sep)
             .find(header) != std::string::npos;
}

/// "key":N extractor for the flat /metrics counters (first occurrence).
long long counter(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = body.find(needle);
  if (at == std::string::npos) die("metric \"" + key + "\" missing");
  return std::atoll(body.c_str() + at + needle.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: serve_smoke_client <path-to-vbsrm_serve>\n");
    return 2;
  }

  // --- spawn the daemon with its stdout on a pipe -------------------------
  int pipefd[2];
  if (pipe(pipefd) != 0) die("pipe() failed");
  g_child = fork();
  if (g_child < 0) die("fork() failed");
  if (g_child == 0) {
    dup2(pipefd[1], STDOUT_FILENO);
    close(pipefd[0]);
    close(pipefd[1]);
    execl(argv[1], argv[1], "--port", "0", "--workers", "2", "--queue", "8",
          static_cast<char*>(nullptr));
    std::perror("execl");
    _exit(127);
  }
  close(pipefd[1]);

  // Parse "vbsrm_serve listening on http://127.0.0.1:PORT" from stdout.
  std::string banner;
  int port = 0;
  char c;
  while (port == 0 && read(pipefd[0], &c, 1) == 1) {
    banner.push_back(c);
    if (c != '\n') continue;
    const size_t at = banner.find("listening on http://127.0.0.1:");
    if (at != std::string::npos) {
      port = std::atoi(banner.c_str() + at + 30);
    }
    banner.clear();
  }
  if (port == 0) die("never saw the listening banner");
  std::printf("ok: daemon up on port %d\n", port);

  // --- drive it -----------------------------------------------------------
  const std::string estimate_body =
      R"({"method":"vb2","alpha0":1.0,)"
      R"("data":{"type":"failure_times","times":[5,12,25,40,60],)"
      R"("observation_end":100},)"
      R"("priors":{"omega":{"mean":20,"sd":10},"beta":{"mean":0.01,"sd":0.005}},)"
      R"("level":0.99,"reliability_windows":[10]})";

  const std::string health = http(port, request_for("GET", "/healthz", ""));
  expect(status_of(health) == 200, "GET /healthz -> 200");

  const std::string methods = http(port, request_for("GET", "/v1/methods", ""));
  expect(status_of(methods) == 200 &&
             body_of(methods).find("\"vb2\"") != std::string::npos,
         "GET /v1/methods lists vb2");

  const std::string first =
      http(port, request_for("POST", "/v1/estimate", estimate_body));
  expect(status_of(first) == 200, "POST /v1/estimate -> 200");
  expect(has_header(first, "X-Cache: miss"), "first estimate is a cache miss");
  expect(body_of(first).find("\"mean_omega\"") != std::string::npos,
         "estimate body has posterior moments");

  const std::string second =
      http(port, request_for("POST", "/v1/estimate", estimate_body));
  expect(status_of(second) == 200, "second POST /v1/estimate -> 200");
  expect(has_header(second, "X-Cache: hit"), "second estimate is a cache hit");
  expect(body_of(second) == body_of(first),
         "cache hit body is byte-identical to the miss");

  const std::string bad =
      http(port, request_for("POST", "/v1/estimate", "this is not json"));
  expect(status_of(bad) == 400, "malformed body -> 400");

  const std::string metrics = http(port, request_for("GET", "/metrics", ""));
  expect(status_of(metrics) == 200, "GET /metrics -> 200");
  const std::string mbody = body_of(metrics);
  // The /metrics request itself is recorded after the snapshot, so the
  // count covers the 5 requests before it.
  expect(counter(mbody, "total") >= 5, "metrics: requests total >= 5");
  expect(counter(mbody, "estimate") >= 3, "metrics: estimate requests >= 3");
  expect(counter(mbody, "hits") >= 1, "metrics: cache hits >= 1");
  expect(counter(mbody, "misses") >= 1, "metrics: cache misses >= 1");
  expect(counter(mbody, "workers") >= 1, "metrics: worker pool reported");

  // --- clean shutdown on SIGTERM ------------------------------------------
  if (kill(g_child, SIGTERM) != 0) die("kill(SIGTERM) failed");
  int wstatus = 0;
  if (waitpid(g_child, &wstatus, 0) != g_child) die("waitpid() failed");
  const pid_t child = g_child;
  g_child = -1;
  (void)child;
  expect(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0,
         "daemon exited 0 on SIGTERM");

  std::string tail;
  char tbuf[4096];
  ssize_t n;
  while ((n = read(pipefd[0], tbuf, sizeof(tbuf))) > 0) {
    tail.append(tbuf, static_cast<size_t>(n));
  }
  close(pipefd[0]);
  expect(tail.find("drained") != std::string::npos,
         "daemon drained before exiting");

  std::printf("serve_smoke_client: PASS\n");
  return 0;
}
