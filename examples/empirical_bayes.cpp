// Empirical Bayes across releases: learn the prior from completed
// projects, then watch what it buys on a new release observed early.
//
// The paper's Info scenario assumes "good guesses" for the priors
// exist; this example shows where they come from in practice — the
// organization's own history — and how much interval width the learned
// prior saves during the data-poor first weeks of testing.
#include <cmath>
#include <cstdio>

#include "bayes/empirical.hpp"
#include "core/vb2.hpp"
#include "data/simulate.hpp"
#include "random/rng.hpp"

int main() {
  using namespace vbsrm;

  // Five completed releases of the same product line (simulated truth:
  // omega drifting around ~100, per-fault hazard around 1.5e-3).
  std::printf("-- historical releases --\n");
  std::vector<data::FailureTimeData> history;
  random::Rng master(20260708);
  for (int k = 0; k < 5; ++k) {
    random::Rng rng = master.split(static_cast<std::uint64_t>(k));
    const double omega = 85.0 + 30.0 * rng.next_double();
    const double beta = 1.5e-3 * (0.8 + 0.4 * rng.next_double());
    auto project = data::simulate_gamma_nhpp(rng, omega, 1.0, beta, 2200.0);
    std::printf("release %d: %zu failures (truth omega=%.0f)\n", k + 1,
                project.count(), omega);
    history.push_back(std::move(project));
  }

  const auto eb = bayes::empirical_bayes_priors(1.0, history);
  std::printf("\nlearned priors (type-II ML over the history):\n");
  std::printf("  omega ~ %s\n", eb.priors.omega.describe().c_str());
  std::printf("  beta  ~ %s\n", eb.priors.beta.describe().c_str());

  // A new release, observed only through its first few weeks.
  random::Rng rng(424242);
  const double omega_true = 110.0, beta_true = 1.4e-3;
  const auto full =
      data::simulate_gamma_nhpp(rng, omega_true, 1.0, beta_true, 2200.0);

  std::printf("\n-- new release (truth omega=%.0f): interval width as data "
              "accumulates --\n",
              omega_true);
  std::printf("%-12s %26s %26s\n", "observed", "flat prior",
              "empirical-Bayes prior");
  for (double frac : {0.15, 0.3, 0.5, 1.0}) {
    const double te = frac * 2200.0;
    std::vector<double> seen;
    for (double t : full.times()) {
      if (t <= te) seen.push_back(t);
    }
    if (seen.size() < 3) continue;
    const data::FailureTimeData prefix(std::move(seen), te);
    const core::Vb2Estimator flat(1.0, prefix, bayes::PriorPair::flat());
    const core::Vb2Estimator learned(1.0, prefix, eb.priors);
    const auto io_f = flat.posterior().interval_omega(0.95);
    const auto io_l = learned.posterior().interval_omega(0.95);
    std::printf("%5zu fails   [%8.1f, %9.1f]       [%8.1f, %9.1f]\n",
                prefix.count(), io_f.lower, io_f.upper, io_l.lower,
                io_l.upper);
  }
  std::printf("\nreading: early in testing the learned prior narrows the\n"
              "interval dramatically without excluding the truth; once the\n"
              "data dominates, both agree (the prior washes out).\n");
  return 0;
}
