// Full failure-time-data workflow on the NTDS data (Jelinski & Moranda
// 1972): trend test, model selection between Goel-Okumoto and delayed
// S-shaped via MLE + AIC, goodness of fit, then Bayesian interval
// estimation with VB2 cross-checked against MCMC, and release-readiness
// predictions.
#include <cmath>
#include <cstdio>

#include "bayes/gibbs.hpp"
#include "bayes/prior.hpp"
#include "core/vb2.hpp"
#include "data/datasets.hpp"
#include "nhpp/fit.hpp"
#include "nhpp/likelihood.hpp"
#include "nhpp/prediction.hpp"
#include "nhpp/trend.hpp"

int main() {
  using namespace vbsrm;
  const auto data = data::datasets::ntds_failure_times();
  std::printf("NTDS data: %zu failures in %.0f days\n", data.count(),
              data.observation_end());

  // 1) Is there reliability growth at all?  (Laplace factor << 0.)
  const double lt = nhpp::laplace_trend(data);
  std::printf("Laplace trend factor: %.2f (%s)\n", lt,
              lt < -1.96 ? "significant reliability growth"
                         : "no significant growth");

  // 2) Model selection by AIC across the gamma-type family.
  double best_aic = 1e300;
  double best_alpha0 = 1.0;
  for (double alpha0 : {1.0, 2.0, 3.0}) {
    const auto fit = nhpp::fit_em(alpha0, data);
    const double a = nhpp::aic(fit.log_likelihood);
    const auto ks = nhpp::ks_fit_test(fit.model(alpha0), data);
    std::printf("alpha0=%.0f: MLE omega=%.1f beta=%.4g  logL=%.2f AIC=%.2f "
                "KS p=%.3f\n",
                alpha0, fit.omega, fit.beta, fit.log_likelihood, a,
                ks.p_value);
    if (a < best_aic) {
      best_aic = a;
      best_alpha0 = alpha0;
    }
  }
  std::printf("selected model: alpha0 = %.0f\n", best_alpha0);

  // 3) Bayesian interval estimation (flat priors: let the data speak).
  const core::Vb2Estimator vb2(best_alpha0, data, bayes::PriorPair::flat());
  const auto& post = vb2.posterior();
  const auto s = post.summary();
  const auto io = post.interval_omega(0.95);
  std::printf("\nVB2 posterior: E[omega]=%.1f, 95%% interval [%.1f, %.1f]\n",
              s.mean_omega, io.lower, io.upper);
  std::printf("expected residual faults: %.1f\n",
              post.mean_total_faults() - static_cast<double>(data.count()));

  // Cross-check with MCMC (Gibbs, 10000 samples).
  bayes::McmcOptions mc;
  mc.burn_in = 5000;
  mc.thin = 5;
  mc.samples = 10000;
  mc.seed = 7;
  const auto chain = bayes::gibbs_failure_times(best_alpha0, data,
                                                bayes::PriorPair::flat(), mc);
  std::printf("MCMC cross-check: E[omega]=%.1f (VB2 %.1f)\n",
              chain.summary().mean_omega, s.mean_omega);

  // 4) Release-readiness: reliability over the next 10 days, and the
  //    further test time needed to reach a 90% 10-day reliability.
  const auto r = post.reliability(10.0, 0.95);
  std::printf("\nR(+10 days) = %.3f, 95%% interval [%.3f, %.3f]\n", r.point,
              r.lower, r.upper);

  const auto mle = nhpp::fit_em(best_alpha0, data);
  const auto model = mle.model(best_alpha0);
  const double wait = nhpp::test_time_for_reliability(
      model, data.observation_end(), 10.0, 0.90, 3650.0);
  if (std::isfinite(wait)) {
    std::printf("extra test time to reach 90%% 10-day reliability: %.0f days\n",
                wait);
  } else {
    std::printf("90%% 10-day reliability not reachable within 10 years\n");
  }
  return 0;
}
