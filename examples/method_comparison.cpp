// Accuracy-versus-cost frontier: run all five posterior approximations
// on the same data and print what each one buys you.  A compact version
// of the paper's whole evaluation, on one screen.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bayes/gibbs.hpp"
#include "bayes/laplace.hpp"
#include "bayes/nint.hpp"
#include "core/vb1.hpp"
#include "core/vb2.hpp"
#include "data/datasets.hpp"

int main() {
  using namespace vbsrm;
  const auto data = data::datasets::system17_failure_times();
  const bayes::PriorPair priors{
      bayes::GammaPrior::from_mean_sd(50.0, 15.8),
      bayes::GammaPrior::from_mean_sd(1.0e-5, 3.2e-6)};

  auto now = [] { return std::chrono::steady_clock::now(); };
  auto ms = [](auto a, auto b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };

  std::printf("%-22s %9s %9s %9s %22s %10s\n", "method", "E[omega]",
              "sd(omega)", "corr", "99% interval (omega)", "time (ms)");

  // VB2 first: the NINT box needs its quantiles (as in the paper).
  auto t0 = now();
  const core::Vb2Estimator vb2(1.0, data, priors);
  auto t1 = now();
  const double vb2_ms = ms(t0, t1);

  const bayes::LogPosterior post(1.0, data, priors);
  const auto box = bayes::Box::from_quantiles(
      vb2.posterior().quantile_omega(0.005),
      vb2.posterior().quantile_omega(0.995),
      vb2.posterior().quantile_beta(0.005),
      vb2.posterior().quantile_beta(0.995));

  auto report = [&](const char* name, const bayes::PosteriorSummary& s,
                    const bayes::CredibleInterval& io, double msec) {
    const double corr = s.cov / std::sqrt(s.var_omega * s.var_beta);
    std::printf("%-22s %9.2f %9.2f %9.3f      [%6.2f, %6.2f] %10.2f\n", name,
                s.mean_omega, std::sqrt(s.var_omega), corr, io.lower,
                io.upper, msec);
  };

  t0 = now();
  const bayes::NintEstimator nint(post, box);
  const auto nint_sum = nint.summary();
  const auto nint_io = nint.interval_omega(0.99);
  t1 = now();
  report("NINT (reference)", nint_sum, nint_io, ms(t0, t1));

  t0 = now();
  const bayes::LaplaceEstimator lap(post);
  t1 = now();
  report("Laplace", lap.summary(), lap.interval_omega(0.99), ms(t0, t1));

  t0 = now();
  bayes::McmcOptions mc;
  mc.seed = 99;
  const auto chain = bayes::gibbs_failure_times(1.0, data, priors, mc);
  t1 = now();
  report("MCMC (20k samples)", chain.summary(), chain.interval_omega(0.99),
         ms(t0, t1));

  t0 = now();
  const core::Vb1Estimator vb1(1.0, data, priors);
  t1 = now();
  report("VB1 (factorized)", vb1.posterior().summary(),
         vb1.posterior().interval_omega(0.99), ms(t0, t1));

  report("VB2 (this paper)", vb2.posterior().summary(),
         vb2.posterior().interval_omega(0.99), vb2_ms);

  std::printf(
      "\ntakeaway: VB2 matches the NINT/MCMC answer at Laplace-like cost,\n"
      "with an analytically tractable posterior; VB1 loses the correlation\n"
      "and understates uncertainty; Laplace is biased left and symmetric.\n");
  return 0;
}
