// Accuracy-versus-cost frontier: run all five posterior approximations
// on the same data and print what each one buys you.  A compact version
// of the paper's whole evaluation, on one screen — now driven entirely
// through the unified estimation engine: one request, five
// engine::make() calls, zero per-method wiring (the VB2-seeded NINT box
// is handled inside the NINT adapter).
#include <cmath>
#include <cstdio>

#include "data/datasets.hpp"
#include "engine/registry.hpp"

int main() {
  using namespace vbsrm;
  engine::EstimatorRequest req(
      1.0, data::datasets::system17_failure_times(),
      bayes::PriorPair{bayes::GammaPrior::from_mean_sd(50.0, 15.8),
                       bayes::GammaPrior::from_mean_sd(1.0e-5, 3.2e-6)});
  req.mcmc.base.seed = 99;

  std::printf("%-22s %9s %9s %9s %22s %10s\n", "method", "E[omega]",
              "sd(omega)", "corr", "99% interval (omega)", "time (ms)");

  const struct {
    const char* key;
    const char* label;
  } methods[] = {{"nint", "NINT (reference)"},
                 {"laplace", "Laplace"},
                 {"mcmc", "MCMC (20k samples)"},
                 {"vb1", "VB1 (factorized)"},
                 {"vb2", "VB2 (this paper)"}};

  for (const auto& m : methods) {
    const auto est = engine::make(m.key, req);
    const auto s = est->summarize();
    const auto io = est->interval_omega(0.99);
    // A degenerate posterior (e.g. Laplace on a flat prior that pins a
    // parameter) can report zero variance; the correlation is undefined
    // there, not infinite.
    const double denom = std::sqrt(s.var_omega * s.var_beta);
    const double corr = denom > 0.0 ? s.cov / denom : 0.0;
    std::printf("%-22s %9.2f %9.2f %9.3f      [%6.2f, %6.2f] %10.2f\n",
                m.label, s.mean_omega, std::sqrt(s.var_omega), corr, io.lower,
                io.upper, est->diagnostics().wall_time_ms);
  }

  std::printf(
      "\ntakeaway: VB2 matches the NINT/MCMC answer at Laplace-like cost,\n"
      "with an analytically tractable posterior; VB1 loses the correlation\n"
      "and understates uncertainty; Laplace is biased left and symmetric.\n");
  return 0;
}
