// vbsrm_cli — command-line front end for the library.
//
//   vbsrm_cli fit      <times.csv> <t_e> [--alpha0 A] [--prior-omega M SD]
//                                        [--prior-beta M SD] [--level L]
//                                        [--method NAME] [--json]
//   vbsrm_cli grouped  <counts.csv>      [same options]
//   vbsrm_cli predict  <times.csv> <t_e> <u> [same options]
//   vbsrm_cli compare  <times.csv> <t_e>
//   vbsrm_cli methods
//   vbsrm_cli demo
//
// Estimation goes through the unified engine: --method picks any
// registered posterior approximation (vbsrm_cli methods lists them;
// default vb2).  CSV formats: `fit`/`predict` read one failure time per
// line ('#' comments allowed); `grouped` reads "boundary,count" lines.
// Without --prior-* options, flat priors are used.  --json switches
// fit/grouped/predict to the serving layer's response schema (the same
// document POST /v1/estimate returns), emitted via serve::json.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bayes/prior.hpp"
#include "core/predictive.hpp"
#include "data/datasets.hpp"
#include "data/failure_data.hpp"
#include "engine/registry.hpp"
#include "nhpp/families.hpp"
#include "nhpp/fit.hpp"
#include "nhpp/trend.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"

using namespace vbsrm;

namespace {

struct Options {
  double alpha0 = 1.0;
  double level = 0.99;
  std::string method = "vb2";
  bool json = false;
  std::optional<std::pair<double, double>> prior_omega;
  std::optional<std::pair<double, double>> prior_beta;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: vbsrm_cli fit <times.csv> <t_e> [options]\n"
               "       vbsrm_cli grouped <counts.csv> [options]\n"
               "       vbsrm_cli predict <times.csv> <t_e> <u> [options]\n"
               "       vbsrm_cli compare <times.csv> <t_e>\n"
               "       vbsrm_cli methods\n"
               "       vbsrm_cli demo\n"
               "options: --alpha0 A --prior-omega MEAN SD --prior-beta MEAN "
               "SD --level L --method NAME --json\n");
  std::exit(2);
}

Options parse_options(int argc, char** argv, int first) {
  Options o;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&](int k) {
      if (i + k >= argc) usage();
    };
    if (a == "--alpha0") {
      need(1);
      o.alpha0 = std::atof(argv[++i]);
    } else if (a == "--level") {
      need(1);
      o.level = std::atof(argv[++i]);
    } else if (a == "--method") {
      need(1);
      o.method = argv[++i];
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--prior-omega") {
      need(2);
      const double m = std::atof(argv[++i]);
      const double s = std::atof(argv[++i]);
      o.prior_omega = {m, s};
    } else if (a == "--prior-beta") {
      need(2);
      const double m = std::atof(argv[++i]);
      const double s = std::atof(argv[++i]);
      o.prior_beta = {m, s};
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      usage();
    }
  }
  if (!(o.alpha0 > 0.0) || !(o.level > 0.0) || !(o.level < 1.0)) usage();
  if (!engine::is_registered(o.method)) {
    std::fprintf(stderr, "unknown method: %s (try: vbsrm_cli methods)\n",
                 o.method.c_str());
    std::exit(2);
  }
  return o;
}

bayes::PriorPair priors_from(const Options& o) {
  bayes::PriorPair p = bayes::PriorPair::flat();
  if (o.prior_omega) {
    p.omega = bayes::GammaPrior::from_mean_sd(o.prior_omega->first,
                                              o.prior_omega->second);
  }
  if (o.prior_beta) {
    p.beta = bayes::GammaPrior::from_mean_sd(o.prior_beta->first,
                                             o.prior_beta->second);
  }
  return p;
}

data::FailureTimeData load_times(const char* path, double te) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  return data::FailureTimeData::from_csv(in, te);
}

/// --json output: the serving layer's /v1/estimate schema, so scripted
/// consumers can treat CLI and server responses interchangeably.
int report_json(const engine::Estimator& est, const Options& o,
                std::vector<double> windows = {}) {
  const serve::EstimateQuery query{o.method, o.level, std::move(windows)};
  std::printf("%s\n",
              serve::json::write(serve::estimate_response(est, query), 2)
                  .c_str());
  return 0;
}

void report_estimator(const engine::Estimator& est, double level) {
  const auto s = est.summarize();
  const auto io = est.interval_omega(level);
  const auto ib = est.interval_beta(level);
  const double denom = std::sqrt(s.var_omega * s.var_beta);
  std::printf("method          : %s (%.2f ms)\n",
              std::string(est.method()).c_str(),
              est.diagnostics().wall_time_ms);
  std::printf("posterior means : omega = %.4g, beta = %.4g\n", s.mean_omega,
              s.mean_beta);
  std::printf("posterior sds   : omega = %.4g, beta = %.4g (corr %.3f)\n",
              std::sqrt(s.var_omega), std::sqrt(s.var_beta),
              denom > 0.0 ? s.cov / denom : 0.0);
  std::printf("%.0f%% interval   : omega in [%.4g, %.4g]\n", 100 * level,
              io.lower, io.upper);
  std::printf("%.0f%% interval   : beta  in [%.4g, %.4g]\n", 100 * level,
              ib.lower, ib.upper);
  if (const auto* mix = est.mixture()) {
    const auto res = core::ResidualFaultDistribution::from_posterior(*mix);
    std::printf("residual faults : mean %.2f, P(<=%llu) >= 90%%\n", res.mean(),
                static_cast<unsigned long long>(res.quantile(0.9)));
  }
}

int cmd_fit(int argc, char** argv) {
  if (argc < 4) usage();
  const auto opts = parse_options(argc, argv, 4);
  const auto dt = load_times(argv[2], std::atof(argv[3]));
  const engine::EstimatorRequest req(opts.alpha0, dt, priors_from(opts));
  if (opts.json) return report_json(*engine::make(opts.method, req), opts);
  std::printf("loaded %zu failure times on (0, %g]\n", dt.count(),
              dt.observation_end());
  if (dt.count() >= 2) {
    std::printf("Laplace trend   : %.2f (negative = reliability growth)\n",
                nhpp::laplace_trend(dt));
  }
  report_estimator(*engine::make(opts.method, req), opts.level);
  return 0;
}

int cmd_grouped(int argc, char** argv) {
  if (argc < 3) usage();
  const auto opts = parse_options(argc, argv, 3);
  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[2]);
    return 1;
  }
  const auto dg = data::GroupedData::from_csv(in);
  const engine::EstimatorRequest req(opts.alpha0, dg, priors_from(opts));
  if (opts.json) return report_json(*engine::make(opts.method, req), opts);
  std::printf("loaded %zu failures over %zu intervals ending at %g\n",
              dg.total_failures(), dg.intervals(), dg.observation_end());
  report_estimator(*engine::make(opts.method, req), opts.level);
  return 0;
}

int cmd_predict(int argc, char** argv) {
  if (argc < 5) usage();
  const auto opts = parse_options(argc, argv, 5);
  const auto dt = load_times(argv[2], std::atof(argv[3]));
  const double u = std::atof(argv[4]);
  const engine::EstimatorRequest req(opts.alpha0, dt, priors_from(opts));
  const auto est = engine::make(opts.method, req);
  if (opts.json) return report_json(*est, opts, {u});
  const auto r = est->reliability(u, opts.level);
  std::printf("R(te+%g | te) = %.4f, %.0f%% interval [%.4f, %.4f]\n", u,
              r.point, 100 * opts.level, r.lower, r.upper);
  if (const auto* mix = est->mixture()) {
    const core::PredictiveDistribution pred(*mix, u);
    const auto [lo, hi] = pred.interval(opts.level);
    std::printf(
        "failures in window: mean %.2f, %.0f%% interval [%llu, %llu]\n",
        pred.mean(), 100 * opts.level, static_cast<unsigned long long>(lo),
        static_cast<unsigned long long>(hi));
  }
  return 0;
}

int cmd_compare(int argc, char** argv) {
  if (argc < 4) usage();
  const auto dt = load_times(argv[2], std::atof(argv[3]));
  std::printf("%-14s %10s %14s %10s   parameters\n", "family", "omega",
              "logL", "AIC");
  for (const auto& fit : nhpp::families::rank_families(dt)) {
    std::printf("%-14s %10.2f %14.3f %10.2f   %s\n",
                fit.family->name().c_str(), fit.omega, fit.log_likelihood,
                fit.aic, fit.family->describe(fit.working).c_str());
  }
  return 0;
}

int cmd_methods() {
  for (const auto& name : engine::method_names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int cmd_demo() {
  std::printf("demo: bundled synthetic System 17 failure-time data\n\n");
  const engine::EstimatorRequest req(
      1.0, data::datasets::system17_failure_times(),
      bayes::PriorPair{bayes::GammaPrior::from_mean_sd(50.0, 15.8),
                       bayes::GammaPrior::from_mean_sd(1e-5, 3.2e-6)});
  const auto est = engine::make("vb2", req);
  report_estimator(*est, 0.99);
  const auto r = est->reliability(1000.0, 0.99);
  std::printf("R(te+1000 | te) : %.4f [%.4f, %.4f]\n", r.point, r.lower,
              r.upper);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "fit") return cmd_fit(argc, argv);
    if (cmd == "grouped") return cmd_grouped(argc, argv);
    if (cmd == "predict") return cmd_predict(argc, argv);
    if (cmd == "compare") return cmd_compare(argc, argv);
    if (cmd == "methods") return cmd_methods();
    if (cmd == "demo") return cmd_demo();
  } catch (const data::DataError& e) {
    std::fprintf(stderr, "vbsrm_cli: bad input data: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vbsrm_cli: %s\n", e.what());
    return 1;
  }
  usage();
}
