// Grouped-data workflow: daily failure counts are what real test teams
// usually record (the paper's motivation for extending VB to grouped
// data).  This example analyzes the 64-day System 17 stand-in:
// goodness of fit, the effect of prior information, and day-by-day
// reliability growth retrodiction.
#include <cstdio>

#include "bayes/prior.hpp"
#include "core/vb2.hpp"
#include "data/datasets.hpp"
#include "nhpp/fit.hpp"
#include "nhpp/trend.hpp"

int main() {
  using namespace vbsrm;
  const auto data = data::datasets::system17_grouped();
  std::printf("grouped data: %zu failures across %zu working days\n",
              data.total_failures(), data.intervals());

  // A quick look at the count profile.
  std::printf("daily counts: ");
  for (std::size_t i = 0; i < data.intervals(); ++i) {
    std::printf("%zu", data.counts()[i]);
  }
  std::printf("\n");

  // Goodness of fit of the Goel-Okumoto model (the paper notes D_G fits
  // GO worse than D_T does — which drives the NoInfo instability).
  const auto mle = nhpp::fit_em(1.0, data);
  const auto chi = nhpp::chi_square_fit_test(mle.model(1.0), data);
  std::printf("GO MLE: omega=%.1f beta=%.4g; chi2=%.1f (dof %d, p=%.3f)\n",
              mle.omega, mle.beta, chi.statistic, chi.dof, chi.p_value);

  // Interval estimation under three prior scenarios.
  struct Scenario {
    const char* name;
    bayes::PriorPair priors;
  };
  const Scenario scenarios[] = {
      {"informative (good guess)",
       {bayes::GammaPrior::from_mean_sd(50.0, 15.8),
        bayes::GammaPrior::from_mean_sd(3.3e-2, 1.1e-2)}},
      {"weak",
       {bayes::GammaPrior::from_mean_sd(50.0, 50.0),
        bayes::GammaPrior::from_mean_sd(3.3e-2, 3.3e-2)}},
      {"flat (none)", bayes::PriorPair::flat()},
  };
  std::printf("\n%-26s %10s %22s %14s\n", "prior", "E[omega]",
              "99% interval (omega)", "E[resid]");
  for (const auto& sc : scenarios) {
    const core::Vb2Estimator vb2(1.0, data, sc.priors);
    const auto s = vb2.posterior().summary();
    const auto io = vb2.posterior().interval_omega(0.99);
    std::printf("%-26s %10.1f      [%7.1f, %8.1f] %14.1f\n", sc.name,
                s.mean_omega, io.lower, io.upper,
                vb2.posterior().mean_total_faults() -
                    static_cast<double>(data.total_failures()));
  }
  std::printf("(note how the interval explodes without prior information —\n"
              " the grouped data alone cannot pin down omega; paper Sec. 6)\n");

  // Retrodiction: one-day-ahead reliability at selected checkpoints,
  // refitting on the data observed so far.
  std::printf("\n%-10s %10s %16s\n", "after day", "R(+1 day)", "99% interval");
  const auto priors = scenarios[0].priors;
  for (std::size_t day : {16u, 32u, 48u, 64u}) {
    std::vector<double> bounds(data.boundaries().begin(),
                               data.boundaries().begin() + day);
    std::vector<std::size_t> counts(data.counts().begin(),
                                    data.counts().begin() + day);
    const data::GroupedData prefix(std::move(bounds), std::move(counts));
    const core::Vb2Estimator vb2(1.0, prefix, priors);
    const auto r = vb2.posterior().reliability(1.0, 0.99);
    std::printf("%-10zu %10.3f   [%.3f, %.3f]\n", day, r.point, r.lower,
                r.upper);
  }
  std::printf("(reliability grows as testing removes faults)\n");
  return 0;
}
