// Model zoo tour: fit every registered NHPP family to a data set,
// rank by AIC, cross-check the winner with sequential (prequential)
// assessment, and show how disagreeing models disagree most where it
// matters — in the tail predictions.
#include <cmath>
#include <cstdio>

#include "data/datasets.hpp"
#include "nhpp/assessment.hpp"
#include "nhpp/families.hpp"

int main() {
  using namespace vbsrm;
  namespace fam = nhpp::families;

  const auto dt = data::datasets::system17_failure_times();
  std::printf("data: %zu failures on (0, %.0f]\n\n", dt.count(),
              dt.observation_end());

  std::printf("-- AIC ranking across the family zoo --\n");
  std::printf("%-14s %10s %12s %10s   %s\n", "family", "omega", "logL",
              "AIC", "parameters");
  const auto ranking = fam::rank_families(dt);
  for (const auto& fit : ranking) {
    std::printf("%-14s %10.2f %12.3f %10.2f   %s\n",
                fit.family->name().c_str(), fit.omega, fit.log_likelihood,
                fit.aic, fit.family->describe(fit.working).c_str());
  }

  // Tail disagreement: expected residual faults omega*(1 - F(te)) per
  // family — models that fit the observed window equally well can still
  // disagree sharply about what remains.
  std::printf("\n-- expected residual faults by family --\n");
  for (const auto& fit : ranking) {
    const double resid =
        fit.omega * (1.0 - fit.family->cdf(dt.observation_end(), fit.working));
    std::printf("%-14s %8.1f\n", fit.family->name().c_str(), resid);
  }

  // Prequential cross-check of the gamma-type members (one-step-ahead
  // predictive quality, independent of AIC).
  std::printf("\n-- prequential ranking of gamma-type shapes --\n");
  for (const auto& [alpha0, pll] :
       nhpp::prequential_ranking({1.0, 2.0, 3.0}, dt, 8)) {
    const auto a = nhpp::assess_one_step_ahead(alpha0, dt, 8);
    std::printf("alpha0=%.0f: prequential logL = %.2f, u-plot KS p = %.3f\n",
                alpha0, pll, a.u_plot_pvalue);
  }

  std::printf("\nreading: AIC measures in-window fit; the residual-fault\n"
              "column shows why model choice matters for release decisions;\n"
              "prequential assessment scores the models on honest\n"
              "one-step-ahead prediction.\n");
  return 0;
}
