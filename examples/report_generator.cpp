// Generate a complete markdown reliability report for a data set:
// trend test -> model-family ranking -> sequential assessment ->
// Bayesian posterior (VB2) -> release predictions.  Demonstrates how
// the library's pieces compose into the artifact a test manager reads.
//
//   report_generator [output.md]      (default: reliability_report.md)
#include <cmath>
#include <cstdio>
#include <fstream>

#include "bayes/prior.hpp"
#include "core/predictive.hpp"
#include "data/datasets.hpp"
#include "engine/registry.hpp"
#include "nhpp/assessment.hpp"
#include "nhpp/families.hpp"
#include "nhpp/fit.hpp"
#include "nhpp/trend.hpp"

int main(int argc, char** argv) {
  using namespace vbsrm;
  const char* path = argc > 1 ? argv[1] : "reliability_report.md";
  std::ofstream md(path);
  if (!md) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }

  const auto data = data::datasets::system17_failure_times();
  const bayes::PriorPair priors{bayes::GammaPrior::from_mean_sd(50.0, 15.8),
                                bayes::GammaPrior::from_mean_sd(1e-5, 3.2e-6)};

  md << "# Software reliability report\n\n";
  md << "Data: " << data.count() << " failures observed over "
     << data.observation_end() << " seconds of system test.\n\n";

  // 1. Trend.
  const double trend = nhpp::laplace_trend(data);
  md << "## 1. Reliability trend\n\nLaplace factor: " << trend << " — "
     << (trend < -1.96 ? "significant reliability growth; growth models "
                         "are applicable.\n\n"
                       : "no significant growth; treat model outputs with "
                         "caution.\n\n");

  // 2. Model selection.
  md << "## 2. Model-family ranking (AIC)\n\n"
     << "| family | omega | logL | AIC |\n|---|---|---|---|\n";
  const auto ranking = nhpp::families::rank_families(data);
  for (const auto& fit : ranking) {
    md << "| " << fit.family->describe(fit.working) << " | " << fit.omega
       << " | " << fit.log_likelihood << " | " << fit.aic << " |\n";
  }
  md << "\nSelected: **" << ranking.front().family->name() << "**.\n\n";

  // 3. Honest one-step-ahead check of the gamma-type candidates.
  md << "## 3. Sequential predictive assessment\n\n"
     << "| alpha0 | prequential logL | u-plot KS p |\n|---|---|---|\n";
  for (double a0 : {1.0, 2.0}) {
    const auto a = nhpp::assess_one_step_ahead(a0, data, 8);
    md << "| " << a0 << " | " << a.prequential_log_likelihood << " | "
       << a.u_plot_pvalue << " |\n";
  }
  md << "\n";

  // 4. Bayesian interval estimation through the engine (VB2, GO model).
  const engine::EstimatorRequest req(1.0, data, priors);
  const auto vb2 = engine::make("vb2", req);
  const auto& post = *vb2->mixture();
  const auto s = vb2->summarize();
  const auto io = vb2->interval_omega(0.99);
  const auto ib = vb2->interval_beta(0.99);
  md << "## 4. Bayesian estimates (VB2, Goel-Okumoto)\n\n"
     << "| quantity | mean | 99% interval |\n|---|---|---|\n"
     << "| total faults omega | " << s.mean_omega << " | [" << io.lower
     << ", " << io.upper << "] |\n"
     << "| per-fault hazard beta | " << s.mean_beta << " | [" << ib.lower
     << ", " << ib.upper << "] |\n\n";

  const auto res = core::ResidualFaultDistribution::from_posterior(post);
  md << "Residual faults: mean " << res.mean() << ", P(at most "
     << res.quantile(0.9) << ") >= 90%.\n\n";

  // 5. Predictions.
  md << "## 5. Predictions\n\n"
     << "| window u (s) | R(te+u|te) | 99% interval | E[failures] | 99% "
        "count interval |\n|---|---|---|---|---|\n";
  for (double u : {1000.0, 10000.0, 50000.0}) {
    const auto r = post.reliability(u, 0.99);
    const core::PredictiveDistribution pred(post, u);
    const auto [lo, hi] = pred.interval(0.99);
    md << "| " << u << " | " << r.point << " | [" << r.lower << ", "
       << r.upper << "] | " << pred.mean() << " | [" << lo << ", " << hi
       << "] |\n";
  }
  md << "\n(method: VB2 variational posterior — matches MCMC/numerical "
        "integration to a few %, at negligible cost; see EXPERIMENTS.md)\n";

  md.close();
  std::printf("wrote %s\n", path);
  // Echo the report so the example is self-contained on stdout.
  std::ifstream back(path);
  std::string line;
  while (std::getline(back, line)) std::printf("%s\n", line.c_str());
  return 0;
}
