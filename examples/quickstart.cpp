// Quickstart: Bayesian interval estimation of a software reliability
// model in ~30 lines of user code.
//
//   1. load failure data,
//   2. choose a prior (here: a "good guess" from a previous release),
//   3. run the VB2 estimator,
//   4. read off parameter intervals, residual faults, and reliability.
//
// Build tree: ./build/examples/quickstart
#include <cstdio>

#include "bayes/prior.hpp"
#include "core/vb2.hpp"
#include "data/datasets.hpp"

int main() {
  using namespace vbsrm;

  // 38 failures observed over 160000 seconds of system test.
  const data::FailureTimeData data = data::datasets::system17_failure_times();

  // Prior knowledge: we expect ~50 total faults (sd 15.8) and a per-
  // fault failure rate around 1e-5/s (sd 3.2e-6) — the paper's "Info"
  // scenario.  Use bayes::PriorPair::flat() if you have no prior.
  const bayes::PriorPair priors{
      bayes::GammaPrior::from_mean_sd(50.0, 15.8),
      bayes::GammaPrior::from_mean_sd(1.0e-5, 3.2e-6)};

  // Goel-Okumoto model (alpha0 = 1); pass 2.0 for delayed S-shaped.
  const core::Vb2Estimator estimator(1.0, data, priors);
  const core::GammaMixturePosterior& post = estimator.posterior();

  const auto s = post.summary();
  std::printf("posterior means: omega = %.1f faults, beta = %.3g /s\n",
              s.mean_omega, s.mean_beta);

  const auto io = post.interval_omega(0.99);
  const auto ib = post.interval_beta(0.99);
  std::printf("99%% intervals:   omega in [%.1f, %.1f], beta in [%.3g, %.3g]\n",
              io.lower, io.upper, ib.lower, ib.upper);

  std::printf("expected residual faults: %.1f\n",
              post.mean_total_faults() - static_cast<double>(data.count()));

  // Probability of surviving the next 1000 seconds without a failure.
  const auto r = post.reliability(1000.0, 0.99);
  std::printf("R(te+1000 | te) = %.4f, 99%% interval [%.4f, %.4f]\n", r.point,
              r.lower, r.upper);

  std::printf("(VB2 used n_max = %llu with tail mass %.2e)\n",
              static_cast<unsigned long long>(
                  estimator.diagnostics().n_max_used),
              estimator.diagnostics().prob_at_n_max);
  return 0;
}
