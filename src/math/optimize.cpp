#include "math/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace vbsrm::math {

namespace {

OptimResult nelder_mead_once(const ObjectiveFn& f, std::vector<double> x0,
                             const NelderMeadOptions& opt) {
  const std::size_t n = x0.size();
  if (n == 0) throw std::invalid_argument("nelder_mead: empty start point");

  // Build the initial simplex by perturbing each coordinate.
  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) {
    double& xi = simplex[i + 1][i];
    const double step = opt.initial_step * std::max(std::abs(xi), 1e-4);
    xi += step;
  }
  std::vector<double> fv(n + 1);
  int evals = 0;
  for (std::size_t i = 0; i <= n; ++i) {
    fv[i] = f(simplex[i]);
    ++evals;
  }

  constexpr double alpha = 1.0, gamma = 2.0, rho = 0.5, sigma = 0.5;
  std::vector<std::size_t> order(n + 1);

  for (int it = 0; it < opt.max_iter; ++it) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fv[a] < fv[b]; });
    const std::size_t best = order[0], worst = order[n],
                      second_worst = order[n - 1];

    // Convergence: function spread and simplex diameter.
    double diam = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      diam = std::max(diam, std::abs(simplex[worst][i] - simplex[best][i]) /
                                std::max(1.0, std::abs(simplex[best][i])));
    }
    if (std::abs(fv[worst] - fv[best]) <=
            opt.f_tol * (std::abs(fv[best]) + opt.f_tol) &&
        diam <= opt.x_tol) {
      return {simplex[best], fv[best], evals, true};
    }

    // Centroid of all but the worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto along = [&](double t) {
      std::vector<double> p(n);
      for (std::size_t j = 0; j < n; ++j) {
        p[j] = centroid[j] + t * (centroid[j] - simplex[worst][j]);
      }
      return p;
    };

    const auto xr = along(alpha);
    const double fr = f(xr);
    ++evals;
    if (fr < fv[best]) {
      const auto xe = along(gamma);
      const double fe = f(xe);
      ++evals;
      if (fe < fr) {
        simplex[worst] = xe;
        fv[worst] = fe;
      } else {
        simplex[worst] = xr;
        fv[worst] = fr;
      }
    } else if (fr < fv[second_worst]) {
      simplex[worst] = xr;
      fv[worst] = fr;
    } else {
      const auto xc = along(fr < fv[worst] ? rho : -rho);
      const double fc = f(xc);
      ++evals;
      if (fc < std::min(fr, fv[worst])) {
        simplex[worst] = xc;
        fv[worst] = fc;
      } else {  // shrink towards the best vertex
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == best) continue;
          for (std::size_t j = 0; j < n; ++j) {
            simplex[i][j] =
                simplex[best][j] + sigma * (simplex[i][j] - simplex[best][j]);
          }
          fv[i] = f(simplex[i]);
          ++evals;
        }
      }
    }
  }

  const auto it_best = std::min_element(fv.begin(), fv.end());
  const std::size_t b = static_cast<std::size_t>(it_best - fv.begin());
  return {simplex[b], fv[b], evals, false};
}

}  // namespace

OptimResult nelder_mead(const ObjectiveFn& f, std::vector<double> x0,
                        const NelderMeadOptions& opt) {
  OptimResult r = nelder_mead_once(f, std::move(x0), opt);
  for (int k = 1; k < opt.restarts; ++k) {
    OptimResult r2 = nelder_mead_once(f, r.x, opt);
    r2.evaluations += r.evaluations;
    r2.converged = r2.converged || r.converged;
    if (r2.f <= r.f) r = std::move(r2);
  }
  return r;
}

OptimResult golden_section(const std::function<double(double)>& f, double a,
                           double b, double x_tol, int max_iter) {
  constexpr double inv_phi = 0.6180339887498949;
  double x1 = b - inv_phi * (b - a);
  double x2 = a + inv_phi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  int evals = 2;
  for (int it = 0; it < max_iter; ++it) {
    if (std::abs(b - a) <= x_tol * (std::abs(a) + std::abs(b) + 1.0)) break;
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - inv_phi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + inv_phi * (b - a);
      f2 = f(x2);
    }
    ++evals;
  }
  const double xm = 0.5 * (a + b);
  return {{xm}, f(xm), evals + 1, true};
}

std::vector<double> numeric_gradient(const ObjectiveFn& f,
                                     const std::vector<double>& x,
                                     double rel_step) {
  const std::size_t n = x.size();
  std::vector<double> g(n);
  std::vector<double> xp = x;
  for (std::size_t i = 0; i < n; ++i) {
    const double h = rel_step * std::max(std::abs(x[i]), 1e-8);
    xp[i] = x[i] + h;
    const double fp = f(xp);
    xp[i] = x[i] - h;
    const double fm = f(xp);
    xp[i] = x[i];
    g[i] = (fp - fm) / (2.0 * h);
  }
  return g;
}

std::vector<double> numeric_hessian(const ObjectiveFn& f,
                                    const std::vector<double>& x,
                                    double rel_step) {
  const std::size_t n = x.size();
  std::vector<double> h(n);
  for (std::size_t i = 0; i < n; ++i) {
    h[i] = rel_step * std::max(std::abs(x[i]), 1e-8);
  }
  std::vector<double> H(n * n, 0.0);
  const double f0 = f(x);
  std::vector<double> xp = x;

  for (std::size_t i = 0; i < n; ++i) {
    xp[i] = x[i] + h[i];
    const double fp = f(xp);
    xp[i] = x[i] - h[i];
    const double fm = f(xp);
    xp[i] = x[i];
    H[i * n + i] = (fp - 2.0 * f0 + fm) / (h[i] * h[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      xp[i] = x[i] + h[i]; xp[j] = x[j] + h[j];
      const double fpp = f(xp);
      xp[j] = x[j] - h[j];
      const double fpm = f(xp);
      xp[i] = x[i] - h[i]; xp[j] = x[j] + h[j];
      const double fmp = f(xp);
      xp[j] = x[j] - h[j];
      const double fmm = f(xp);
      xp[i] = x[i]; xp[j] = x[j];
      const double v = (fpp - fpm - fmp + fmm) / (4.0 * h[i] * h[j]);
      H[i * n + j] = v;
      H[j * n + i] = v;
    }
  }
  return H;
}

}  // namespace vbsrm::math
