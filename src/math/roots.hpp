// Scalar root finding and fixed-point iteration.
#pragma once

#include <functional>
#include <optional>

namespace vbsrm::math {

struct RootResult {
  double x = 0.0;        // located root / fixed point
  int iterations = 0;    // iterations consumed
  bool converged = false;
};

/// Bisection on [a, b]; requires f(a) and f(b) of opposite sign.
RootResult bisect(const std::function<double(double)>& f, double a, double b,
                  double x_tol = 1e-12, int max_iter = 200);

/// Brent's method (inverse quadratic + secant + bisection safeguards).
RootResult brent(const std::function<double(double)>& f, double a, double b,
                 double x_tol = 1e-13, int max_iter = 200);

/// Newton iteration with a bracketing safeguard: if [lo, hi] brackets a
/// root, iterates never leave it and fall back to bisection when the
/// Newton step misbehaves.
RootResult newton(const std::function<double(double)>& f,
                  const std::function<double(double)>& df, double x0,
                  double lo, double hi, double x_tol = 1e-13,
                  int max_iter = 100);

/// Damped successive substitution for x = g(x).  `damping` in (0, 1];
/// 1.0 is plain substitution (the solver the paper uses for the VB
/// fixed point, with its global convergence property).
RootResult fixed_point(const std::function<double(double)>& g, double x0,
                       double rel_tol = 1e-13, int max_iter = 500,
                       double damping = 1.0);

/// Expand a bracket geometrically from [a, b] until f changes sign or
/// the expansion limit is hit.  Returns the bracket if found.
std::optional<std::pair<double, double>> expand_bracket(
    const std::function<double(double)>& f, double a, double b,
    int max_expansions = 60, double factor = 1.6);

}  // namespace vbsrm::math
