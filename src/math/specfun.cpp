#include "math/specfun.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vbsrm::math {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kEps = std::numeric_limits<double>::epsilon();

// Lanczos coefficients (g = 7, n = 9), Godfrey's set.
constexpr double kLanczosG = 7.0;
constexpr double kLanczos[9] = {
    0.99999999999980993,   676.5203681218851,    -1259.1392167224028,
    771.32342877765313,    -176.61502916214059,  12.507343278686905,
    -0.13857109526572012,  9.9843695780195716e-6, 1.5056327351493116e-7};

// Series sum for P(a,x)*Gamma(a)*exp(x)*x^-a; converges fast for
// x < a + 1.
double gamma_p_series_sum(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < 2000; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-17) break;
  }
  return sum;
}

// Modified Lentz continued-fraction value h with
// Q(a,x) = h * exp(-x + a log x - lgamma(a)); valid for x > a + 1.
double gamma_q_cf_value(double a, double x) {
  constexpr double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 2000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-16) break;
  }
  return h;
}

// Log of the regularized lower incomplete gamma via the series kernel.
double log_gamma_p_series(double a, double x) {
  return std::log(gamma_p_series_sum(a, x)) - x + a * std::log(x) -
         log_gamma(a);
}

// log Q(a,x) via the continued-fraction kernel.
double log_gamma_q_cf(double a, double x) {
  return std::log(gamma_q_cf_value(a, x)) - x + a * std::log(x) -
         log_gamma(a);
}

}  // namespace

GammaPQ gamma_pq_cached(double a, double x, double log_x,
                        double log_gamma_a) {
  if (!(a > 0.0) || x < 0.0) return {kNan, kNan};
  if (x == 0.0) return {0.0, 1.0};
  const double prefactor = std::exp(a * log_x - x - log_gamma_a);
  if (x < a + 1.0) {
    const double p = std::min(1.0, gamma_p_series_sum(a, x) * prefactor);
    return {p, 1.0 - p};
  }
  const double q = std::min(1.0, gamma_q_cf_value(a, x) * prefactor);
  return {1.0 - q, q};
}

GammaPQ gamma_pq(double a, double x) {
  if (!(a > 0.0) || x < 0.0) return {kNan, kNan};
  if (x == 0.0) return {0.0, 1.0};
  return gamma_pq_cached(a, x, std::log(x), log_gamma(a));
}

double log_gamma(double z) {
  if (!(z > 0.0)) return kNan;
  if (z < 0.5) {
    // Reflection: Gamma(z) Gamma(1-z) = pi / sin(pi z).
    return std::log(M_PI / std::sin(M_PI * z)) - log_gamma(1.0 - z);
  }
  const double zm1 = z - 1.0;
  double acc = kLanczos[0];
  for (int i = 1; i < 9; ++i) acc += kLanczos[i] / (zm1 + i);
  const double t = zm1 + kLanczosG + 0.5;
  return 0.5 * std::log(2.0 * M_PI) + (zm1 + 0.5) * std::log(t) - t +
         std::log(acc);
}

double digamma(double x) {
  if (!(x > 0.0)) return kNan;
  double result = 0.0;
  // Recurrence psi(x) = psi(x+1) - 1/x until x is large enough for the
  // asymptotic expansion (cutoff 12 keeps the truncation below 1e-15).
  while (x < 12.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // psi(x) ~ ln x - 1/(2x) - sum B_{2n} / (2n x^{2n})
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 -
                                    inv2 * (1.0 / 240.0 -
                                            inv2 * (1.0 / 132.0)))));
  return result;
}

double trigamma(double x) {
  if (!(x > 0.0)) return kNan;
  double result = 0.0;
  while (x < 15.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // psi'(x) ~ 1/x + 1/(2x^2) + sum B_{2n} / x^{2n+1}
  result += inv * (1.0 +
                   inv * (0.5 +
                          inv * (1.0 / 6.0 -
                                 inv2 * (1.0 / 30.0 -
                                         inv2 * (1.0 / 42.0 -
                                                 inv2 / 30.0)))));
  return result;
}

double log_gamma_p(double a, double x) {
  if (!(a > 0.0) || x < 0.0) return kNan;
  if (x == 0.0) return -kInf;
  if (x < a + 1.0) return std::min(0.0, log_gamma_p_series(a, x));
  // P = 1 - Q with Q from the continued fraction.
  return std::min(0.0, log1m_exp(log_gamma_q_cf(a, x)));
}

double log_gamma_q(double a, double x) {
  if (!(a > 0.0) || x < 0.0) return kNan;
  if (x == 0.0) return 0.0;
  if (x > a + 1.0) return std::min(0.0, log_gamma_q_cf(a, x));
  return std::min(0.0, log1m_exp(log_gamma_p_series(a, x)));
}

double gamma_p(double a, double x) {
  const double lp = log_gamma_p(a, x);
  return std::isnan(lp) ? kNan : std::exp(lp);
}

double gamma_q(double a, double x) {
  const double lq = log_gamma_q(a, x);
  return std::isnan(lq) ? kNan : std::exp(lq);
}

double inv_gamma_p(double a, double p) {
  if (!(a > 0.0) || p < 0.0 || p >= 1.0) {
    if (p == 1.0) return kInf;
    return kNan;
  }
  if (p == 0.0) return 0.0;

  // Wilson-Hilferty initial guess.
  const double z = normal_quantile(p);
  const double wh = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * std::sqrt(a));
  double x = a * wh * wh * wh;
  if (!(x > 0.0) || !std::isfinite(x)) x = a;  // crude fallback start

  // For very small p with small shape, the solution is ~(p Gamma(a+1))^{1/a};
  // start there so the iteration has the right scale.
  if (p < 1e-4 && a < 2.0) {
    const double guess =
        std::exp((std::log(p) + log_gamma(a + 1.0)) / a);
    if (guess > 0.0 && std::isfinite(guess)) x = guess;
  }

  // Halley iteration on f(x) = P(a,x) - p.  f'(x) = x^{a-1}e^{-x}/Gamma(a).
  const double lga = log_gamma(a);
  double lo = 0.0, hi = kInf;
  auto bracket_step = [&]() {
    if (!std::isfinite(hi)) return std::max(2.0 * x, 1.0);
    // Geometric mean when the bracket spans decades (tiny-x regime).
    if (lo > 0.0 && hi / lo > 16.0) return std::sqrt(lo * hi);
    return 0.5 * (lo + hi);
  };
  for (int it = 0; it < 128; ++it) {
    const double f = gamma_p(a, x) - p;
    if (f > 0.0) hi = std::min(hi, x); else lo = std::max(lo, x);
    const double logpdf = (a - 1.0) * std::log(x) - x - lga;
    const double pdf = std::exp(logpdf);
    if (pdf <= 0.0 || !std::isfinite(pdf)) {
      x = bracket_step();
      continue;
    }
    double step = f / pdf;
    // Halley correction: f''/f' = (a-1)/x - 1.
    const double corr = 1.0 - 0.5 * step * ((a - 1.0) / x - 1.0);
    if (corr > 0.5) step /= corr;
    double xn = x - step;
    if (!(xn > lo) || !(xn < hi) || !std::isfinite(xn)) xn = bracket_step();
    if (std::abs(xn - x) <= 1e-15 * std::abs(xn)) return xn;
    x = xn;
  }
  return x;
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    if (p == 0.0) return -kInf;
    if (p == 1.0) return kInf;
    return kNan;
  }
  // Acklam's rational approximation.
  static constexpr double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                  -2.759285104469687e+02, 1.383577518672690e+02,
                                  -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                  -1.556989798598866e+02, 6.680131188771972e+01,
                                  -1.328068155288572e+01};
  static constexpr double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                  -2.400758277161838e+00, -2.549732539343734e+00,
                                  4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                                  2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley polish step against the exact cdf.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double log_sum_exp(std::span<const double> v) {
  if (v.empty()) return -kInf;
  const double m = *std::max_element(v.begin(), v.end());
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (const double x : v) s += std::exp(x - m);
  return m + std::log(s);
}

double normalize_log_weights(std::vector<double>& v) {
  const double lz = log_sum_exp(v);
  for (double& x : v) x = std::exp(x - lz);
  return lz;
}

double log_add_exp(double a, double b) {
  if (a == -kInf) return b;
  if (b == -kInf) return a;
  const double m = std::max(a, b);
  return m + std::log1p(std::exp(-std::abs(a - b)));
}

double log1m_exp(double x) {
  if (x >= 0.0) return (x == 0.0) ? -kInf : kNan;
  // Maechler's cutoff: for x > -ln 2 use log(-expm1(x)).
  if (x > -M_LN2) return std::log(-std::expm1(x));
  return std::log1p(-std::exp(x));
}

double rel_diff(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-300});
  return std::abs(a - b) / scale;
}

}  // namespace vbsrm::math
