#include "math/quadrature.hpp"

#include <cmath>
#include <stdexcept>

namespace vbsrm::math {

GaussLegendre::GaussLegendre(int n) {
  if (n < 1) throw std::invalid_argument("GaussLegendre: n must be >= 1");
  nodes_.resize(n);
  weights_.resize(n);
  // Newton iteration on P_n with the Chebyshev-like initial guess.
  const int m = (n + 1) / 2;
  for (int i = 0; i < m; ++i) {
    double x = std::cos(M_PI * (i + 0.75) / (n + 0.5));
    double pp = 0.0;
    for (int it = 0; it < 100; ++it) {
      // Evaluate P_n(x) and P_{n-1}(x) by the three-term recurrence.
      double p0 = 1.0, p1 = x;
      for (int k = 2; k <= n; ++k) {
        const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
        p0 = p1;
        p1 = p2;
      }
      // P'_n(x) = n (x P_n - P_{n-1}) / (x^2 - 1)
      pp = n * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / pp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    nodes_[i] = -x;
    nodes_[n - 1 - i] = x;
    const double w = 2.0 / ((1.0 - x * x) * pp * pp);
    weights_[i] = w;
    weights_[n - 1 - i] = w;
  }
  if (n % 2 == 1) nodes_[n / 2] = 0.0;  // exact symmetry for odd rules
}

double GaussLegendre::integrate(const std::function<double(double)>& f,
                                double a, double b) const {
  const double c = 0.5 * (a + b);
  const double h = 0.5 * (b - a);
  double s = 0.0;
  for (int i = 0; i < size(); ++i) s += weights_[i] * f(c + h * nodes_[i]);
  return s * h;
}

double GaussLegendre::integrate_composite(
    const std::function<double(double)>& f, double a, double b,
    int panels) const {
  if (panels < 1) throw std::invalid_argument("panels must be >= 1");
  const double w = (b - a) / panels;
  double s = 0.0;
  for (int p = 0; p < panels; ++p) s += integrate(f, a + p * w, a + (p + 1) * w);
  return s;
}

namespace {

double simpson(double a, double fa, double b, double fb, double fc) {
  return (b - a) / 6.0 * (fa + 4.0 * fc + fb);
}

double adaptive_simpson_rec(const std::function<double(double)>& f, double a,
                            double fa, double b, double fb, double c,
                            double fc, double whole, double abs_tol,
                            double rel_tol, int depth) {
  const double l = 0.5 * (a + c), r = 0.5 * (c + b);
  const double fl = f(l), fr = f(r);
  const double left = simpson(a, fa, c, fc, fl);
  const double right = simpson(c, fc, b, fb, fr);
  const double err = left + right - whole;
  const double tol = std::max(abs_tol, rel_tol * std::abs(left + right));
  if (depth <= 0 || std::abs(err) <= 15.0 * tol) {
    return left + right + err / 15.0;
  }
  return adaptive_simpson_rec(f, a, fa, c, fc, l, fl, left, 0.5 * abs_tol,
                              rel_tol, depth - 1) +
         adaptive_simpson_rec(f, c, fc, b, fb, r, fr, right, 0.5 * abs_tol,
                              rel_tol, depth - 1);
}

}  // namespace

double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, double abs_tol, double rel_tol,
                        int max_depth) {
  const double c = 0.5 * (a + b);
  const double fa = f(a), fb = f(b), fc = f(c);
  const double whole = simpson(a, fa, b, fb, fc);
  return adaptive_simpson_rec(f, a, fa, b, fb, c, fc, whole, abs_tol, rel_tol,
                              max_depth);
}

double integrate_semi_infinite(const std::function<double(double)>& f,
                               double a, int panels, int order,
                               double scale) {
  if (!(scale > 0.0)) throw std::invalid_argument("scale must be > 0");
  const GaussLegendre gl(order);
  // x = a + scale * t/(1-t); dx = scale dt/(1-t)^2; t in [0, 1).
  auto g = [&](double t) {
    const double om = 1.0 - t;
    const double x = a + scale * t / om;
    return f(x) * scale / (om * om);
  };
  // Stop slightly short of t=1: the integrand must decay fast enough
  // that the truncated sliver is negligible (true for exponential tails).
  return gl.integrate_composite(g, 0.0, 1.0 - 1e-12, panels);
}

ProductGrid make_product_grid(double ax, double bx, double ay, double by,
                              int panels, int order) {
  const GaussLegendre gl(order);
  ProductGrid g;
  auto fill_axis = [&](double lo, double hi, std::vector<double>& xs,
                       std::vector<double>& ws) {
    const double w = (hi - lo) / panels;
    for (int p = 0; p < panels; ++p) {
      const double c = lo + (p + 0.5) * w;
      const double h = 0.5 * w;
      for (int i = 0; i < gl.size(); ++i) {
        xs.push_back(c + h * gl.nodes()[i]);
        ws.push_back(h * gl.weights()[i]);
      }
    }
  };
  fill_axis(ax, bx, g.x, g.wx);
  fill_axis(ay, by, g.y, g.wy);
  return g;
}

double integrate_2d(const ProductGrid& g,
                    const std::function<double(double, double)>& f) {
  double s = 0.0;
  for (std::size_t i = 0; i < g.x.size(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < g.y.size(); ++j) {
      row += g.wy[j] * f(g.x[i], g.y[j]);
    }
    s += g.wx[i] * row;
  }
  return s;
}

}  // namespace vbsrm::math
