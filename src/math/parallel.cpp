#include "math/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "math/thread_annotations.hpp"

namespace vbsrm::math {

unsigned resolve_threads(unsigned threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  const unsigned n_workers = static_cast<unsigned>(
      std::min<std::size_t>(resolve_threads(threads), n));
  if (n_workers <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) task(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  // first_error is written under error_mu by workers and read by the
  // calling thread only after every worker has joined (GUARDED_BY is a
  // member/global attribute, so the discipline is stated here instead).
  Mutex error_mu;
  std::exception_ptr first_error;
  auto drain = [&] {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      try {
        task(i);
      } catch (...) {
        MutexLock lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(n_workers);
  for (unsigned w = 0; w < n_workers; ++w) workers.emplace_back(drain);
  for (std::thread& t : workers) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vbsrm::math
