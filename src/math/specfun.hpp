// Special functions used throughout vbsrm.
//
// Everything here is implemented from first principles (no Boost):
// log-gamma (Lanczos), digamma/trigamma (recurrence + asymptotic series),
// the regularized incomplete gamma functions P(a,x)/Q(a,x) (power series
// and Lentz continued fraction, with log-scale variants for extreme
// tails), their inverse in x, and the standard normal cdf/quantile.
//
// Accuracy targets: ~1e-12 relative for the incomplete gamma pair over
// the parameter ranges exercised by gamma-type NHPP models (a in
// [0.5, 1e4], x in [0, 1e6]), ~1e-10 for the normal quantile.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vbsrm::math {

/// Natural log of the gamma function for z > 0 (Lanczos approximation).
/// Agrees with std::lgamma to ~1e-14 relative; provided so the library
/// is self-contained and deterministic across libm implementations.
double log_gamma(double z);

/// Digamma function psi(x) = d/dx log Gamma(x), x > 0.
double digamma(double x);

/// Trigamma function psi'(x), x > 0.
double trigamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a).
/// Requires a > 0, x >= 0. P(a,0) = 0, P(a,inf) = 1.
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
/// Computed directly from the continued fraction when x > a + 1 so the
/// deep right tail keeps full relative accuracy.
double gamma_q(double a, double x);

/// log Q(a, x), accurate even when Q underflows (x >> a): used by the
/// VB algorithm where survival masses like Q(a, xi*te)^(N-m) appear for
/// large N.
double log_gamma_q(double a, double x);

/// log P(a, x), accurate when P underflows (x << a).
double log_gamma_p(double a, double x);

/// Inverse of P(a, .): returns x with P(a, x) = p, for p in [0, 1).
/// Halley iteration on a Wilson-Hilferty start, bisection fallback.
double inv_gamma_p(double a, double p);

/// Both regularized incomplete gammas at once.
struct GammaPQ {
  double p = 0.0;  // P(a, x)
  double q = 1.0;  // Q(a, x)
};

/// Evaluate P(a, x) and Q(a, x) from a single series/continued-fraction
/// kernel evaluation in linear space (one exp, no log round trip).  The
/// directly computed member (P for x < a+1, Q otherwise) carries full
/// relative accuracy; its complement is exact to absolute ~1e-16, which
/// is full relative accuracy wherever that member is O(1) — exactly the
/// regime interval-mass differencing uses it in.  Hot loops that
/// evaluate many x at fixed a should use gamma_pq_cached with the
/// amortized log(x) and log_gamma(a).
GammaPQ gamma_pq(double a, double x);
GammaPQ gamma_pq_cached(double a, double x, double log_x, double log_gamma_a);

/// Standard normal cumulative distribution function.
double normal_cdf(double z);

/// Standard normal quantile (inverse cdf), p in (0, 1).
/// Acklam-style rational approximation polished by one Halley step.
double normal_quantile(double p);

/// log(sum_i exp(v_i)) computed stably; returns -inf for empty input.
double log_sum_exp(std::span<const double> v);

/// In-place: v_i <- exp(v_i - logsumexp(v)) so that sum v_i == 1.
/// Returns the log normalizing constant.
double normalize_log_weights(std::vector<double>& v);

/// log(exp(a) + exp(b)) without overflow.
double log_add_exp(double a, double b);

/// log(1 - exp(x)) for x < 0, stable near both ends.
double log1m_exp(double x);

/// Relative difference |a-b| / max(|a|, |b|, tiny); used by tests and
/// fixed-point convergence checks.
double rel_diff(double a, double b);

}  // namespace vbsrm::math
