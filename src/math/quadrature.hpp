// Numerical integration: Gauss-Legendre rules (nodes computed at first
// use by Newton iteration on the Legendre polynomials), composite and
// adaptive drivers, and a 2-D product-rule integrator used by the NINT
// posterior baseline.
#pragma once

#include <functional>
#include <vector>

namespace vbsrm::math {

/// A Gauss-Legendre rule on [-1, 1] with n points.  Nodes/weights are
/// computed on construction (Newton iteration, ~1e-15 accurate) and the
/// rule can be mapped to any finite [a, b].
class GaussLegendre {
 public:
  explicit GaussLegendre(int n);

  int size() const { return static_cast<int>(nodes_.size()); }
  const std::vector<double>& nodes() const { return nodes_; }
  const std::vector<double>& weights() const { return weights_; }

  /// Integrate f over [a, b] with a single application of the rule.
  double integrate(const std::function<double(double)>& f, double a,
                   double b) const;

  /// Integrate over [a, b] split into `panels` equal panels.
  double integrate_composite(const std::function<double(double)>& f, double a,
                             double b, int panels) const;

 private:
  std::vector<double> nodes_;
  std::vector<double> weights_;
};

/// Adaptive Simpson integration with absolute/relative tolerance.
/// Recursion depth is bounded; the achieved error is typically far below
/// the requested tolerance for smooth integrands.
double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, double abs_tol = 1e-10,
                        double rel_tol = 1e-10, int max_depth = 50);

/// Integrate f over [a, inf) by the substitution x = a + scale*t/(1-t),
/// t in [0,1), using composite Gauss-Legendre.  Suitable for integrands
/// with (sub)exponential decay; `scale` should match the integrand's
/// characteristic width (e.g. the mean of a density being integrated).
double integrate_semi_infinite(const std::function<double(double)>& f,
                               double a, int panels = 32, int order = 20,
                               double scale = 1.0);

/// Nodes/weights of a tensor-product 2-D grid on [ax,bx] x [ay,by].
/// Used by the NINT estimator, which needs the raw grid to evaluate many
/// functionals (moments, marginals, reliability) against one set of
/// posterior evaluations.
struct ProductGrid {
  std::vector<double> x, wx;  // abscissae and weights along x
  std::vector<double> y, wy;  // abscissae and weights along y
};

/// Build a composite Gauss-Legendre product grid: `panels` panels of an
/// `order`-point rule along each axis (so panels*order points per axis).
ProductGrid make_product_grid(double ax, double bx, double ay, double by,
                              int panels, int order);

/// Integrate f(x, y) over the grid's box.
double integrate_2d(const ProductGrid& g,
                    const std::function<double(double, double)>& f);

}  // namespace vbsrm::math
