// Minimal deterministic work-queue parallelism.
//
// parallel_for runs tasks 0..n-1 on a pool of workers that pull indices
// from an atomic counter.  Callers get determinism by writing each
// task's result into a preassigned slot and reducing the slots in index
// order afterwards — the scheduling order never influences the output.
// This is the pool underneath engine::BatchRunner, the VB2 chunked
// component sweep, and the gamma-mixture functional reduction.
#pragma once

#include <cstddef>
#include <functional>

namespace vbsrm::math {

/// Run task(0) .. task(n-1), using up to `threads` worker threads
/// (0 picks std::thread::hardware_concurrency()).  With threads <= 1 or
/// n <= 1 the tasks run inline on the calling thread.  Tasks must only
/// write to disjoint state; the first exception thrown by any task is
/// rethrown on the calling thread after all workers join.
void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& task);

/// Resolve a thread-count option: 0 means hardware concurrency (at
/// least 1), anything else is returned unchanged.
unsigned resolve_threads(unsigned threads);

}  // namespace vbsrm::math
