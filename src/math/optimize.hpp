// Derivative-free and quasi-Newton optimization plus numeric
// differentiation, sized for the 2-4 parameter problems that NHPP
// fitting and MAP estimation pose.
#pragma once

#include <functional>
#include <vector>

namespace vbsrm::math {

using ObjectiveFn = std::function<double(const std::vector<double>&)>;

struct OptimResult {
  std::vector<double> x;  // minimizer
  double f = 0.0;         // objective value at x
  int evaluations = 0;
  bool converged = false;
};

struct NelderMeadOptions {
  double x_tol = 1e-10;   // simplex size tolerance (relative)
  double f_tol = 1e-12;   // spread of objective values tolerance
  int max_iter = 5000;
  double initial_step = 0.1;  // relative perturbation building the simplex
  int restarts = 1;           // re-run from the found optimum this many times
};

/// Nelder-Mead simplex minimization of f starting from x0.
OptimResult nelder_mead(const ObjectiveFn& f, std::vector<double> x0,
                        const NelderMeadOptions& opt = {});

/// Golden-section minimization of a 1-D unimodal function on [a, b].
OptimResult golden_section(const std::function<double(double)>& f, double a,
                           double b, double x_tol = 1e-12,
                           int max_iter = 200);

/// Central-difference gradient of f at x.
std::vector<double> numeric_gradient(const ObjectiveFn& f,
                                     const std::vector<double>& x,
                                     double rel_step = 1e-6);

/// Central-difference Hessian (symmetric, row-major n*n).
std::vector<double> numeric_hessian(const ObjectiveFn& f,
                                    const std::vector<double>& x,
                                    double rel_step = 5e-5);

}  // namespace vbsrm::math
