// Clang Thread Safety Analysis support.
//
// The macros expand to Clang's thread-safety attributes when compiling
// with a clang that has them (-Wthread-safety turns on the analysis)
// and to nothing elsewhere, so GCC builds are unaffected.  On top of
// the macros sit three annotated primitives — Mutex, MutexLock and
// CondVar — that the concurrent subsystems (math::parallel_for,
// engine::BatchRunner, serve::Service/ResultCache/HttpServer) use
// instead of the raw std:: types, so `clang++ -Wthread-safety -Werror`
// statically proves every GUARDED_BY member is only touched with its
// lock held.
//
// Conventions used across the codebase:
//   * every mutex-protected member carries GUARDED_BY(mu);
//   * private helpers called with a lock already held carry
//     REQUIRES(mu);
//   * scoped locking goes through MutexLock (SCOPED_CAPABILITY), never
//     through bare lock()/unlock() pairs;
//   * condition waits take the Mutex itself (CondVar::wait REQUIRES the
//     capability, mirroring how the analysis models cv waits).
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define VBSRM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef VBSRM_THREAD_ANNOTATION
#define VBSRM_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define CAPABILITY(x) VBSRM_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY VBSRM_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) VBSRM_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) VBSRM_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) \
  VBSRM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  VBSRM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) VBSRM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) VBSRM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  VBSRM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) VBSRM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) VBSRM_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) VBSRM_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  VBSRM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vbsrm::math {

/// std::mutex with the capability attribute, so members can be declared
/// GUARDED_BY(mu_) and functions REQUIRES(mu_).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock over Mutex (the annotated std::lock_guard analogue).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex.  wait() REQUIRES the mutex:
/// callers hold it across the wait exactly as with
/// std::condition_variable + unique_lock, and the analysis treats the
/// capability as held continuously (which matches the caller-visible
/// contract — wait reacquires before returning).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Pred>
  void wait(Mutex& mu, Pred stop_waiting) REQUIRES(mu) {
    while (!stop_waiting()) wait(mu);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mu,
                            const std::chrono::time_point<Clock, Duration>& tp)
      REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_until(lock, tp);
    lock.release();
    return st;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace vbsrm::math
