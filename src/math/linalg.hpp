// Small dense linear algebra: just enough for Laplace approximations
// (Cholesky of 2x2..4x4 Hessians, solves, inverses, determinants) and
// multivariate-normal manipulation.  Row-major storage.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace vbsrm::math {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);
  static Matrix from_rows(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  double operator()(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  const std::vector<double>& data() const { return data_; }

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix scaled(double s) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Cholesky factor L (lower triangular, A = L L^T) of a symmetric
/// positive-definite matrix.  Throws std::domain_error if A is not SPD.
Matrix cholesky(const Matrix& a);

/// Solve A x = b via LU with partial pivoting.  Throws on singular A.
std::vector<double> solve(const Matrix& a, const std::vector<double>& b);

/// Matrix inverse via LU.  Throws on singular input.
Matrix inverse(const Matrix& a);

/// Determinant via LU.
double determinant(const Matrix& a);

/// Eigenvalues of a symmetric 2x2 matrix, ascending.
std::pair<double, double> sym2x2_eigenvalues(const Matrix& a);

}  // namespace vbsrm::math
