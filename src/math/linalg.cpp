#include "math/linalg.hpp"

#include <cmath>

namespace vbsrm::math {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(
    std::initializer_list<std::initializer_list<double>> rows) {
  const std::size_t r = rows.size();
  const std::size_t c = r ? rows.begin()->size() : 0;
  Matrix m(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    if (row.size() != c) throw std::invalid_argument("ragged initializer");
    std::size_t j = 0;
    for (double v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("shape mismatch in *");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(i, k);
      if (v == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) out(i, j) += v * rhs(k, j);
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("shape mismatch in +");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("shape mismatch in -");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::scaled(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

Matrix cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("cholesky: not square");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0) throw std::domain_error("cholesky: matrix not SPD");
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

namespace {

// LU decomposition with partial pivoting.  Returns false if singular.
bool lu_decompose(Matrix& a, std::vector<std::size_t>& piv, double& sign) {
  const std::size_t n = a.rows();
  piv.resize(n);
  for (std::size_t i = 0; i < n; ++i) piv[i] = i;
  sign = 1.0;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t p = k;
    double mx = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(a(i, k)) > mx) {
        mx = std::abs(a(i, k));
        p = i;
      }
    }
    if (mx == 0.0) return false;
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(p, j));
      std::swap(piv[k], piv[p]);
      sign = -sign;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      a(i, k) /= a(k, k);
      const double f = a(i, k);
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= f * a(k, j);
    }
  }
  return true;
}

std::vector<double> lu_solve(const Matrix& lu,
                             const std::vector<std::size_t>& piv,
                             const std::vector<double>& b) {
  const std::size_t n = lu.rows();
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[piv[i]];
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu(i, j) * x[j];
  }
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= lu(ii, j) * x[j];
    x[ii] /= lu(ii, ii);
  }
  return x;
}

}  // namespace

std::vector<double> solve(const Matrix& a, const std::vector<double>& b) {
  if (a.rows() != a.cols() || a.rows() != b.size())
    throw std::invalid_argument("solve: shape mismatch");
  Matrix lu = a;
  std::vector<std::size_t> piv;
  double sign;
  if (!lu_decompose(lu, piv, sign)) throw std::domain_error("solve: singular");
  return lu_solve(lu, piv, b);
}

Matrix inverse(const Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("inverse: not square");
  const std::size_t n = a.rows();
  Matrix lu = a;
  std::vector<std::size_t> piv;
  double sign;
  if (!lu_decompose(lu, piv, sign))
    throw std::domain_error("inverse: singular");
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e.assign(n, 0.0);
    e[j] = 1.0;
    const auto col = lu_solve(lu, piv, e);
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
  }
  return inv;
}

double determinant(const Matrix& a) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("determinant: not square");
  Matrix lu = a;
  std::vector<std::size_t> piv;
  double sign;
  if (!lu_decompose(lu, piv, sign)) return 0.0;
  double det = sign;
  for (std::size_t i = 0; i < a.rows(); ++i) det *= lu(i, i);
  return det;
}

std::pair<double, double> sym2x2_eigenvalues(const Matrix& a) {
  if (a.rows() != 2 || a.cols() != 2)
    throw std::invalid_argument("sym2x2_eigenvalues: need 2x2");
  const double tr = a(0, 0) + a(1, 1);
  const double det = a(0, 0) * a(1, 1) - a(0, 1) * a(1, 0);
  const double disc = std::sqrt(std::max(0.0, 0.25 * tr * tr - det));
  return {0.5 * tr - disc, 0.5 * tr + disc};
}

}  // namespace vbsrm::math
