#include "math/roots.hpp"

#include <cmath>
#include <stdexcept>

namespace vbsrm::math {

RootResult bisect(const std::function<double(double)>& f, double a, double b,
                  double x_tol, int max_iter) {
  double fa = f(a), fb = f(b);
  RootResult r;
  if (fa == 0.0) return {a, 0, true};
  if (fb == 0.0) return {b, 0, true};
  if (fa * fb > 0.0) return {0.5 * (a + b), 0, false};
  for (int i = 0; i < max_iter; ++i) {
    const double m = 0.5 * (a + b);
    const double fm = f(m);
    r.iterations = i + 1;
    if (fm == 0.0 || 0.5 * (b - a) < x_tol * std::max(1.0, std::abs(m))) {
      return {m, r.iterations, true};
    }
    if (fa * fm < 0.0) {
      b = m;
      fb = fm;
    } else {
      a = m;
      fa = fm;
    }
  }
  r.x = 0.5 * (a + b);
  r.converged = true;  // bisection reached max_iter: still inside bracket
  return r;
}

RootResult brent(const std::function<double(double)>& f, double a, double b,
                 double x_tol, int max_iter) {
  double fa = f(a), fb = f(b);
  if (fa == 0.0) return {a, 0, true};
  if (fb == 0.0) return {b, 0, true};
  if (fa * fb > 0.0) return {0.5 * (a + b), 0, false};
  double c = a, fc = fa, d = b - a, e = d;
  for (int it = 1; it <= max_iter; ++it) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol = 2.0 * 1e-16 * std::abs(b) + 0.5 * x_tol;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0) return {b, it, true};
    if (std::abs(e) < tol || std::abs(fa) <= std::abs(fb)) {
      d = e = m;  // bisection
    } else {
      double p, q;
      const double s = fb / fa;
      if (a == c) {  // secant
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {  // inverse quadratic
        const double qq = fa / fc, rr = fb / fc;
        p = s * (2.0 * m * qq * (qq - rr) - (b - a) * (rr - 1.0));
        q = (qq - 1.0) * (rr - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q; else p = -p;
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q),
                             std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = e = m;
      }
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = e = b - a;
    }
  }
  return {b, max_iter, false};
}

RootResult newton(const std::function<double(double)>& f,
                  const std::function<double(double)>& df, double x0,
                  double lo, double hi, double x_tol, int max_iter) {
  double x = x0;
  double flo = f(lo), fhi = f(hi);
  const bool bracketed = flo * fhi < 0.0;
  for (int it = 1; it <= max_iter; ++it) {
    const double fx = f(x);
    if (fx == 0.0) return {x, it, true};
    if (bracketed) {
      if ((fx > 0.0) == (fhi > 0.0)) { hi = x; fhi = fx; }
      else { lo = x; flo = fx; }
    }
    const double dfx = df(x);
    double xn;
    if (dfx != 0.0 && std::isfinite(dfx)) {
      xn = x - fx / dfx;
    } else {
      xn = 0.5 * (lo + hi);
    }
    if (bracketed && (xn <= lo || xn >= hi)) xn = 0.5 * (lo + hi);
    if (std::abs(xn - x) <= x_tol * std::max(1.0, std::abs(xn))) {
      return {xn, it, true};
    }
    x = xn;
  }
  return {x, max_iter, false};
}

RootResult fixed_point(const std::function<double(double)>& g, double x0,
                       double rel_tol, int max_iter, double damping) {
  if (damping <= 0.0 || damping > 1.0) {
    throw std::invalid_argument("fixed_point: damping must be in (0, 1]");
  }
  double x = x0;
  for (int it = 1; it <= max_iter; ++it) {
    const double gx = g(x);
    const double xn = (1.0 - damping) * x + damping * gx;
    if (std::abs(xn - x) <= rel_tol * std::max(1.0, std::abs(xn))) {
      return {xn, it, true};
    }
    x = xn;
  }
  return {x, max_iter, false};
}

std::optional<std::pair<double, double>> expand_bracket(
    const std::function<double(double)>& f, double a, double b,
    int max_expansions, double factor) {
  if (a >= b) return std::nullopt;
  double fa = f(a), fb = f(b);
  for (int i = 0; i < max_expansions; ++i) {
    if (fa * fb <= 0.0) return std::make_pair(a, b);
    if (std::abs(fa) < std::abs(fb)) {
      a -= factor * (b - a);
      fa = f(a);
    } else {
      b += factor * (b - a);
      fb = f(b);
    }
  }
  return std::nullopt;
}

}  // namespace vbsrm::math
