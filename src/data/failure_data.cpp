#include "data/failure_data.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace vbsrm::data {

FailureTimeData::FailureTimeData(std::vector<double> times,
                                 double observation_end)
    : times_(std::move(times)), te_(observation_end) {
  if (!(te_ > 0.0) || !std::isfinite(te_)) {
    throw DataValidationError(
        "FailureTimeData: observation_end must be finite, > 0");
  }
  std::sort(times_.begin(), times_.end());
  for (double t : times_) {
    if (!(t > 0.0) || !std::isfinite(t)) {
      throw DataValidationError("FailureTimeData: times must be finite, > 0");
    }
    if (t > te_) {
      throw DataValidationError(
          "FailureTimeData: failure time beyond observation_end");
    }
  }
}

double FailureTimeData::total_time() const {
  return std::accumulate(times_.begin(), times_.end(), 0.0);
}

double FailureTimeData::total_log_time() const {
  double s = 0.0;
  for (double t : times_) s += std::log(t);
  return s;
}

GroupedData FailureTimeData::to_grouped(
    const std::vector<double>& boundaries) const {
  if (boundaries.empty()) {
    throw std::invalid_argument("to_grouped: need at least one boundary");
  }
  std::vector<std::size_t> counts(boundaries.size(), 0);
  for (double t : times_) {
    const auto it =
        std::lower_bound(boundaries.begin(), boundaries.end(), t);
    if (it == boundaries.end()) continue;  // beyond the grouping horizon
    counts[static_cast<std::size_t>(it - boundaries.begin())] += 1;
  }
  return GroupedData(boundaries, std::move(counts));
}

FailureTimeData FailureTimeData::from_csv(std::istream& in,
                                          double observation_end) {
  std::vector<double> times;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    std::istringstream ls(line);
    double t;
    if (!(ls >> t)) {
      throw DataFormatError("FailureTimeData::from_csv: line " +
                            std::to_string(lineno) + " is not a number: " +
                            line);
    }
    ls >> std::ws;
    if (!ls.eof()) {
      throw DataFormatError("FailureTimeData::from_csv: trailing junk on line " +
                            std::to_string(lineno) + ": " + line);
    }
    if (!times.empty() && t < times.back()) {
      throw DataFormatError(
          "FailureTimeData::from_csv: non-monotone failure time on line " +
          std::to_string(lineno) + " (" + std::to_string(t) + " after " +
          std::to_string(times.back()) + ")");
    }
    times.push_back(t);
  }
  if (times.empty()) {
    throw DataFormatError("FailureTimeData::from_csv: no failure times found");
  }
  return FailureTimeData(std::move(times), observation_end);
}

std::string FailureTimeData::to_csv() const {
  std::ostringstream os;
  os << "# failure times, observation_end=" << te_ << '\n';
  for (double t : times_) os << t << '\n';
  return os.str();
}

GroupedData::GroupedData(std::vector<double> boundaries,
                         std::vector<std::size_t> counts)
    : bounds_(std::move(boundaries)), counts_(std::move(counts)) {
  if (bounds_.empty() || bounds_.size() != counts_.size()) {
    throw DataValidationError("GroupedData: boundaries/counts mismatch");
  }
  double prev = 0.0;
  for (double b : bounds_) {
    if (!(b > prev) || !std::isfinite(b)) {
      throw DataValidationError(
          "GroupedData: boundaries must be finite, strictly increasing, > 0");
    }
    prev = b;
  }
}

std::size_t GroupedData::total_failures() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::size_t{0});
}

std::vector<std::size_t> GroupedData::cumulative() const {
  std::vector<std::size_t> cum(counts_.size());
  std::partial_sum(counts_.begin(), counts_.end(), cum.begin());
  return cum;
}

GroupedData GroupedData::from_csv(std::istream& in) {
  std::vector<double> bounds;
  std::vector<std::size_t> counts;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    std::istringstream ls(line);
    double b;
    char comma;
    long long c;
    if (!(ls >> b >> comma >> c) || comma != ',') {
      throw DataFormatError("GroupedData::from_csv: bad line " +
                            std::to_string(lineno) + ": " + line);
    }
    if (c < 0) {
      throw DataFormatError("GroupedData::from_csv: negative count on line " +
                            std::to_string(lineno) + ": " + line);
    }
    ls >> std::ws;
    if (!ls.eof()) {
      throw DataFormatError("GroupedData::from_csv: trailing junk on line " +
                            std::to_string(lineno) + ": " + line);
    }
    bounds.push_back(b);
    counts.push_back(static_cast<std::size_t>(c));
  }
  if (bounds.empty()) {
    throw DataFormatError("GroupedData::from_csv: no intervals found");
  }
  return GroupedData(std::move(bounds), std::move(counts));
}

std::string GroupedData::to_csv() const {
  std::ostringstream os;
  os << "# boundary,count\n";
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    os << bounds_[i] << ',' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace vbsrm::data
