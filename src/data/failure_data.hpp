// Failure data containers for software reliability analysis.
//
// Two observation schemes, mirroring the paper's Section 3:
//   FailureTimeData — exact, ordered failure times T_1 < ... < T_m
//                     observed up to a censoring horizon t_e (Eq. 4).
//   GroupedData     — counts X_i of failures inside intervals
//                     (s_{i-1}, s_i] for 0 = s_0 < s_1 < ... < s_k (Eq. 5).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace vbsrm::data {

/// Root of the typed data-error hierarchy.  Derives from
/// std::invalid_argument so pre-existing catch sites keep working; the
/// serving layer maps any DataError to 400 Bad Request instead of a
/// crash or a 500.
class DataError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Malformed input text: unparseable line, trailing junk after a
/// value, an empty file, negative counts, or out-of-order records.
class DataFormatError : public DataError {
 public:
  using DataError::DataError;
};

/// Structurally valid input whose values break a model invariant:
/// nonpositive or non-finite times, a failure beyond the observation
/// horizon, non-increasing interval boundaries.
class DataValidationError : public DataError {
 public:
  using DataError::DataError;
};

/// Exact failure times observed during (0, t_e].  Invariants enforced at
/// construction: times strictly positive, nondecreasing is upgraded to
/// strictly increasing tolerance-free sorting, all times <= t_e.
class FailureTimeData {
 public:
  FailureTimeData(std::vector<double> times, double observation_end);

  const std::vector<double>& times() const { return times_; }
  double observation_end() const { return te_; }
  std::size_t count() const { return times_.size(); }

  /// Sum of the observed failure times (a sufficient statistic of the
  /// exponential/gamma-type likelihood).
  double total_time() const;

  /// Sum of log failure times (enters the gamma-type likelihood for
  /// alpha0 != 1).
  double total_log_time() const;

  /// Bin the failure times by the given boundaries (s_0=0 implied).
  /// Failures beyond the last boundary are dropped; the resulting
  /// grouped data therefore ends at boundaries.back().
  class GroupedData to_grouped(const std::vector<double>& boundaries) const;

  /// Parse "time per line" text (comments with '#', blank lines ok).
  /// Strict: rejects unparseable lines and trailing junk, files with
  /// no data, and out-of-order (non-monotone) times with
  /// DataFormatError; value violations raise DataValidationError.
  static FailureTimeData from_csv(std::istream& in, double observation_end);
  std::string to_csv() const;

 private:
  std::vector<double> times_;
  double te_;
};

/// Grouped failure counts over contiguous intervals.
class GroupedData {
 public:
  GroupedData(std::vector<double> boundaries, std::vector<std::size_t> counts);

  /// Interval right endpoints s_1 < ... < s_k (s_0 = 0 implicit).
  const std::vector<double>& boundaries() const { return bounds_; }
  const std::vector<std::size_t>& counts() const { return counts_; }
  std::size_t intervals() const { return counts_.size(); }

  double observation_end() const { return bounds_.back(); }
  std::size_t total_failures() const;

  double left_edge(std::size_t i) const { return i == 0 ? 0.0 : bounds_[i - 1]; }
  double right_edge(std::size_t i) const { return bounds_[i]; }

  /// Cumulative failure counts after each interval.
  std::vector<std::size_t> cumulative() const;

  /// Parse "boundary,count" CSV lines.  Strict: rejects unparseable
  /// lines, trailing junk, negative counts, and empty files with
  /// DataFormatError; non-increasing boundaries raise
  /// DataValidationError.
  static GroupedData from_csv(std::istream& in);
  std::string to_csv() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::size_t> counts_;
};

}  // namespace vbsrm::data
