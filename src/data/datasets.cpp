#include "data/datasets.hpp"

#include <cmath>
#include <numeric>
#include <vector>

#include "data/simulate.hpp"
#include "random/rng.hpp"

namespace vbsrm::data::datasets {

namespace {

constexpr double kS17Omega = 44.0;
constexpr double kS17Beta = 1.26e-5;   // per second
constexpr double kS17Te = 160000.0;    // seconds
constexpr std::size_t kS17Failures = 38;

constexpr double kS17DssOmega = 42.0;   // grouped-data generator (DSS shape)
constexpr double kS17DssBeta = 0.075;   // per day
constexpr std::size_t kS17Days = 64;

}  // namespace

FailureTimeData system17_failure_times() {
  auto mean_value = [](double t) {
    return kS17Omega * (1.0 - std::exp(-kS17Beta * t));
  };
  auto times = expected_order_statistics(mean_value, kS17Te, kS17Failures);
  // Small seeded jitter (up to ~15% of the local gap) so the set is not
  // unnaturally regular; the jitter preserves ordering by construction.
  random::Rng rng(0x517D47ull);
  std::vector<double> jittered(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double lo = i == 0 ? 0.0 : times[i - 1];
    const double hi = i + 1 < times.size() ? times[i + 1] : kS17Te;
    const double amp = 0.15 * 0.5 * (hi - lo);
    jittered[i] = times[i] + amp * (2.0 * rng.next_double() - 1.0);
  }
  return FailureTimeData(std::move(jittered), kS17Te);
}

GroupedData system17_grouped() {
  // 38 failure times placed at the expected order statistics of a
  // delayed S-shaped process, then jittered (seeded, up to ~0.9 days)
  // and binned per working day.  The jitter produces the clumping real
  // failure logs show (multi-failure days next to quiet days) while
  // the underlying DSS shape makes the Goel-Okumoto fit mediocre —
  // the paper's characterization of the grouped System 17 data.
  auto dss = [](double t) {
    return kS17DssOmega *
           (1.0 - (1.0 + kS17DssBeta * t) * std::exp(-kS17DssBeta * t));
  };
  auto times = expected_order_statistics(dss, static_cast<double>(kS17Days),
                                         38);
  random::Rng rng(0x517D6ull);
  std::vector<double> bounds(kS17Days);
  for (std::size_t i = 0; i < kS17Days; ++i) {
    bounds[i] = static_cast<double>(i + 1);
  }
  std::vector<std::size_t> counts(kS17Days, 0);
  for (double t : times) {
    double tj = t + 0.9 * (2.0 * rng.next_double() - 1.0);
    tj = std::min(std::max(tj, 1e-6), static_cast<double>(kS17Days) - 1e-6);
    counts[static_cast<std::size_t>(tj)] += 1;
  }
  return GroupedData(std::move(bounds), std::move(counts));
}

FailureTimeData ntds_failure_times() {
  // Inter-failure times in days for the first 26 NTDS production errors
  // (Jelinski & Moranda 1972, Table 1; also Goel & Okumoto 1979).
  static constexpr double gaps[26] = {9,  12, 11, 4, 7,  2, 5, 8, 5,  7,
                                      1,  6,  1,  9, 4,  1, 3, 3, 6,  1,
                                      11, 33, 7,  91, 2, 1};
  std::vector<double> times;
  times.reserve(26);
  double t = 0.0;
  for (double g : gaps) {
    t += g;
    times.push_back(t);
  }
  return FailureTimeData(std::move(times), 250.0);
}

FailureTimeData synthetic_release_test(std::uint64_t seed) {
  random::Rng rng(seed);
  return simulate_gamma_nhpp(rng, 150.0, 1.0, 3e-5, 1.2e5);
}

}  // namespace vbsrm::data::datasets
