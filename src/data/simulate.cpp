#include "data/simulate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/roots.hpp"
#include "random/distributions.hpp"

namespace vbsrm::data {

FailureTimeData simulate_gamma_nhpp(random::Rng& rng, double omega,
                                    double alpha0, double beta, double te) {
  if (!(omega > 0.0) || !(alpha0 > 0.0) || !(beta > 0.0) || !(te > 0.0)) {
    throw std::invalid_argument("simulate_gamma_nhpp: bad parameters");
  }
  const auto n = random::sample_poisson(rng, omega);
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const double y = random::sample_gamma(rng, alpha0, beta);
    if (y <= te) times.push_back(y);
  }
  std::sort(times.begin(), times.end());
  return FailureTimeData(std::move(times), te);
}

GroupedData simulate_gamma_nhpp_grouped(random::Rng& rng, double omega,
                                        double alpha0, double beta, double te,
                                        std::size_t intervals) {
  if (intervals == 0) {
    throw std::invalid_argument("simulate_gamma_nhpp_grouped: 0 intervals");
  }
  const auto ft = simulate_gamma_nhpp(rng, omega, alpha0, beta, te);
  std::vector<double> bounds(intervals);
  for (std::size_t i = 0; i < intervals; ++i) {
    bounds[i] = te * static_cast<double>(i + 1) / static_cast<double>(intervals);
  }
  return ft.to_grouped(bounds);
}

FailureTimeData simulate_by_thinning(
    random::Rng& rng, const std::function<double(double)>& intensity,
    double intensity_bound, double te) {
  if (!(intensity_bound > 0.0) || !(te > 0.0)) {
    throw std::invalid_argument("simulate_by_thinning: bad parameters");
  }
  std::vector<double> times;
  double t = 0.0;
  for (;;) {
    t += random::sample_exponential(rng, intensity_bound);
    if (t > te) break;
    const double lam = intensity(t);
    if (lam > intensity_bound * (1.0 + 1e-12)) {
      throw std::invalid_argument(
          "simulate_by_thinning: intensity exceeds its stated bound");
    }
    if (rng.next_double() * intensity_bound < lam) times.push_back(t);
  }
  return FailureTimeData(std::move(times), te);
}

std::vector<double> expected_order_statistics(
    const std::function<double(double)>& mean_value, double te,
    std::size_t m) {
  std::vector<double> times;
  times.reserve(m);
  const double lam_te = mean_value(te);
  for (std::size_t i = 1; i <= m; ++i) {
    const double target = static_cast<double>(i) - 0.5;
    if (target >= lam_te) {
      throw std::invalid_argument(
          "expected_order_statistics: mean value at te too small for m");
    }
    auto f = [&](double t) { return mean_value(t) - target; };
    const auto r = math::brent(f, 1e-12 * te, te, 1e-14, 300);
    if (!r.converged) {
      throw std::runtime_error("expected_order_statistics: inversion failed");
    }
    times.push_back(r.x);
  }
  std::sort(times.begin(), times.end());
  return times;
}

}  // namespace vbsrm::data
