// NHPP sample-path generation for gamma-type (and generic mean-value)
// software reliability models.  Used by tests (recovering known truth),
// benches (ablation workloads), and the synthetic System 17 stand-in.
#pragma once

#include <functional>
#include <vector>

#include "data/failure_data.hpp"
#include "random/rng.hpp"

namespace vbsrm::data {

/// Simulate the finite-failures NHPP of the paper's Section 2 exactly:
/// draw N ~ Poisson(omega), then N i.i.d. failure times from the gamma
/// distribution with shape alpha0 and rate beta; return those <= t_e as
/// a FailureTimeData.
FailureTimeData simulate_gamma_nhpp(random::Rng& rng, double omega,
                                    double alpha0, double beta, double te);

/// Same stochastic model, but delivered as grouped counts over
/// `intervals` equal-width intervals covering (0, t_e].
GroupedData simulate_gamma_nhpp_grouped(random::Rng& rng, double omega,
                                        double alpha0, double beta, double te,
                                        std::size_t intervals);

/// Generic NHPP via thinning: `intensity` must be bounded above by
/// `intensity_bound` on (0, t_e].
FailureTimeData simulate_by_thinning(
    random::Rng& rng, const std::function<double(double)>& intensity,
    double intensity_bound, double te);

/// Deterministic "expected path": place m points at Lambda^{-1}(i - 1/2)
/// of the mean value function, i = 1..m.  Produces a maximally regular
/// realization whose MLE lands very close to the generating parameters;
/// used to manufacture well-behaved reference datasets.
std::vector<double> expected_order_statistics(
    const std::function<double(double)>& mean_value, double te,
    std::size_t m);

}  // namespace vbsrm::data
