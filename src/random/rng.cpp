#include "random/rng.hpp"

namespace vbsrm::random {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // Guard against the all-zero state (never produced by splitmix64 for
  // all four words in practice, but cheap to enforce).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_open() {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return u;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  // Lemire's rejection-free-ish multiply-shift with rejection for bias.
  if (n == 0) return 0;
  const std::uint64_t threshold = (-n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

Rng Rng::split(std::uint64_t stream) const {
  std::uint64_t mix = s_[0] ^ (s_[2] + 0x632BE59BD9B4E019ull * (stream + 1));
  return Rng(mix);
}

}  // namespace vbsrm::random
