// Non-uniform random variate generation built on Rng: exponential,
// normal (Marsaglia polar), gamma (Marsaglia-Tsang with the shape<1
// boost), Poisson (inversion for small mean, PTRS-style rejection for
// large), beta, and truncated gamma (the workhorse of the grouped-data
// Gibbs sampler).  All samplers take the Rng by reference and are
// deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "random/rng.hpp"

namespace vbsrm::random {

/// Exponential with rate lambda > 0.
double sample_exponential(Rng& rng, double lambda);

/// Standard normal.
double sample_normal(Rng& rng);

/// Normal with given mean and standard deviation (sd >= 0).
double sample_normal(Rng& rng, double mean, double sd);

/// Gamma with shape > 0 and rate > 0 (mean shape/rate).
double sample_gamma(Rng& rng, double shape, double rate);

/// Poisson with mean >= 0.
std::uint64_t sample_poisson(Rng& rng, double mean);

/// Beta(a, b), a, b > 0.
double sample_beta(Rng& rng, double a, double b);

/// Gamma(shape, rate) conditioned on lo < X <= hi.  Either bound may be
/// 0 / +infinity.  Uses inverse-cdf sampling through the regularized
/// incomplete gamma (accurate in tails via log-scale bounds), falling
/// back to rejection when the conditioning region has large mass.
double sample_truncated_gamma(Rng& rng, double shape, double rate, double lo,
                              double hi);

/// n i.i.d. draws convenience helper.
std::vector<double> sample_gamma_many(Rng& rng, std::size_t n, double shape,
                                      double rate);

}  // namespace vbsrm::random
