#include "random/distributions.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/roots.hpp"
#include "math/specfun.hpp"

namespace vbsrm::random {

namespace m = vbsrm::math;

double sample_exponential(Rng& rng, double lambda) {
  if (!(lambda > 0.0)) throw std::invalid_argument("exponential: rate <= 0");
  return -std::log(rng.next_open()) / lambda;
}

double sample_normal(Rng& rng) {
  // Marsaglia polar method.
  for (;;) {
    const double u = 2.0 * rng.next_double() - 1.0;
    const double v = 2.0 * rng.next_double() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double sample_normal(Rng& rng, double mean, double sd) {
  if (sd < 0.0) throw std::invalid_argument("normal: sd < 0");
  return mean + sd * sample_normal(rng);
}

double sample_gamma(Rng& rng, double shape, double rate) {
  if (!(shape > 0.0) || !(rate > 0.0)) {
    throw std::invalid_argument("gamma: shape and rate must be > 0");
  }
  if (shape < 1.0) {
    // Boost: X ~ Gamma(shape+1) * U^(1/shape).
    const double x = sample_gamma(rng, shape + 1.0, 1.0);
    const double u = rng.next_open();
    return x * std::pow(u, 1.0 / shape) / rate;
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = sample_normal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.next_open();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v / rate;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v / rate;
    }
  }
}

std::uint64_t sample_poisson(Rng& rng, double mean) {
  if (mean < 0.0) throw std::invalid_argument("poisson: mean < 0");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Multiplicative inversion.
    const double l = std::exp(-mean);
    std::uint64_t k = 0;
    double p = rng.next_open();
    while (p > l) {
      p *= rng.next_open();
      ++k;
    }
    return k;
  }
  // Atkinson / PTRS-style rejection via the logistic envelope.
  const double c = 0.767 - 3.36 / mean;
  const double beta = M_PI / std::sqrt(3.0 * mean);
  const double alpha = beta * mean;
  const double k = std::log(c) - mean - std::log(beta);
  for (;;) {
    const double u = rng.next_open();
    const double x = (alpha - std::log((1.0 - u) / u)) / beta;
    const double n = std::floor(x + 0.5);
    if (n < 0.0) continue;
    const double v = rng.next_open();
    const double y = alpha - beta * x;
    const double t = 1.0 + std::exp(y);
    const double lhs = y + std::log(v / (t * t));
    const double rhs = k + n * std::log(mean) - m::log_gamma(n + 1.0);
    if (lhs <= rhs) return static_cast<std::uint64_t>(n);
  }
}

double sample_beta(Rng& rng, double a, double b) {
  const double x = sample_gamma(rng, a, 1.0);
  const double y = sample_gamma(rng, b, 1.0);
  return x / (x + y);
}

namespace {

// Invert Q(a, x) = q on x in (x_lo, inf): used for deep upper tails
// where P-based inversion loses all precision.  Works in log space.
double inv_gamma_q_tail(double a, double log_q, double x_lo) {
  auto f = [&](double x) { return m::log_gamma_q(a, x) - log_q; };
  double lo = std::max(x_lo, 1e-300);
  double hi = std::max(2.0 * lo, a + 10.0);
  // f is decreasing in x; expand hi until f(hi) < 0.
  int guard = 0;
  while (f(hi) > 0.0 && guard++ < 200) hi *= 1.7;
  const auto r = m::brent(f, lo, hi, 1e-13, 200);
  return r.x;
}

}  // namespace

double sample_truncated_gamma(Rng& rng, double shape, double rate, double lo,
                              double hi) {
  if (!(shape > 0.0) || !(rate > 0.0)) {
    throw std::invalid_argument("truncated gamma: bad shape/rate");
  }
  if (!(lo >= 0.0) || !(hi > lo)) {
    throw std::invalid_argument("truncated gamma: need 0 <= lo < hi");
  }
  const double rlo = rate * lo;
  const bool unbounded = !std::isfinite(hi);
  const double rhi = unbounded ? std::numeric_limits<double>::infinity()
                               : rate * hi;

  const double plo = m::gamma_p(shape, rlo);
  const double phi = unbounded ? 1.0 : m::gamma_p(shape, rhi);
  const double mass = phi - plo;

  // Fast path: rejection from the untruncated gamma when the region
  // holds enough mass that the expected number of proposals is small.
  if (mass > 0.05) {
    for (int tries = 0; tries < 400; ++tries) {
      const double x = sample_gamma(rng, shape, rate);
      if (x > lo && x <= hi) return x;
    }
    // Fall through to inversion in the (statistically negligible) event
    // rejection kept missing.
  }

  const double u = rng.next_open();
  if (plo < 0.999) {
    // Left-anchored inversion keeps precision.
    double p = plo + u * mass;
    if (p >= 1.0) p = std::nextafter(1.0, 0.0);
    const double x = m::inv_gamma_p(shape, p) / rate;
    return std::min(std::max(x, std::nextafter(lo, hi)), hi);
  }
  // Deep right tail: work with Q in log space.
  const double lqlo = m::log_gamma_q(shape, rlo);
  const double lqhi = unbounded ? -std::numeric_limits<double>::infinity()
                                : m::log_gamma_q(shape, rhi);
  // Target Q = Qlo * (1 - u (1 - Qhi/Qlo)); compute log target stably.
  const double ratio = unbounded ? 0.0 : std::exp(lqhi - lqlo);
  const double log_q = lqlo + std::log1p(-u * (1.0 - ratio));
  const double x = inv_gamma_q_tail(shape, log_q, rlo) / rate;
  return std::min(std::max(x, std::nextafter(lo, lo + 1.0)),
                  unbounded ? std::numeric_limits<double>::max() : hi);
}

std::vector<double> sample_gamma_many(Rng& rng, std::size_t n, double shape,
                                      double rate) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample_gamma(rng, shape, rate));
  return out;
}

}  // namespace vbsrm::random
