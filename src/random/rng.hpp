// Deterministic, seedable pseudo-random generator: xoshiro256++ seeded
// via splitmix64.  Self-contained so results are bit-reproducible across
// platforms and standard libraries (std::mt19937 distributions are not
// specified bit-exactly for non-uniform draws).
#pragma once

#include <array>
#include <cstdint>

namespace vbsrm::random {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double();

  /// Uniform double in (0, 1): never returns exactly 0 (safe for logs).
  double next_open();

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n);

  /// Spawn an independent stream (jump-free: reseeds via splitmix of the
  /// current state mixed with the stream index).
  Rng split(std::uint64_t stream) const;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace vbsrm::random
