#include "core/gamma_mixture.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <sstream>
#include <string>
#include <functional>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "math/parallel.hpp"
#include "math/quadrature.hpp"
#include "math/roots.hpp"
#include "math/specfun.hpp"
#include "nhpp/model.hpp"
#include "random/distributions.hpp"

namespace vbsrm::core {

namespace m = vbsrm::math;

double GammaParams::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return m::gamma_p(shape, rate * x);
}

double GammaParams::quantile(double p) const {
  return m::inv_gamma_p(shape, p) / rate;
}

double GammaParams::log_pdf(double x) const {
  if (!(x > 0.0)) return -std::numeric_limits<double>::infinity();
  return shape * std::log(rate) + (shape - 1.0) * std::log(x) - rate * x -
         m::log_gamma(shape);
}

GammaMixturePosterior::GammaMixturePosterior(
    std::vector<ProductGammaComponent> components, double alpha0,
    double horizon)
    : components_(std::move(components)), alpha0_(alpha0), horizon_(horizon) {
  if (components_.empty()) {
    throw std::invalid_argument("GammaMixturePosterior: no components");
  }
  double total = 0.0;
  for (const auto& c : components_) {
    if (c.weight < 0.0 || !(c.omega.shape > 0.0) || !(c.omega.rate > 0.0) ||
        !(c.beta.shape > 0.0) || !(c.beta.rate > 0.0)) {
      throw std::invalid_argument("GammaMixturePosterior: bad component");
    }
    total += c.weight;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("GammaMixturePosterior: zero total weight");
  }
  for (auto& c : components_) c.weight /= total;
  cum_weights_.reserve(components_.size());
  double acc = 0.0;
  for (const auto& c : components_) {
    acc += c.weight;
    cum_weights_.push_back(acc);
  }
  cache_slot_ = std::make_unique<CacheSlot>();
}

// Per-component quadrature data shared by every reliability functional:
// the mapped Gauss-Legendre abscissae over the beta marginal's effective
// support and the weight * pdf(node) coefficients, so each functional
// evaluation is a dot product against per-node values of the integrand.
struct GammaMixturePosterior::FunctionalCache {
  struct Comp {
    double weight = 0.0;
    double a_w = 0.0, b_w = 0.0;   // omega | N parameters
    double lgamma_aw = 0.0;        // log Gamma(a_w), for the pair kernel
    int order = 0;                 // nodes per panel
    std::vector<double> panel_h;   // per-panel halfwidths
    std::vector<double> nodes;     // beta abscissae, panel-major
    std::vector<double> wpdf;      // gl_weight * pdf(node)
  };
  std::vector<Comp> comps;  // components above the weight floor, in order
  double kept = 0.0;        // total cached weight
  double skipped = 0.0;     // total weight below the floor
};

struct GammaMixturePosterior::CacheSlot {
  std::once_flag once;
  FunctionalCache data;
};

// Interval-mass table for one mission length u.  `h` feeds the point
// estimate; `inv` = b_w/h and `log_inv` = log(b_w/h) let each CDF
// evaluation call the cached incomplete-gamma pair kernel with
// x = inv * (-log x_R) and log x = log_inv + log(-log x_R), so a whole
// CDF sweep costs one log() total instead of a log + lgamma per node.
struct GammaMixturePosterior::HTable {
  std::vector<std::vector<double>> h, inv, log_inv;
};

GammaMixturePosterior::~GammaMixturePosterior() = default;
GammaMixturePosterior::GammaMixturePosterior(GammaMixturePosterior&&) noexcept =
    default;
GammaMixturePosterior& GammaMixturePosterior::operator=(
    GammaMixturePosterior&&) noexcept = default;

bayes::PosteriorSummary GammaMixturePosterior::summary() const {
  double eo = 0.0, eb = 0.0, eoo = 0.0, ebb = 0.0, eob = 0.0;
  for (const auto& c : components_) {
    const double mo = c.omega.mean(), mb = c.beta.mean();
    eo += c.weight * mo;
    eb += c.weight * mb;
    eoo += c.weight * (c.omega.variance() + mo * mo);
    ebb += c.weight * (c.beta.variance() + mb * mb);
    // omega and beta independent within a component.
    eob += c.weight * mo * mb;
  }
  return {eo, eb, eoo - eo * eo, ebb - eb * eb, eob - eo * eb};
}

double GammaMixturePosterior::mean_total_faults() const {
  double s = 0.0;
  for (const auto& c : components_) {
    s += c.weight * static_cast<double>(c.n);
  }
  return s;
}

double GammaMixturePosterior::prob_total_faults(std::uint64_t n) const {
  double s = 0.0;
  for (const auto& c : components_) {
    if (c.n == n) s += c.weight;
  }
  return s;
}

double GammaMixturePosterior::cdf_omega(double x) const {
  double s = 0.0;
  for (const auto& c : components_) s += c.weight * c.omega.cdf(x);
  return s;
}

double GammaMixturePosterior::cdf_beta(double x) const {
  double s = 0.0;
  for (const auto& c : components_) s += c.weight * c.beta.cdf(x);
  return s;
}

namespace {

double mixture_quantile(double p, double lo, double hi,
                        const std::function<double(double)>& cdf) {
  auto f = [&](double x) { return cdf(x) - p; };
  const auto r = m::brent(f, lo, hi, 1e-13, 300);
  return r.x;
}

}  // namespace

double GammaMixturePosterior::quantile_omega(double p) const {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("quantile_omega: p in (0,1)");
  }
  double lo = std::numeric_limits<double>::infinity(), hi = 0.0;
  for (const auto& c : components_) {
    lo = std::min(lo, c.omega.quantile(std::min(p, 1e-7)));
    hi = std::max(hi, c.omega.quantile(std::max(p, 1.0 - 1e-7)));
  }
  return mixture_quantile(p, lo, hi, [&](double x) { return cdf_omega(x); });
}

double GammaMixturePosterior::quantile_beta(double p) const {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("quantile_beta: p in (0,1)");
  }
  double lo = std::numeric_limits<double>::infinity(), hi = 0.0;
  for (const auto& c : components_) {
    lo = std::min(lo, c.beta.quantile(std::min(p, 1e-7)));
    hi = std::max(hi, c.beta.quantile(std::max(p, 1.0 - 1e-7)));
  }
  return mixture_quantile(p, lo, hi, [&](double x) { return cdf_beta(x); });
}

bayes::CredibleInterval GammaMixturePosterior::interval_omega(
    double level) const {
  const double a = 0.5 * (1.0 - level);
  return {quantile_omega(a), quantile_omega(1.0 - a), level};
}

bayes::CredibleInterval GammaMixturePosterior::interval_beta(
    double level) const {
  const double a = 0.5 * (1.0 - level);
  return {quantile_beta(a), quantile_beta(1.0 - a), level};
}

double GammaMixturePosterior::marginal_pdf_omega(double x) const {
  double s = 0.0;
  for (const auto& c : components_) {
    s += c.weight * std::exp(c.omega.log_pdf(x));
  }
  return s;
}

double GammaMixturePosterior::marginal_pdf_beta(double x) const {
  double s = 0.0;
  for (const auto& c : components_) {
    s += c.weight * std::exp(c.beta.log_pdf(x));
  }
  return s;
}

double GammaMixturePosterior::joint_density(double omega, double beta) const {
  double s = 0.0;
  for (const auto& c : components_) {
    s += c.weight * std::exp(c.omega.log_pdf(omega) + c.beta.log_pdf(beta));
  }
  return s;
}

std::pair<double, double> GammaMixturePosterior::sample(
    random::Rng& rng) const {
  // First component whose cumulative weight exceeds u — the binary-search
  // equivalent of the linear subtractive scan, O(log K) per draw.
  const double u = rng.next_double();
  const auto it =
      std::upper_bound(cum_weights_.begin(), cum_weights_.end(), u);
  const ProductGammaComponent& pick =
      it == cum_weights_.end()
          ? components_.back()
          : components_[static_cast<std::size_t>(it - cum_weights_.begin())];
  return {random::sample_gamma(rng, pick.omega.shape, pick.omega.rate),
          random::sample_gamma(rng, pick.beta.shape, pick.beta.rate)};
}

template <typename F>
double GammaMixturePosterior::beta_integral(const ProductGammaComponent& c,
                                            F&& g) const {
  // Integrate g(beta) * pdf(beta) over the component's effective support
  // [q(1e-10), q(1 - 1e-10)] with composite Gauss-Legendre.
  static const m::GaussLegendre rule(24);
  const double lo = c.beta.quantile(1e-10);
  const double hi = c.beta.quantile(1.0 - 1e-10);
  auto f = [&](double b) { return std::exp(c.beta.log_pdf(b)) * g(b); };
  return rule.integrate_composite(f, lo, hi, 8);
}

std::string GammaMixturePosterior::to_csv() const {
  std::ostringstream os;
  os.precision(17);
  os << "# alpha0,horizon\n" << alpha0_ << ',' << horizon_ << '\n';
  os << "# n,weight,omega_shape,omega_rate,beta_shape,beta_rate\n";
  for (const auto& c : components_) {
    os << c.n << ',' << c.weight << ',' << c.omega.shape << ','
       << c.omega.rate << ',' << c.beta.shape << ',' << c.beta.rate << '\n';
  }
  return os.str();
}

GammaMixturePosterior GammaMixturePosterior::from_csv(std::istream& in) {
  std::string line;
  double alpha0 = 0.0, horizon = 0.0;
  bool have_header = false;
  std::vector<ProductGammaComponent> comps;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    std::istringstream ls(line);
    char comma;
    if (!have_header) {
      if (!(ls >> alpha0 >> comma >> horizon) || comma != ',') {
        throw std::invalid_argument("GammaMixturePosterior::from_csv: header");
      }
      have_header = true;
      continue;
    }
    ProductGammaComponent c;
    unsigned long long n;
    char c1, c2, c3, c4, c5;
    if (!(ls >> n >> c1 >> c.weight >> c2 >> c.omega.shape >> c3 >>
          c.omega.rate >> c4 >> c.beta.shape >> c5 >> c.beta.rate) ||
        c1 != ',' || c2 != ',' || c3 != ',' || c4 != ',' || c5 != ',') {
      throw std::invalid_argument(
          "GammaMixturePosterior::from_csv: bad component line: " + line);
    }
    c.n = n;
    comps.push_back(c);
  }
  return GammaMixturePosterior(std::move(comps), alpha0, horizon);
}

namespace {
// Components below this weight contribute less than ~1e-12 to any
// functional bounded by 1 (reliability, cdf values): skipping them
// turns heavy-tailed mixtures (thousands of components) from seconds
// into milliseconds without a measurable accuracy change.
constexpr double kFunctionalWeightFloor = 1e-12;
// Quadrature layout shared with beta_integral: a 24-point rule over 8
// equal panels of the component's effective support.
constexpr int kFunctionalOrder = 24;
constexpr int kFunctionalPanels = 8;

/// Dot product of a cached component against g(node, flat_index),
/// mirroring integrate_composite's per-panel summation order.  The
/// component type is deduced (FunctionalCache::Comp is private).
template <typename C, typename G>
double cached_integral(const C& cc, G&& g) {
  double s = 0.0;
  std::size_t j = 0;
  for (const double h : cc.panel_h) {
    double ps = 0.0;
    for (int i = 0; i < cc.order; ++i, ++j) {
      ps += cc.wpdf[j] * g(cc.nodes[j], j);
    }
    s += ps * h;
  }
  return s;
}

/// Ordered parallel reduction: per-component values are computed into
/// preassigned slots and summed in component order, so the result does
/// not depend on the thread count.
double reduce_components(
    std::size_t n, unsigned threads,
    const std::function<double(std::size_t)>& value) {
  std::vector<double> vals(n, 0.0);
  m::parallel_for(n, threads,
                  [&](std::size_t i) { vals[i] = value(i); });
  double s = 0.0;
  for (const double v : vals) s += v;
  return s;
}

}  // namespace

const GammaMixturePosterior::FunctionalCache&
GammaMixturePosterior::functional_cache() const {
  std::call_once(cache_slot_->once, [&] {
    FunctionalCache& fc = cache_slot_->data;
    const m::GaussLegendre rule(kFunctionalOrder);
    for (const auto& c : components_) {
      if (c.weight < kFunctionalWeightFloor) {
        fc.skipped += c.weight;
        continue;
      }
      fc.kept += c.weight;
      FunctionalCache::Comp cc;
      cc.weight = c.weight;
      cc.a_w = c.omega.shape;
      cc.b_w = c.omega.rate;
      cc.lgamma_aw = m::log_gamma(c.omega.shape);
      cc.order = rule.size();
      // Same support and panel mapping as beta_integral.
      const double lo = c.beta.quantile(1e-10);
      const double hi = c.beta.quantile(1.0 - 1e-10);
      const double pw = (hi - lo) / kFunctionalPanels;
      const std::size_t total =
          static_cast<std::size_t>(cc.order) * kFunctionalPanels;
      cc.panel_h.reserve(kFunctionalPanels);
      cc.nodes.reserve(total);
      cc.wpdf.reserve(total);
      for (int p = 0; p < kFunctionalPanels; ++p) {
        const double pa = lo + p * pw;
        const double pb = lo + (p + 1) * pw;
        const double mid = 0.5 * (pa + pb);
        const double half = 0.5 * (pb - pa);
        cc.panel_h.push_back(half);
        for (int i = 0; i < cc.order; ++i) {
          const double b = mid + half * rule.nodes()[i];
          cc.nodes.push_back(b);
          cc.wpdf.push_back(rule.weights()[i] * std::exp(c.beta.log_pdf(b)));
        }
      }
      fc.comps.push_back(std::move(cc));
    }
  });
  return cache_slot_->data;
}

GammaMixturePosterior::HTable GammaMixturePosterior::make_h_table(
    const FunctionalCache& fc, double u) const {
  HTable t;
  t.h.resize(fc.comps.size());
  t.inv.resize(fc.comps.size());
  t.log_inv.resize(fc.comps.size());
  m::parallel_for(fc.comps.size(), functional_threads_, [&](std::size_t ci) {
    const auto& cc = fc.comps[ci];
    // The two-boundary mass table hits the Erlang closed form for the
    // paper's integral-alpha0 models: one exp per node instead of two
    // log-space incomplete-gamma round trips.
    nhpp::GroupedMassTable masses(alpha0_, {horizon_, horizon_ + u},
                                  /*with_up_law=*/false);
    auto& row = t.h[ci];
    auto& inv = t.inv[ci];
    auto& log_inv = t.log_inv[ci];
    row.resize(cc.nodes.size());
    inv.resize(cc.nodes.size());
    log_inv.resize(cc.nodes.size());
    for (std::size_t j = 0; j < cc.nodes.size(); ++j) {
      masses.evaluate(cc.nodes[j]);
      const double hh = masses.interval_mass(1);
      row[j] = hh;
      if (hh > 0.0) {
        inv[j] = cc.b_w / hh;
        log_inv[j] = std::log(inv[j]);
      }
    }
  });
  return t;
}

double GammaMixturePosterior::reliability_point_cached(
    const FunctionalCache& fc, const HTable& h) const {
  const double s = reduce_components(
      fc.comps.size(), functional_threads_, [&](std::size_t ci) {
        const auto& cc = fc.comps[ci];
        const auto& row = h.h[ci];
        return cc.weight * cached_integral(cc, [&](double, std::size_t j) {
                 // E[e^{-omega h}] for omega ~ Gamma(a, b_w).
                 return std::exp(-cc.a_w * std::log1p(row[j] / cc.b_w));
               });
      });
  return fc.skipped > 0.0 ? s / (1.0 - fc.skipped) : s;
}

double GammaMixturePosterior::reliability_cdf_cached(
    double x, const FunctionalCache& fc, const HTable& h) const {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double neg_log_x = -std::log(x);
  const double log_nlx = std::log(neg_log_x);
  const double s = reduce_components(
      fc.comps.size(), functional_threads_, [&](std::size_t ci) {
        const auto& cc = fc.comps[ci];
        const auto& row = h.h[ci];
        const auto& inv = h.inv[ci];
        const auto& log_inv = h.log_inv[ci];
        return cc.weight * cached_integral(cc, [&](double, std::size_t j) {
                 if (!(row[j] > 0.0)) return 0.0;  // R == 1 surely > x
                 // P(R <= x | beta) = Q(a, b_w * (-log x) / h), via the
                 // pair kernel with every log/lgamma precomputed.
                 return m::gamma_pq_cached(cc.a_w, inv[j] * neg_log_x,
                                           log_inv[j] + log_nlx,
                                           cc.lgamma_aw)
                     .q;
               });
      });
  return fc.kept > 0.0 ? s / fc.kept : 0.0;
}

double GammaMixturePosterior::reliability_quantile_cached(
    double p, const FunctionalCache& fc, const HTable& h) const {
  // The CDF is monotone in x with the h-table fixed, so Brent converges
  // in ~12-15 evaluations where bisection needs ~37.
  auto f = [&](double x) { return reliability_cdf_cached(x, fc, h) - p; };
  const auto r = m::brent(f, 1e-14, 1.0 - 1e-14, 1e-12, 120);
  return r.x;
}

double GammaMixturePosterior::reliability_point(double u) const {
  if (use_functional_cache_) {
    const auto& fc = functional_cache();
    return reliability_point_cached(fc, make_h_table(fc, u));
  }
  const nhpp::GammaFailureLaw law{alpha0_};
  double s = 0.0;
  double skipped = 0.0;
  for (const auto& c : components_) {
    if (c.weight < kFunctionalWeightFloor) {
      skipped += c.weight;
      continue;
    }
    const double val = beta_integral(c, [&](double b) {
      const double h = law.interval_mass(horizon_, horizon_ + u, b);
      // E[e^{-omega h}] for omega ~ Gamma(a, b_w): (b_w/(b_w+h))^a.
      return std::exp(-c.omega.shape *
                      std::log1p(h / c.omega.rate));
    });
    s += c.weight * val;
  }
  // Renormalize for the skipped sliver so the estimate stays a mean.
  return skipped > 0.0 ? s / (1.0 - skipped) : s;
}

double GammaMixturePosterior::reliability_cdf(double x, double u) const {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  if (use_functional_cache_) {
    const auto& fc = functional_cache();
    return reliability_cdf_cached(x, fc, make_h_table(fc, u));
  }
  const nhpp::GammaFailureLaw law{alpha0_};
  const double neg_log_x = -std::log(x);
  double s = 0.0;
  double kept = 0.0;
  for (const auto& c : components_) {
    if (c.weight < kFunctionalWeightFloor) continue;
    kept += c.weight;
    const double val = beta_integral(c, [&](double b) {
      const double h = law.interval_mass(horizon_, horizon_ + u, b);
      if (!(h > 0.0)) return 0.0;  // R == 1 surely > x
      // P(R <= x | beta) = P(omega >= -log x / h) = Q(a, b_w * cut).
      return m::gamma_q(c.omega.shape, c.omega.rate * neg_log_x / h);
    });
    s += c.weight * val;
  }
  return kept > 0.0 ? s / kept : 0.0;
}

double GammaMixturePosterior::reliability_quantile(double p, double u) const {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("reliability_quantile: p in (0,1)");
  }
  if (use_functional_cache_) {
    const auto& fc = functional_cache();
    return reliability_quantile_cached(p, fc, make_h_table(fc, u));
  }
  auto f = [&](double x) { return reliability_cdf(x, u) - p; };
  const auto r = m::bisect(f, 1e-14, 1.0 - 1e-14, 1e-11, 200);
  return r.x;
}

bayes::ReliabilityEstimate GammaMixturePosterior::reliability(
    double u, double level) const {
  const double a = 0.5 * (1.0 - level);
  if (use_functional_cache_) {
    // One h-table serves the point estimate and both quantile searches.
    const auto& fc = functional_cache();
    const auto h = make_h_table(fc, u);
    return {reliability_point_cached(fc, h),
            reliability_quantile_cached(a, fc, h),
            reliability_quantile_cached(1.0 - a, fc, h), level};
  }
  return {reliability_point(u), reliability_quantile(a, u),
          reliability_quantile(1.0 - a, u), level};
}

}  // namespace vbsrm::core
