#include "core/gamma_mixture.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <sstream>
#include <string>
#include <functional>
#include <limits>
#include <stdexcept>

#include "math/quadrature.hpp"
#include "math/roots.hpp"
#include "math/specfun.hpp"
#include "nhpp/model.hpp"
#include "random/distributions.hpp"

namespace vbsrm::core {

namespace m = vbsrm::math;

double GammaParams::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return m::gamma_p(shape, rate * x);
}

double GammaParams::quantile(double p) const {
  return m::inv_gamma_p(shape, p) / rate;
}

double GammaParams::log_pdf(double x) const {
  if (!(x > 0.0)) return -std::numeric_limits<double>::infinity();
  return shape * std::log(rate) + (shape - 1.0) * std::log(x) - rate * x -
         m::log_gamma(shape);
}

GammaMixturePosterior::GammaMixturePosterior(
    std::vector<ProductGammaComponent> components, double alpha0,
    double horizon)
    : components_(std::move(components)), alpha0_(alpha0), horizon_(horizon) {
  if (components_.empty()) {
    throw std::invalid_argument("GammaMixturePosterior: no components");
  }
  double total = 0.0;
  for (const auto& c : components_) {
    if (c.weight < 0.0 || !(c.omega.shape > 0.0) || !(c.omega.rate > 0.0) ||
        !(c.beta.shape > 0.0) || !(c.beta.rate > 0.0)) {
      throw std::invalid_argument("GammaMixturePosterior: bad component");
    }
    total += c.weight;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("GammaMixturePosterior: zero total weight");
  }
  for (auto& c : components_) c.weight /= total;
}

bayes::PosteriorSummary GammaMixturePosterior::summary() const {
  double eo = 0.0, eb = 0.0, eoo = 0.0, ebb = 0.0, eob = 0.0;
  for (const auto& c : components_) {
    const double mo = c.omega.mean(), mb = c.beta.mean();
    eo += c.weight * mo;
    eb += c.weight * mb;
    eoo += c.weight * (c.omega.variance() + mo * mo);
    ebb += c.weight * (c.beta.variance() + mb * mb);
    // omega and beta independent within a component.
    eob += c.weight * mo * mb;
  }
  return {eo, eb, eoo - eo * eo, ebb - eb * eb, eob - eo * eb};
}

double GammaMixturePosterior::mean_total_faults() const {
  double s = 0.0;
  for (const auto& c : components_) {
    s += c.weight * static_cast<double>(c.n);
  }
  return s;
}

double GammaMixturePosterior::prob_total_faults(std::uint64_t n) const {
  double s = 0.0;
  for (const auto& c : components_) {
    if (c.n == n) s += c.weight;
  }
  return s;
}

double GammaMixturePosterior::cdf_omega(double x) const {
  double s = 0.0;
  for (const auto& c : components_) s += c.weight * c.omega.cdf(x);
  return s;
}

double GammaMixturePosterior::cdf_beta(double x) const {
  double s = 0.0;
  for (const auto& c : components_) s += c.weight * c.beta.cdf(x);
  return s;
}

namespace {

double mixture_quantile(double p, double lo, double hi,
                        const std::function<double(double)>& cdf) {
  auto f = [&](double x) { return cdf(x) - p; };
  const auto r = m::brent(f, lo, hi, 1e-13, 300);
  return r.x;
}

}  // namespace

double GammaMixturePosterior::quantile_omega(double p) const {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("quantile_omega: p in (0,1)");
  }
  double lo = std::numeric_limits<double>::infinity(), hi = 0.0;
  for (const auto& c : components_) {
    lo = std::min(lo, c.omega.quantile(std::min(p, 1e-7)));
    hi = std::max(hi, c.omega.quantile(std::max(p, 1.0 - 1e-7)));
  }
  return mixture_quantile(p, lo, hi, [&](double x) { return cdf_omega(x); });
}

double GammaMixturePosterior::quantile_beta(double p) const {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("quantile_beta: p in (0,1)");
  }
  double lo = std::numeric_limits<double>::infinity(), hi = 0.0;
  for (const auto& c : components_) {
    lo = std::min(lo, c.beta.quantile(std::min(p, 1e-7)));
    hi = std::max(hi, c.beta.quantile(std::max(p, 1.0 - 1e-7)));
  }
  return mixture_quantile(p, lo, hi, [&](double x) { return cdf_beta(x); });
}

bayes::CredibleInterval GammaMixturePosterior::interval_omega(
    double level) const {
  const double a = 0.5 * (1.0 - level);
  return {quantile_omega(a), quantile_omega(1.0 - a), level};
}

bayes::CredibleInterval GammaMixturePosterior::interval_beta(
    double level) const {
  const double a = 0.5 * (1.0 - level);
  return {quantile_beta(a), quantile_beta(1.0 - a), level};
}

double GammaMixturePosterior::marginal_pdf_omega(double x) const {
  double s = 0.0;
  for (const auto& c : components_) {
    s += c.weight * std::exp(c.omega.log_pdf(x));
  }
  return s;
}

double GammaMixturePosterior::marginal_pdf_beta(double x) const {
  double s = 0.0;
  for (const auto& c : components_) {
    s += c.weight * std::exp(c.beta.log_pdf(x));
  }
  return s;
}

double GammaMixturePosterior::joint_density(double omega, double beta) const {
  double s = 0.0;
  for (const auto& c : components_) {
    s += c.weight * std::exp(c.omega.log_pdf(omega) + c.beta.log_pdf(beta));
  }
  return s;
}

std::pair<double, double> GammaMixturePosterior::sample(
    random::Rng& rng) const {
  double u = rng.next_double();
  const ProductGammaComponent* pick = &components_.back();
  for (const auto& c : components_) {
    if (u < c.weight) {
      pick = &c;
      break;
    }
    u -= c.weight;
  }
  return {random::sample_gamma(rng, pick->omega.shape, pick->omega.rate),
          random::sample_gamma(rng, pick->beta.shape, pick->beta.rate)};
}

template <typename F>
double GammaMixturePosterior::beta_integral(const ProductGammaComponent& c,
                                            F&& g) const {
  // Integrate g(beta) * pdf(beta) over the component's effective support
  // [q(1e-10), q(1 - 1e-10)] with composite Gauss-Legendre.
  static const m::GaussLegendre rule(24);
  const double lo = c.beta.quantile(1e-10);
  const double hi = c.beta.quantile(1.0 - 1e-10);
  auto f = [&](double b) { return std::exp(c.beta.log_pdf(b)) * g(b); };
  return rule.integrate_composite(f, lo, hi, 8);
}

std::string GammaMixturePosterior::to_csv() const {
  std::ostringstream os;
  os.precision(17);
  os << "# alpha0,horizon\n" << alpha0_ << ',' << horizon_ << '\n';
  os << "# n,weight,omega_shape,omega_rate,beta_shape,beta_rate\n";
  for (const auto& c : components_) {
    os << c.n << ',' << c.weight << ',' << c.omega.shape << ','
       << c.omega.rate << ',' << c.beta.shape << ',' << c.beta.rate << '\n';
  }
  return os.str();
}

GammaMixturePosterior GammaMixturePosterior::from_csv(std::istream& in) {
  std::string line;
  double alpha0 = 0.0, horizon = 0.0;
  bool have_header = false;
  std::vector<ProductGammaComponent> comps;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    std::istringstream ls(line);
    char comma;
    if (!have_header) {
      if (!(ls >> alpha0 >> comma >> horizon) || comma != ',') {
        throw std::invalid_argument("GammaMixturePosterior::from_csv: header");
      }
      have_header = true;
      continue;
    }
    ProductGammaComponent c;
    unsigned long long n;
    char c1, c2, c3, c4, c5;
    if (!(ls >> n >> c1 >> c.weight >> c2 >> c.omega.shape >> c3 >>
          c.omega.rate >> c4 >> c.beta.shape >> c5 >> c.beta.rate) ||
        c1 != ',' || c2 != ',' || c3 != ',' || c4 != ',' || c5 != ',') {
      throw std::invalid_argument(
          "GammaMixturePosterior::from_csv: bad component line: " + line);
    }
    c.n = n;
    comps.push_back(c);
  }
  return GammaMixturePosterior(std::move(comps), alpha0, horizon);
}

namespace {
// Components below this weight contribute less than ~1e-12 to any
// functional bounded by 1 (reliability, cdf values): skipping them
// turns heavy-tailed mixtures (thousands of components) from seconds
// into milliseconds without a measurable accuracy change.
constexpr double kFunctionalWeightFloor = 1e-12;
}  // namespace

double GammaMixturePosterior::reliability_point(double u) const {
  const nhpp::GammaFailureLaw law{alpha0_};
  double s = 0.0;
  double skipped = 0.0;
  for (const auto& c : components_) {
    if (c.weight < kFunctionalWeightFloor) {
      skipped += c.weight;
      continue;
    }
    const double val = beta_integral(c, [&](double b) {
      const double h = law.interval_mass(horizon_, horizon_ + u, b);
      // E[e^{-omega h}] for omega ~ Gamma(a, b_w): (b_w/(b_w+h))^a.
      return std::exp(-c.omega.shape *
                      std::log1p(h / c.omega.rate));
    });
    s += c.weight * val;
  }
  // Renormalize for the skipped sliver so the estimate stays a mean.
  return skipped > 0.0 ? s / (1.0 - skipped) : s;
}

double GammaMixturePosterior::reliability_cdf(double x, double u) const {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const nhpp::GammaFailureLaw law{alpha0_};
  const double neg_log_x = -std::log(x);
  double s = 0.0;
  double kept = 0.0;
  for (const auto& c : components_) {
    if (c.weight < kFunctionalWeightFloor) continue;
    kept += c.weight;
    const double val = beta_integral(c, [&](double b) {
      const double h = law.interval_mass(horizon_, horizon_ + u, b);
      if (!(h > 0.0)) return 0.0;  // R == 1 surely > x
      // P(R <= x | beta) = P(omega >= -log x / h) = Q(a, b_w * cut).
      return m::gamma_q(c.omega.shape, c.omega.rate * neg_log_x / h);
    });
    s += c.weight * val;
  }
  return kept > 0.0 ? s / kept : 0.0;
}

double GammaMixturePosterior::reliability_quantile(double p, double u) const {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("reliability_quantile: p in (0,1)");
  }
  auto f = [&](double x) { return reliability_cdf(x, u) - p; };
  const auto r = m::bisect(f, 1e-14, 1.0 - 1e-14, 1e-11, 200);
  return r.x;
}

bayes::ReliabilityEstimate GammaMixturePosterior::reliability(
    double u, double level) const {
  const double a = 0.5 * (1.0 - level);
  return {reliability_point(u), reliability_quantile(a, u),
          reliability_quantile(1.0 - a, u), level};
}

}  // namespace vbsrm::core
