#include "core/coverage.hpp"

#include <cmath>
#include <stdexcept>

#include "bayes/gibbs.hpp"
#include "bayes/laplace.hpp"
#include "bayes/profile.hpp"
#include "core/vb1.hpp"
#include "core/vb2.hpp"
#include "data/simulate.hpp"
#include "random/rng.hpp"

namespace vbsrm::core {

namespace {

struct Tally {
  MethodCoverage agg;

  void record(const bayes::CredibleInterval& io,
              const bayes::CredibleInterval& ib, double omega, double beta) {
    ++agg.trials;
    agg.covered_omega += (omega >= io.lower && omega <= io.upper);
    agg.covered_beta += (beta >= ib.lower && beta <= ib.upper);
    agg.mean_width_omega += io.upper - io.lower;
    agg.mean_width_beta += ib.upper - ib.lower;
  }

  MethodCoverage finish() {
    if (agg.trials > 0) {
      agg.mean_width_omega /= agg.trials;
      agg.mean_width_beta /= agg.trials;
    }
    return agg;
  }
};

}  // namespace

std::vector<MethodCoverage> run_coverage_study(const CoverageConfig& cfg) {
  if (cfg.replications < 1) {
    throw std::invalid_argument("run_coverage_study: replications >= 1");
  }
  Tally vb2_t, vb1_t, lapl_t, prof_t, mcmc_t;
  vb2_t.agg.method = "VB2";
  vb1_t.agg.method = "VB1";
  lapl_t.agg.method = "LAPL";
  prof_t.agg.method = "PROFILE";
  mcmc_t.agg.method = "MCMC";

  random::Rng master(cfg.seed);
  int produced = 0;
  int attempts = 0;
  while (produced < cfg.replications && attempts < 20 * cfg.replications) {
    ++attempts;
    random::Rng rng = master.split(static_cast<std::uint64_t>(attempts));
    const auto sim = data::simulate_gamma_nhpp(rng, cfg.omega, cfg.alpha0,
                                               cfg.beta, cfg.horizon);
    if (sim.count() < cfg.min_failures) continue;
    ++produced;

    try {
      const Vb2Estimator vb2(cfg.alpha0, sim, cfg.priors);
      vb2_t.record(vb2.posterior().interval_omega(cfg.level),
                   vb2.posterior().interval_beta(cfg.level), cfg.omega,
                   cfg.beta);
    } catch (const std::exception&) {
      ++vb2_t.agg.failures;
    }
    try {
      const Vb1Estimator vb1(cfg.alpha0, sim, cfg.priors);
      vb1_t.record(vb1.posterior().interval_omega(cfg.level),
                   vb1.posterior().interval_beta(cfg.level), cfg.omega,
                   cfg.beta);
    } catch (const std::exception&) {
      ++vb1_t.agg.failures;
    }
    try {
      bayes::LogPosterior post(cfg.alpha0, sim, cfg.priors);
      const bayes::LaplaceEstimator lap(post);
      lapl_t.record(lap.interval_omega(cfg.level),
                    lap.interval_beta(cfg.level), cfg.omega, cfg.beta);
    } catch (const std::exception&) {
      ++lapl_t.agg.failures;
    }
    try {
      bayes::LogPosterior post(cfg.alpha0, sim, cfg.priors);
      const bayes::ProfileIntervalEstimator prof(std::move(post));
      prof_t.record(prof.interval_omega(cfg.level),
                    prof.interval_beta(cfg.level), cfg.omega, cfg.beta);
    } catch (const std::exception&) {
      ++prof_t.agg.failures;
    }
    if (cfg.include_mcmc) {
      try {
        bayes::McmcOptions mc;
        mc.burn_in = 2000;
        mc.thin = 2;
        mc.samples = cfg.mcmc_samples;
        mc.seed = cfg.seed + static_cast<std::uint64_t>(attempts) * 31;
        const auto chain =
            bayes::gibbs_failure_times(cfg.alpha0, sim, cfg.priors, mc);
        mcmc_t.record(chain.interval_omega(cfg.level),
                      chain.interval_beta(cfg.level), cfg.omega, cfg.beta);
      } catch (const std::exception&) {
        ++mcmc_t.agg.failures;
      }
    }
  }

  std::vector<MethodCoverage> out{vb2_t.finish(), vb1_t.finish(),
                                  lapl_t.finish(), prof_t.finish()};
  if (cfg.include_mcmc) out.push_back(mcmc_t.finish());
  return out;
}

double coverage_standard_error(double level, int trials) {
  if (trials < 1) return 1.0;
  return std::sqrt(level * (1.0 - level) / static_cast<double>(trials));
}

}  // namespace vbsrm::core
