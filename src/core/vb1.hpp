// VB1 — the earlier variational Bayes of Okamura, Sakoh & Dohi (2006),
// reconstructed for comparison (the paper's Sec. 5/6 baseline).
//
// It uses the *fully factorized* assumption Pv(U, mu) = Pv(U) Pv(mu)
// (paper Eq. 15): the unobserved data (total fault count N and latent
// failure times) are forced independent of the parameters.  The
// coordinate-ascent updates are:
//
//   q(omega) = Gamma(m_w + E[N],        phi_w + 1)
//   q(beta)  = Gamma(m_b + alpha0 E[N], phi_b + E[sum T])
//   q(N):    the residual count r = N - M is Poisson(lambda) with
//     lambda = exp(E[log omega] + alpha0 (E[log beta] - log xi))
//              * Q(alpha0, xi * horizon),         xi = E[beta],
//   and the latent times are truncated gammas at rate xi, giving
//     E[N]     = M + lambda
//     E[sum T] = (observed time mass at rate xi) + lambda * tail mean.
//
// Because q(omega) and q(beta) are a single product of gammas, VB1's
// posterior has Cov(omega, beta) == 0 by construction — exactly the
// deficiency Table 1 of the paper exhibits (underestimated Var(omega),
// too-narrow intervals).  The returned posterior is a one-component
// GammaMixturePosterior so all downstream functionals are shared.
#pragma once

#include <optional>

#include "bayes/prior.hpp"
#include "core/gamma_mixture.hpp"
#include "data/failure_data.hpp"

namespace vbsrm::core {

struct Vb1Options {
  double tol = 1e-12;       // relative change of (E[N], xi) to stop
  int max_iterations = 2000;
};

struct Vb1Diagnostics {
  int iterations = 0;
  bool converged = false;
  double expected_total_faults = 0.0;  // E[N] at convergence
};

class Vb1Estimator {
 public:
  Vb1Estimator(double alpha0, const data::FailureTimeData& d,
               const bayes::PriorPair& priors, const Vb1Options& opt = {});
  Vb1Estimator(double alpha0, const data::GroupedData& d,
               const bayes::PriorPair& priors, const Vb1Options& opt = {});

  const GammaMixturePosterior& posterior() const { return *posterior_; }
  const Vb1Diagnostics& diagnostics() const { return diag_; }

 private:
  void run(double alpha0, const bayes::PriorPair& priors, bool grouped,
           std::uint64_t observed, double horizon, double sum_t,
           const std::vector<double>& bounds,
           const std::vector<std::size_t>& counts, const Vb1Options& opt);

  std::optional<GammaMixturePosterior> posterior_;
  Vb1Diagnostics diag_;
};

}  // namespace vbsrm::core
