// VB2 — the paper's proposed variational Bayesian method (Sec. 5).
//
// Structured factorization Pv(T, N, mu) = Pv(T|N) Pv(mu|N) Pv(N):
// conditionally on the total fault count N, the variational posteriors
// are conjugate gammas,
//   omega | N ~ Gamma(m_w + N,        phi_w + 1)
//   beta  | N ~ Gamma(m_b + N alpha0, phi_b + zeta_N),
// where zeta_N = E[sum_i T_i | N] couples with xi_N = E[beta | N]
// through the fixed-point system of Eqs. (24)-(27):
//
//   failure-time data:
//     zeta = sum t_i + (N - m) * Etrunc(T | T > t_e; alpha0, xi)
//   grouped data:
//     zeta = sum_i x_i * Etrunc(T | s_{i-1} < T <= s_i; alpha0, xi)
//          + (N - M) * Etrunc(T | T > s_k; alpha0, xi)
//   both:
//     xi   = (m_b + N alpha0) / (phi_b + zeta)
//
// (the paper's G_Gam(t_e; ...) applied to the residual faults is the
// *survival* function; see DESIGN.md).  For the Goel-Okumoto model with
// failure-time data the system solves in closed form:
//     xi = (m_b + m) / (phi_b + sum t_i + (N - m) t_e).
//
// The mixture weight of each N is the unnormalized Pv(N) of Eq. (28),
// accumulated fully in log space:
//   log w(N) = lgam(a_w) - a_w log b_w + lgam(a_b) - a_b log b_b
//            + log C(N) - N alpha0 log xi + xi zeta,
//   log C(N) = [data-dependent observed-term at rate xi]
//            + (N - M) log Q(alpha0, xi * horizon) - lgam(N - M + 1).
//
// Steps 1-5 of the paper's algorithm adapt the truncation point n_max
// until Pv(n_max) < epsilon.
#pragma once

#include <cstdint>
#include <optional>

#include "bayes/prior.hpp"
#include "core/gamma_mixture.hpp"
#include "data/failure_data.hpp"

namespace vbsrm::nhpp {
class GroupedMassTable;
}

namespace vbsrm::core {

struct Vb2Options {
  std::uint64_t n_max = 200;       // initial truncation point
  double epsilon = 5e-15;          // Step-4 tolerance on Pv(n_max)
  bool adapt_n_max = true;         // double n_max until the test passes
  /// Hard cap for the adaptation.  When the data cannot identify omega
  /// (the paper's D_G-NoInfo case) Pv(N) decays sub-exponentially and
  /// the Step-4 test may never pass; the cap bounds the cost while the
  /// retained mixture already carries virtually all of VB2's own
  /// posterior mass (its tails are far lighter than MCMC's there).
  std::uint64_t n_max_limit = 8192;
  double fixed_point_tol = 1e-13;  // successive-substitution tolerance
  int fixed_point_max_iter = 500;
  /// Use the GO closed form when available (alpha0 == 1, failure times).
  bool use_closed_form = true;
  /// Newton acceleration for the fixed point instead of plain
  /// successive substitution (ablation A3).
  bool use_newton = false;

  // ---- Hot-path controls.  The defaults enable the fast paths; the
  // naive settings (threads=1, sweep_chunk=0, use_zeta_table=false,
  // use_lgamma_recurrence=false) reproduce the pre-optimization code
  // paths bit-for-bit and are kept for perf baselines and equivalence
  // tests (see DESIGN.md "Performance architecture"). ----

  /// Worker threads for the chunked component sweep (0 = hardware
  /// concurrency).  The thread count only changes scheduling, never
  /// chunk decomposition or warm-start seeding, so results are
  /// bit-identical for every value.
  unsigned threads = 1;
  /// Components per chunk of the deterministic chunked sweep.  Chunk
  /// heads are solved sequentially (each warm-started from the previous
  /// head's xi); chunk bodies then solve independently, warm-chaining
  /// from their own head.  0 disables chunking and restores the legacy
  /// strictly sequential warm-start chain (implies a serial sweep).
  std::uint64_t sweep_chunk = 64;
  /// Evaluate zeta through a per-xi nhpp::GroupedMassTable: each shared
  /// bin boundary costs one incomplete-gamma pair evaluation per law
  /// instead of two log-space evaluations per adjacent interval, and
  /// the converged table is reused for the component's log-weight
  /// (the naive path re-derives zeta twice per component).
  bool use_zeta_table = true;
  /// Advance the objective's lgamma(a_w), lgamma(a_b), lgamma(rd+1)
  /// terms along the N ladder with lgamma(x+1) = lgamma(x) + log(x)
  /// recurrences (a_w and rd advance by 1, a_b by alpha0; non-integral
  /// alpha0 keeps direct evaluation for a_b).  Only active together
  /// with use_zeta_table.
  bool use_lgamma_recurrence = true;
  /// Exactly recompute the recurrence every this many components to
  /// bound drift; chunk heads always reseed exactly.
  std::uint64_t lgamma_resync = 64;
  /// Steffensen (Aitken delta-squared) acceleration of the successive
  /// substitution: the ~0.7-rate linear contraction of the xi map
  /// becomes quadratic, cutting ~70 zeta evaluations per component to
  /// under 10 at the same tolerance.  Off restores the plain
  /// pre-optimization iteration.  Ignored when use_newton is set.
  bool use_steffensen = true;
};

struct Vb2Diagnostics {
  std::uint64_t n_max_used = 0;
  double prob_at_n_max = 0.0;      // Pv(n_max) after normalization
  std::uint64_t n_max_doublings = 0;
  std::uint64_t total_fixed_point_iterations = 0;
  double log_evidence_bound = 0.0;  // log sum of unnormalized Pv(N)
};

class Vb2Estimator {
 public:
  Vb2Estimator(double alpha0, const data::FailureTimeData& d,
               const bayes::PriorPair& priors, const Vb2Options& opt = {});
  Vb2Estimator(double alpha0, const data::GroupedData& d,
               const bayes::PriorPair& priors, const Vb2Options& opt = {});

  const GammaMixturePosterior& posterior() const { return *posterior_; }
  const Vb2Diagnostics& diagnostics() const { return diag_; }

  /// Per-N variational objective as a function of the rate xi: the
  /// fixed point is its stationary point (exposed for property tests
  /// and the solver ablation).
  double component_objective(std::uint64_t n, double xi) const;

  /// Solve the (zeta, xi) fixed point for a given N (exposed for tests).
  std::pair<double, double> solve_component(std::uint64_t n) const;

 private:
  void run(const Vb2Options& opt);

  /// The three lgamma terms of the per-component objective at one N,
  /// either computed directly or advanced by ladder recurrences.
  struct LadderTerms {
    double lg_aw = 0.0;    // lgamma(m_w + N)
    double lg_ab = 0.0;    // lgamma(m_b + N alpha0)
    double lg_rdp1 = 0.0;  // lgamma(N - m + 1)
  };
  struct ComponentResult {
    double zeta = 0.0;
    double xi = 0.0;
    double log_w = 0.0;
    std::uint64_t iterations = 0;
  };

  LadderTerms ladder_exact(std::uint64_t n) const;
  void ladder_advance(LadderTerms& lt, std::uint64_t n) const;  // n -> n+1

  /// E-step expectation zeta(xi, N) via GammaFailureLaw (legacy path).
  double zeta_naive(double xi, double nd) const;
  /// Same through a boundary table the caller owns as scratch.
  double zeta_from_table(nhpp::GroupedMassTable& table, double xi,
                         double nd) const;

  /// Solve the fixed point from `warm` and score the component.  With a
  /// scratch `table` the zeta/objective path is the cached one and `lt`
  /// supplies the lgamma terms; with table == nullptr both follow the
  /// legacy code (component_objective recomputes zeta).
  ComponentResult process_component(std::uint64_t n, double warm,
                                    const LadderTerms& lt,
                                    nhpp::GroupedMassTable* table) const;

  /// Solve + score the ladder [lo, hi] (one stage of the adaptive
  /// n_max loop), appending to the per-component arrays which are
  /// indexed by N - n_min.  `stage_warm` carries the warm-start chain
  /// across stages.  Returns the fixed-point iteration total.
  std::uint64_t sweep_stage(std::uint64_t lo, std::uint64_t hi,
                            std::uint64_t n_min, double& stage_warm,
                            std::vector<double>& log_w,
                            std::vector<double>& zetas,
                            std::vector<double>& xis) const;

  double alpha0_;
  bayes::PriorPair priors_;
  // Data in a scheme-neutral layout.
  bool grouped_ = false;
  std::uint64_t observed_ = 0;
  double horizon_ = 0.0;
  double sum_t_ = 0.0;       // failure-time data only
  double sum_log_t_ = 0.0;   // failure-time data only
  std::vector<double> bounds_;          // grouped only
  std::vector<std::size_t> counts_;     // grouped only
  Vb2Options opt_;           // as passed to the constructor
  double ft_logc_const_ = 0.0;  // (alpha0-1) sum log t - m lgamma(alpha0)

  std::optional<GammaMixturePosterior> posterior_;
  Vb2Diagnostics diag_;
};

}  // namespace vbsrm::core
