// Monte-Carlo coverage study: are the methods' credible intervals
// calibrated in the frequentist sense?  Repeatedly simulate a
// gamma-type NHPP from known truth, build each method's level-L
// interval for omega and beta, and count how often the truth is
// covered.  The paper compares methods only against each other on one
// data set; this harness quantifies who is *actually* calibrated — the
// missing experiment its Section 6 implies (VB1's too-narrow intervals
// must under-cover; LAPL's left shift must cost omega coverage).
//
// MCMC/NINT are deliberately excluded by default: at hundreds of
// replications their cost dominates while their intervals track VB2's
// (Tables 2-3); flags let you add them for small studies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bayes/prior.hpp"

namespace vbsrm::core {

struct CoverageConfig {
  double alpha0 = 1.0;
  double omega = 90.0;       // simulation truth
  double beta = 1.25e-3;     // simulation truth
  double horizon = 1200.0;
  double level = 0.9;
  int replications = 200;
  std::uint64_t seed = 42;
  bayes::PriorPair priors;   // used by every Bayesian method
  bool include_mcmc = false; // expensive; off by default
  std::size_t mcmc_samples = 4000;
  /// Replications yielding fewer failures than this are re-drawn.
  std::size_t min_failures = 8;
};

struct MethodCoverage {
  std::string method;
  int trials = 0;
  int covered_omega = 0;
  int covered_beta = 0;
  double mean_width_omega = 0.0;  // average interval width
  double mean_width_beta = 0.0;
  int failures = 0;  // estimator errors (skipped trials)

  double rate_omega() const {
    return trials ? static_cast<double>(covered_omega) / trials : 0.0;
  }
  double rate_beta() const {
    return trials ? static_cast<double>(covered_beta) / trials : 0.0;
  }
};

/// Run the study for VB2, VB1, LAPL and PROFILE (plus MCMC when
/// enabled).  Results are ordered as named.
std::vector<MethodCoverage> run_coverage_study(const CoverageConfig& config);

/// Two-sided binomial standard error of a coverage estimate — how much
/// slack to allow when judging rates against the nominal level.
double coverage_standard_error(double level, int trials);

}  // namespace vbsrm::core
