// Posterior-predictive distributions over the VB posterior.
//
// Given the mixture posterior Pv(omega, beta) = sum_N w_N
// Gamma(omega) Gamma(beta) and the gamma-type model, the number of
// failures K in a future window (t_e, t_e + u] satisfies
//   K | omega, beta ~ Poisson(omega * h(beta)),
//   h(beta) = G(t_e + u; beta) - G(t_e; beta),
// and the omega-integral is analytic: mixing Poisson(omega h) over
// omega ~ Gamma(a, b) gives a negative binomial,
//   P(K = k | beta, N) = C(a+k-1, k) * (h/(b+h))^k * (b/(b+h))^a.
// Only a 1-D quadrature over beta remains per mixture component, so the
// full predictive pmf/cdf/quantiles are cheap and deterministic.
//
// The residual-fault distribution P(N - m = r | D) falls out of the
// mixture weights directly.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gamma_mixture.hpp"

namespace vbsrm::core {

class PredictiveDistribution {
 public:
  /// Predictive law of the failure count in (horizon, horizon + u],
  /// where `horizon` is the posterior's observation end.
  PredictiveDistribution(const GammaMixturePosterior& posterior, double u);

  double window() const { return u_; }

  /// P(K = k) for the future-window failure count.
  double pmf(std::uint64_t k) const;
  /// P(K <= k).
  double cdf(std::uint64_t k) const;
  /// Predictive mean E[K] = E[omega h(beta)] (exact via quadrature).
  double mean() const;
  /// Predictive variance (law of total variance over the posterior).
  double variance() const;
  /// Smallest k with P(K <= k) >= p.
  std::uint64_t quantile(double p) const;
  /// Central predictive interval [quantile((1-level)/2),
  /// quantile(1-(1-level)/2)].
  std::pair<std::uint64_t, std::uint64_t> interval(double level) const;
  /// P(K = 0) — must equal the posterior reliability point estimate.
  double prob_zero() const { return pmf(0); }

 private:
  const GammaMixturePosterior& posterior_;
  double u_;
  // Cached per-component beta quadrature: nodes, pdf weights, and h(beta).
  struct ComponentQuad {
    double weight;            // mixture weight
    double a, b;              // omega gamma params
    std::vector<double> wq;   // quadrature weight * beta pdf
    std::vector<double> h;    // h(beta) at the nodes
  };
  std::vector<ComponentQuad> quads_;
};

/// Residual-fault count distribution P(N - m = r | D) read off the
/// mixture weights; `observed` is m (the smallest N in the mixture).
struct ResidualFaultDistribution {
  std::uint64_t observed = 0;
  std::vector<double> pmf;  // index r = N - observed

  static ResidualFaultDistribution from_posterior(
      const GammaMixturePosterior& posterior);

  double mean() const;
  double prob_at_most(std::uint64_t r) const;
  /// Smallest r with P(residual <= r) >= p.
  std::uint64_t quantile(double p) const;
};

}  // namespace vbsrm::core
