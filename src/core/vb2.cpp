#include "core/vb2.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/parallel.hpp"
#include "math/roots.hpp"
#include "math/specfun.hpp"
#include "nhpp/model.hpp"

namespace vbsrm::core {

namespace m = vbsrm::math;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// True when alpha0 is a (small) positive integer, which makes the
/// lgamma(a_b) ladder advance by whole steps.
bool integral_alpha(double alpha0) {
  return alpha0 == std::floor(alpha0) && alpha0 >= 1.0 && alpha0 <= 64.0;
}

}  // namespace

Vb2Estimator::Vb2Estimator(double alpha0, const data::FailureTimeData& d,
                           const bayes::PriorPair& priors,
                           const Vb2Options& opt)
    : alpha0_(alpha0),
      priors_(priors),
      grouped_(false),
      observed_(d.count()),
      horizon_(d.observation_end()),
      sum_t_(d.total_time()),
      sum_log_t_(d.total_log_time()) {
  if (!(alpha0 > 0.0)) throw std::invalid_argument("Vb2: alpha0 must be > 0");
  if (observed_ == 0) {
    throw std::invalid_argument(
        "Vb2: no failures observed — beta is unidentifiable (with flat "
        "priors the N=0 component would even have an improper beta "
        "posterior); collect data or encode knowledge in the priors");
  }
  run(opt);
}

Vb2Estimator::Vb2Estimator(double alpha0, const data::GroupedData& d,
                           const bayes::PriorPair& priors,
                           const Vb2Options& opt)
    : alpha0_(alpha0),
      priors_(priors),
      grouped_(true),
      observed_(d.total_failures()),
      horizon_(d.observation_end()),
      bounds_(d.boundaries()),
      counts_(d.counts()) {
  if (!(alpha0 > 0.0)) throw std::invalid_argument("Vb2: alpha0 must be > 0");
  if (observed_ == 0) {
    throw std::invalid_argument(
        "Vb2: no failures observed — beta is unidentifiable");
  }
  run(opt);
}

namespace {

/// zeta(xi, N): the E-step expectation E[sum_i T_i | N] at rate xi.
struct ZetaEvaluator {
  double alpha0;
  bool grouped;
  double observed;       // M as double
  double horizon;
  double sum_t;          // failure-time only
  const std::vector<double>* bounds;        // grouped only
  const std::vector<std::size_t>* counts;   // grouped only

  double operator()(double xi, double n) const {
    const nhpp::GammaFailureLaw law{alpha0};
    const double residual = n - observed;
    double z = 0.0;
    if (!grouped) {
      z = sum_t;
    } else {
      double prev = 0.0;
      for (std::size_t i = 0; i < bounds->size(); ++i) {
        const double x = static_cast<double>((*counts)[i]);
        if (x > 0.0) {
          z += x * law.truncated_mean(prev, (*bounds)[i], xi);
        }
        prev = (*bounds)[i];
      }
    }
    if (residual > 0.0) {
      z += residual * law.truncated_mean(horizon, kInf, xi);
    }
    return z;
  }
};

}  // namespace

double Vb2Estimator::zeta_naive(double xi, double nd) const {
  const ZetaEvaluator zeta_of{alpha0_, grouped_,
                              static_cast<double>(observed_), horizon_,
                              sum_t_, &bounds_, &counts_};
  return zeta_of(xi, nd);
}

double Vb2Estimator::zeta_from_table(nhpp::GroupedMassTable& table, double xi,
                                     double nd) const {
  table.evaluate(xi);
  double z = 0.0;
  if (!grouped_) {
    z = sum_t_;
  } else {
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      const double x = static_cast<double>(counts_[i]);
      if (x > 0.0) z += x * table.truncated_mean(i);
    }
  }
  const double residual = nd - static_cast<double>(observed_);
  if (residual > 0.0) z += residual * table.tail_truncated_mean();
  return z;
}

Vb2Estimator::LadderTerms Vb2Estimator::ladder_exact(std::uint64_t n) const {
  const double nd = static_cast<double>(n);
  const double md = static_cast<double>(observed_);
  return {m::log_gamma(priors_.omega.shape + nd),
          m::log_gamma(priors_.beta.shape + nd * alpha0_),
          m::log_gamma(nd - md + 1.0)};
}

void Vb2Estimator::ladder_advance(LadderTerms& lt, std::uint64_t n) const {
  // Advance from N = n to N = n + 1: lgamma(x + 1) = lgamma(x) + log(x).
  const double nd = static_cast<double>(n);
  const double md = static_cast<double>(observed_);
  lt.lg_aw += std::log(priors_.omega.shape + nd);
  lt.lg_rdp1 += std::log(nd - md + 1.0);
  if (integral_alpha(alpha0_)) {
    const int k = static_cast<int>(alpha0_);
    double a = priors_.beta.shape + nd * alpha0_;
    for (int j = 0; j < k; ++j) {
      lt.lg_ab += std::log(a);
      a += 1.0;
    }
  } else {
    lt.lg_ab = m::log_gamma(priors_.beta.shape + (nd + 1.0) * alpha0_);
  }
}

std::pair<double, double> Vb2Estimator::solve_component(
    std::uint64_t n) const {
  const double nd = static_cast<double>(n);
  const double md = static_cast<double>(observed_);
  const double a_beta = priors_.beta.shape + nd * alpha0_;
  // Start: pretend every unobserved fault fails right at the horizon.
  const double warm =
      a_beta / (priors_.beta.rate + sum_t_ + std::max(0.0, nd - md) * horizon_ +
                (grouped_ ? md * 0.5 * horizon_ : 0.0) + 1e-300);
  std::optional<nhpp::GroupedMassTable> table;
  if (opt_.use_zeta_table) {
    table.emplace(alpha0_, grouped_ ? bounds_ : std::vector<double>{horizon_});
  }
  const auto r = process_component(n, warm, ladder_exact(n),
                                   table ? &*table : nullptr);
  return {r.zeta, r.xi};
}

double Vb2Estimator::component_objective(std::uint64_t n, double xi) const {
  const double nd = static_cast<double>(n);
  const double md = static_cast<double>(observed_);
  const double rd = nd - md;
  if (rd < 0.0 || !(xi > 0.0)) return -kInf;

  const ZetaEvaluator zeta_of{alpha0_, grouped_, md, horizon_, sum_t_,
                              &bounds_, &counts_};
  const nhpp::GammaFailureLaw law{alpha0_};
  const double zeta = zeta_of(xi, nd);

  const double a_w = priors_.omega.shape + nd;
  const double b_w = priors_.omega.rate + 1.0;
  const double a_b = priors_.beta.shape + nd * alpha0_;
  const double b_b = priors_.beta.rate + zeta;

  // log C(N): observed-data term at rate xi.
  double log_c;
  if (!grouped_) {
    log_c = md * (alpha0_ * std::log(xi) - m::log_gamma(alpha0_)) +
            (alpha0_ - 1.0) * sum_log_t_ - xi * sum_t_;
  } else {
    log_c = 0.0;
    double prev = 0.0;
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      const double x = static_cast<double>(counts_[i]);
      if (x > 0.0) {
        log_c += x * law.log_interval_mass(prev, bounds_[i], xi);
      }
      prev = bounds_[i];
    }
  }
  log_c += rd * law.log_survival(horizon_, xi) - m::log_gamma(rd + 1.0);

  return m::log_gamma(a_w) - a_w * std::log(b_w) + m::log_gamma(a_b) -
         a_b * std::log(b_b) + log_c - nd * alpha0_ * std::log(xi) +
         xi * zeta;
}

Vb2Estimator::ComponentResult Vb2Estimator::process_component(
    std::uint64_t n, double warm, const LadderTerms& lt,
    nhpp::GroupedMassTable* table) const {
  const double nd = static_cast<double>(n);
  const double md = static_cast<double>(observed_);
  const double a_beta = priors_.beta.shape + nd * alpha0_;

  ComponentResult out;

  // --- Solve the (zeta, xi) fixed point. ---
  if (!grouped_ && alpha0_ == 1.0 && opt_.use_closed_form) {
    out.xi = (priors_.beta.shape + md) /
             (priors_.beta.rate + sum_t_ + (nd - md) * horizon_);
    out.iterations = 1;
  } else {
    auto zeta_at = [&](double xi) {
      return table ? zeta_from_table(*table, xi, nd) : zeta_naive(xi, nd);
    };
    auto g = [&](double xi) {
      return a_beta / (priors_.beta.rate + zeta_at(xi));
    };
    if (opt_.use_newton) {
      auto f = [&](double xi) { return g(xi) - xi; };
      auto df = [&](double xi) {
        const double h = 1e-7 * std::max(xi, 1e-12);
        return (f(xi + h) - f(xi - h)) / (2.0 * h);
      };
      const auto r = m::newton(f, df, warm, warm * 1e-3, warm * 1e3,
                               opt_.fixed_point_tol, opt_.fixed_point_max_iter);
      out.xi = r.x;
      out.iterations = static_cast<std::uint64_t>(r.iterations);
    } else if (opt_.use_steffensen) {
      // Steffensen: one Aitken delta-squared extrapolation per pair of
      // substitution steps.  Convergence is declared by the same
      // |g(x) - x| criterion as m::fixed_point, so the accepted xi
      // satisfies the identical residual bound.
      double x = warm;
      std::uint64_t evals = 0;
      const auto limit =
          static_cast<std::uint64_t>(opt_.fixed_point_max_iter);
      while (evals + 2 <= limit) {
        const double x1 = g(x);
        ++evals;
        if (std::abs(x1 - x) <=
            opt_.fixed_point_tol * std::max(1.0, std::abs(x1))) {
          x = x1;
          break;
        }
        const double x2 = g(x1);
        ++evals;
        const double d2 = x2 - x1;
        const double denom = d2 - (x1 - x);
        x = x2;
        if (denom != 0.0) {
          const double cand = x2 - d2 * d2 / denom;
          if (std::isfinite(cand) && cand > 0.0) x = cand;
        }
      }
      out.xi = x;
      out.iterations = evals;
    } else {
      const auto r = m::fixed_point(g, warm, opt_.fixed_point_tol,
                                    opt_.fixed_point_max_iter);
      out.xi = r.x;
      out.iterations = static_cast<std::uint64_t>(r.iterations);
    }
  }

  // --- Score the component. ---
  if (!table) {
    // Legacy path: zeta for the caller, then the objective re-derives
    // zeta internally — exactly the pre-optimization cost and bits.
    out.zeta = zeta_naive(out.xi, nd);
    out.log_w = component_objective(n, out.xi);
    return out;
  }

  // Cached path: one table evaluation at the converged xi serves both
  // zeta and the observed-data log-masses of the objective.
  const double xi = out.xi;
  const double rd = nd - md;
  out.zeta = zeta_from_table(*table, xi, nd);
  if (!(xi > 0.0)) {
    out.log_w = -kInf;
    return out;
  }

  const double a_w = priors_.omega.shape + nd;
  const double b_w = priors_.omega.rate + 1.0;
  const double a_b = a_beta;
  const double b_b = priors_.beta.rate + out.zeta;

  double log_c;
  if (!grouped_) {
    log_c = md * alpha0_ * std::log(xi) + ft_logc_const_ - xi * sum_t_;
  } else {
    log_c = 0.0;
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      const double x = static_cast<double>(counts_[i]);
      if (x > 0.0) log_c += x * table->log_interval_mass(i);
    }
  }
  log_c += rd * table->log_tail_survival() - lt.lg_rdp1;

  out.log_w = lt.lg_aw - a_w * std::log(b_w) + lt.lg_ab -
              a_b * std::log(b_b) + log_c - nd * alpha0_ * std::log(xi) +
              xi * out.zeta;
  return out;
}

std::uint64_t Vb2Estimator::sweep_stage(std::uint64_t lo, std::uint64_t hi,
                                        std::uint64_t n_min,
                                        double& stage_warm,
                                        std::vector<double>& log_w,
                                        std::vector<double>& zetas,
                                        std::vector<double>& xis) const {
  auto make_table = [&]() -> std::optional<nhpp::GroupedMassTable> {
    if (!opt_.use_zeta_table) return std::nullopt;
    return nhpp::GroupedMassTable(
        alpha0_, grouped_ ? bounds_ : std::vector<double>{horizon_});
  };
  const std::uint64_t resync =
      std::max<std::uint64_t>(1, opt_.lgamma_resync);

  // Legacy strictly sequential chain (also the sweep_chunk == 0 mode).
  if (opt_.sweep_chunk == 0) {
    auto table = make_table();
    std::uint64_t iters = 0;
    LadderTerms lt = ladder_exact(lo);
    std::uint64_t since_exact = 0;
    double warm = stage_warm;
    for (std::uint64_t n = lo; n <= hi; ++n) {
      if (n > lo) {
        if (opt_.use_lgamma_recurrence && since_exact < resync) {
          ladder_advance(lt, n - 1);
          ++since_exact;
        } else {
          lt = ladder_exact(n);
          since_exact = 0;
        }
      }
      const auto r =
          process_component(n, warm, lt, table ? &*table : nullptr);
      const std::size_t k = static_cast<std::size_t>(n - n_min);
      log_w[k] = r.log_w;
      zetas[k] = r.zeta;
      xis[k] = r.xi;
      warm = r.xi;
      iters += r.iterations;
    }
    stage_warm = warm;
    return iters;
  }

  // Chunked sweep: decomposition and seeding depend only on the range
  // and sweep_chunk, never on the thread count.
  const std::uint64_t chunk = opt_.sweep_chunk;
  const std::size_t n_chunks =
      static_cast<std::size_t>((hi - lo) / chunk) + 1;

  // Pass 1: chunk heads, solved in order with a chained warm start.
  std::vector<double> head_xi(n_chunks);
  std::uint64_t head_iters = 0;
  {
    auto table = make_table();
    double warm = stage_warm;
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const std::uint64_t n = lo + static_cast<std::uint64_t>(c) * chunk;
      const auto r = process_component(n, warm, ladder_exact(n),
                                       table ? &*table : nullptr);
      const std::size_t k = static_cast<std::size_t>(n - n_min);
      log_w[k] = r.log_w;
      zetas[k] = r.zeta;
      xis[k] = r.xi;
      head_xi[c] = r.xi;
      warm = r.xi;
      head_iters += r.iterations;
    }
  }

  // Pass 2: chunk bodies in parallel, each warm-chained from its own
  // head; the lgamma ladder reseeds exactly at every head.
  std::vector<std::uint64_t> body_iters(n_chunks, 0);
  m::parallel_for(n_chunks, opt_.threads, [&](std::size_t c) {
    const std::uint64_t head = lo + static_cast<std::uint64_t>(c) * chunk;
    const std::uint64_t end = std::min(hi, head + chunk - 1);
    if (end == head) return;
    auto table = make_table();
    LadderTerms lt = ladder_exact(head);
    std::uint64_t since_exact = 0;
    double warm = head_xi[c];
    for (std::uint64_t n = head + 1; n <= end; ++n) {
      if (opt_.use_lgamma_recurrence && since_exact < resync) {
        ladder_advance(lt, n - 1);
        ++since_exact;
      } else {
        lt = ladder_exact(n);
        since_exact = 0;
      }
      const auto r =
          process_component(n, warm, lt, table ? &*table : nullptr);
      const std::size_t k = static_cast<std::size_t>(n - n_min);
      log_w[k] = r.log_w;
      zetas[k] = r.zeta;
      xis[k] = r.xi;
      warm = r.xi;
      body_iters[c] += r.iterations;
    }
  });

  std::uint64_t iters = head_iters;
  for (const std::uint64_t it : body_iters) iters += it;
  stage_warm = xis[static_cast<std::size_t>(hi - n_min)];
  return iters;
}

void Vb2Estimator::run(const Vb2Options& opt) {
  opt_ = opt;
  ft_logc_const_ = (alpha0_ - 1.0) * sum_log_t_ -
                   static_cast<double>(observed_) * m::log_gamma(alpha0_);

  const std::uint64_t n_min = observed_;
  std::uint64_t n_max = std::max<std::uint64_t>(opt.n_max, n_min + 1);

  std::vector<double> log_w;       // indexed by N - n_min
  std::vector<double> zetas, xis;  // per component
  std::uint64_t fp_iters = 0;

  const double a_beta_base = priors_.beta.shape;

  // Initial warm start: all mass at the horizon.
  double warm = (a_beta_base + static_cast<double>(n_min) * alpha0_) /
                (priors_.beta.rate +
                 (grouped_ ? static_cast<double>(observed_) * 0.5 * horizon_
                           : sum_t_) +
                 1.0e-300 + static_cast<double>(n_min) * 0.1);
  if (!(warm > 0.0) || !std::isfinite(warm)) warm = alpha0_ / horizon_;

  std::uint64_t doublings = 0;
  std::uint64_t n_next = n_min;
  for (;;) {
    log_w.resize(static_cast<std::size_t>(n_max - n_min) + 1);
    zetas.resize(log_w.size());
    xis.resize(log_w.size());
    fp_iters += sweep_stage(n_next, n_max, n_min, warm, log_w, zetas, xis);
    n_next = n_max + 1;

    // Step 3-4: normalize and test the tail mass.
    std::vector<double> w = log_w;
    const double log_z = m::log_sum_exp(w);
    const double p_tail = std::exp(log_w.back() - log_z);
    if (!opt.adapt_n_max || p_tail < opt.epsilon ||
        n_max >= opt.n_max_limit) {
      diag_.n_max_used = n_max;
      diag_.prob_at_n_max = p_tail;
      diag_.n_max_doublings = doublings;
      diag_.total_fixed_point_iterations = fp_iters;
      diag_.log_evidence_bound = log_z;
      break;
    }
    n_max = std::min(opt.n_max_limit, n_max * 2);
    ++doublings;
  }

  // Build the mixture, pruning numerically-zero components.
  std::vector<double> w = log_w;
  m::normalize_log_weights(w);
  std::vector<ProductGammaComponent> comps;
  comps.reserve(w.size());
  for (std::size_t k = 0; k < w.size(); ++k) {
    if (w[k] < 1e-15 && comps.size() > 2) continue;
    ProductGammaComponent c;
    c.n = n_min + static_cast<std::uint64_t>(k);
    c.weight = w[k];
    c.omega = {priors_.omega.shape + static_cast<double>(c.n),
               priors_.omega.rate + 1.0};
    c.beta = {priors_.beta.shape + static_cast<double>(c.n) * alpha0_,
              priors_.beta.rate + zetas[k]};
    comps.push_back(c);
  }
  posterior_.emplace(std::move(comps), alpha0_, horizon_);
}

}  // namespace vbsrm::core
