#include "core/vb2.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/roots.hpp"
#include "math/specfun.hpp"
#include "nhpp/model.hpp"

namespace vbsrm::core {

namespace m = vbsrm::math;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Vb2Estimator::Vb2Estimator(double alpha0, const data::FailureTimeData& d,
                           const bayes::PriorPair& priors,
                           const Vb2Options& opt)
    : alpha0_(alpha0),
      priors_(priors),
      grouped_(false),
      observed_(d.count()),
      horizon_(d.observation_end()),
      sum_t_(d.total_time()),
      sum_log_t_(d.total_log_time()) {
  if (!(alpha0 > 0.0)) throw std::invalid_argument("Vb2: alpha0 must be > 0");
  if (observed_ == 0) {
    throw std::invalid_argument(
        "Vb2: no failures observed — beta is unidentifiable (with flat "
        "priors the N=0 component would even have an improper beta "
        "posterior); collect data or encode knowledge in the priors");
  }
  run(opt);
}

Vb2Estimator::Vb2Estimator(double alpha0, const data::GroupedData& d,
                           const bayes::PriorPair& priors,
                           const Vb2Options& opt)
    : alpha0_(alpha0),
      priors_(priors),
      grouped_(true),
      observed_(d.total_failures()),
      horizon_(d.observation_end()),
      bounds_(d.boundaries()),
      counts_(d.counts()) {
  if (!(alpha0 > 0.0)) throw std::invalid_argument("Vb2: alpha0 must be > 0");
  if (observed_ == 0) {
    throw std::invalid_argument(
        "Vb2: no failures observed — beta is unidentifiable");
  }
  run(opt);
}

namespace {

/// zeta(xi, N): the E-step expectation E[sum_i T_i | N] at rate xi.
struct ZetaEvaluator {
  double alpha0;
  bool grouped;
  double observed;       // M as double
  double horizon;
  double sum_t;          // failure-time only
  const std::vector<double>* bounds;        // grouped only
  const std::vector<std::size_t>* counts;   // grouped only

  double operator()(double xi, double n) const {
    const nhpp::GammaFailureLaw law{alpha0};
    const double residual = n - observed;
    double z = 0.0;
    if (!grouped) {
      z = sum_t;
    } else {
      double prev = 0.0;
      for (std::size_t i = 0; i < bounds->size(); ++i) {
        const double x = static_cast<double>((*counts)[i]);
        if (x > 0.0) {
          z += x * law.truncated_mean(prev, (*bounds)[i], xi);
        }
        prev = (*bounds)[i];
      }
    }
    if (residual > 0.0) {
      z += residual * law.truncated_mean(horizon, kInf, xi);
    }
    return z;
  }
};

}  // namespace

std::pair<double, double> Vb2Estimator::solve_component(
    std::uint64_t n) const {
  const double nd = static_cast<double>(n);
  const double md = static_cast<double>(observed_);
  const ZetaEvaluator zeta_of{alpha0_, grouped_, md, horizon_, sum_t_,
                              &bounds_, &counts_};
  const double a_beta = priors_.beta.shape + nd * alpha0_;

  // Goel-Okumoto + failure-time data: closed form.
  if (!grouped_ && alpha0_ == 1.0) {
    const double xi = (priors_.beta.shape + md) /
                      (priors_.beta.rate + sum_t_ + (nd - md) * horizon_);
    return {zeta_of(xi, nd), xi};
  }
  auto g = [&](double xi) {
    return a_beta / (priors_.beta.rate + zeta_of(xi, nd));
  };
  // Start: pretend every unobserved fault fails right at the horizon.
  const double start =
      a_beta / (priors_.beta.rate + sum_t_ + std::max(0.0, nd - md) * horizon_ +
                (grouped_ ? md * 0.5 * horizon_ : 0.0) + 1e-300);
  const auto r = m::fixed_point(g, start, 1e-13, 500);
  return {zeta_of(r.x, nd), r.x};
}

double Vb2Estimator::component_objective(std::uint64_t n, double xi) const {
  const double nd = static_cast<double>(n);
  const double md = static_cast<double>(observed_);
  const double rd = nd - md;
  if (rd < 0.0 || !(xi > 0.0)) return -kInf;

  const ZetaEvaluator zeta_of{alpha0_, grouped_, md, horizon_, sum_t_,
                              &bounds_, &counts_};
  const nhpp::GammaFailureLaw law{alpha0_};
  const double zeta = zeta_of(xi, nd);

  const double a_w = priors_.omega.shape + nd;
  const double b_w = priors_.omega.rate + 1.0;
  const double a_b = priors_.beta.shape + nd * alpha0_;
  const double b_b = priors_.beta.rate + zeta;

  // log C(N): observed-data term at rate xi.
  double log_c;
  if (!grouped_) {
    log_c = md * (alpha0_ * std::log(xi) - m::log_gamma(alpha0_)) +
            (alpha0_ - 1.0) * sum_log_t_ - xi * sum_t_;
  } else {
    log_c = 0.0;
    double prev = 0.0;
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      const double x = static_cast<double>(counts_[i]);
      if (x > 0.0) {
        log_c += x * law.log_interval_mass(prev, bounds_[i], xi);
      }
      prev = bounds_[i];
    }
  }
  log_c += rd * law.log_survival(horizon_, xi) - m::log_gamma(rd + 1.0);

  return m::log_gamma(a_w) - a_w * std::log(b_w) + m::log_gamma(a_b) -
         a_b * std::log(b_b) + log_c - nd * alpha0_ * std::log(xi) +
         xi * zeta;
}

void Vb2Estimator::run(const Vb2Options& opt) {
  const std::uint64_t n_min = observed_;
  std::uint64_t n_max = std::max<std::uint64_t>(opt.n_max, n_min + 1);

  std::vector<double> log_w;       // indexed by N - n_min
  std::vector<double> zetas, xis;  // per component
  std::uint64_t fp_iters = 0;

  const ZetaEvaluator zeta_of{alpha0_, grouped_,
                              static_cast<double>(observed_), horizon_,
                              sum_t_, &bounds_, &counts_};
  const double a_beta_base = priors_.beta.shape;

  auto solve_with_warm_start = [&](std::uint64_t n,
                                   double warm) -> std::pair<double, double> {
    const double nd = static_cast<double>(n);
    const double md = static_cast<double>(observed_);
    const double a_beta = a_beta_base + nd * alpha0_;
    if (!grouped_ && alpha0_ == 1.0 && opt.use_closed_form) {
      const double xi = (priors_.beta.shape + md) /
                        (priors_.beta.rate + sum_t_ + (nd - md) * horizon_);
      ++fp_iters;
      return {zeta_of(xi, nd), xi};
    }
    auto g = [&](double xi) {
      return a_beta / (priors_.beta.rate + zeta_of(xi, nd));
    };
    if (opt.use_newton) {
      auto f = [&](double xi) { return g(xi) - xi; };
      auto df = [&](double xi) {
        const double h = 1e-7 * std::max(xi, 1e-12);
        return (f(xi + h) - f(xi - h)) / (2.0 * h);
      };
      const auto r = m::newton(f, df, warm, warm * 1e-3, warm * 1e3,
                               opt.fixed_point_tol, opt.fixed_point_max_iter);
      fp_iters += static_cast<std::uint64_t>(r.iterations);
      return {zeta_of(r.x, nd), r.x};
    }
    const auto r = m::fixed_point(g, warm, opt.fixed_point_tol,
                                  opt.fixed_point_max_iter);
    fp_iters += static_cast<std::uint64_t>(r.iterations);
    return {zeta_of(r.x, nd), r.x};
  };

  // Initial warm start: all mass at the horizon.
  double warm = (a_beta_base + static_cast<double>(n_min) * alpha0_) /
                (priors_.beta.rate +
                 (grouped_ ? static_cast<double>(observed_) * 0.5 * horizon_
                           : sum_t_) +
                 1.0e-300 + static_cast<double>(n_min) * 0.1);
  if (!(warm > 0.0) || !std::isfinite(warm)) warm = alpha0_ / horizon_;

  std::uint64_t doublings = 0;
  std::uint64_t n_next = n_min;
  for (;;) {
    for (std::uint64_t n = n_next; n <= n_max; ++n) {
      const auto [zeta, xi] = solve_with_warm_start(n, warm);
      warm = xi;
      zetas.push_back(zeta);
      xis.push_back(xi);
      log_w.push_back(component_objective(n, xi));
    }
    n_next = n_max + 1;

    // Step 3-4: normalize and test the tail mass.
    std::vector<double> w = log_w;
    const double log_z = m::log_sum_exp(w);
    const double p_tail = std::exp(log_w.back() - log_z);
    if (!opt.adapt_n_max || p_tail < opt.epsilon ||
        n_max >= opt.n_max_limit) {
      diag_.n_max_used = n_max;
      diag_.prob_at_n_max = p_tail;
      diag_.n_max_doublings = doublings;
      diag_.total_fixed_point_iterations = fp_iters;
      diag_.log_evidence_bound = log_z;
      break;
    }
    n_max = std::min(opt.n_max_limit, n_max * 2);
    ++doublings;
  }

  // Build the mixture, pruning numerically-zero components.
  std::vector<double> w = log_w;
  m::normalize_log_weights(w);
  std::vector<ProductGammaComponent> comps;
  comps.reserve(w.size());
  for (std::size_t k = 0; k < w.size(); ++k) {
    if (w[k] < 1e-15 && comps.size() > 2) continue;
    ProductGammaComponent c;
    c.n = n_min + static_cast<std::uint64_t>(k);
    c.weight = w[k];
    c.omega = {priors_.omega.shape + static_cast<double>(c.n),
               priors_.omega.rate + 1.0};
    c.beta = {priors_.beta.shape + static_cast<double>(c.n) * alpha0_,
              priors_.beta.rate + zetas[k]};
    comps.push_back(c);
  }
  posterior_.emplace(std::move(comps), alpha0_, horizon_);
}

}  // namespace vbsrm::core
