#include "core/vb1.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/specfun.hpp"
#include "nhpp/model.hpp"

namespace vbsrm::core {

namespace m = vbsrm::math;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Vb1Estimator::Vb1Estimator(double alpha0, const data::FailureTimeData& d,
                           const bayes::PriorPair& priors,
                           const Vb1Options& opt) {
  run(alpha0, priors, /*grouped=*/false, d.count(), d.observation_end(),
      d.total_time(), {}, {}, opt);
}

Vb1Estimator::Vb1Estimator(double alpha0, const data::GroupedData& d,
                           const bayes::PriorPair& priors,
                           const Vb1Options& opt) {
  run(alpha0, priors, /*grouped=*/true, d.total_failures(),
      d.observation_end(), 0.0, d.boundaries(), d.counts(), opt);
}

void Vb1Estimator::run(double alpha0, const bayes::PriorPair& priors,
                       bool grouped, std::uint64_t observed, double horizon,
                       double sum_t, const std::vector<double>& bounds,
                       const std::vector<std::size_t>& counts,
                       const Vb1Options& opt) {
  if (!(alpha0 > 0.0)) throw std::invalid_argument("Vb1: alpha0 must be > 0");
  if (observed == 0) {
    throw std::invalid_argument(
        "Vb1: no failures observed — beta is unidentifiable");
  }
  const nhpp::GammaFailureLaw law{alpha0};
  const double md = static_cast<double>(observed);

  // Observed-time mass at a given rate xi: exact sum for failure-time
  // data (independent of xi), truncated means for grouped data.
  auto observed_time = [&](double xi) {
    if (!grouped) return sum_t;
    double s = 0.0;
    double prev = 0.0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      const double x = static_cast<double>(counts[i]);
      if (x > 0.0) s += x * law.truncated_mean(prev, bounds[i], xi);
      prev = bounds[i];
    }
    return s;
  };

  // Initialization: no residual faults, times anchored at the horizon.
  double e_n = md > 0.0 ? md : 1.0;
  double xi = alpha0 / (0.6 * horizon);

  diag_ = {};
  for (int it = 1; it <= opt.max_iterations; ++it) {
    // q(mu) given current E[N], E[sum T].
    const double e_sum_t =
        observed_time(xi) + (e_n - md) * law.truncated_mean(horizon, kInf, xi);
    const double a_w = priors.omega.shape + e_n;
    const double b_w = priors.omega.rate + 1.0;
    const double a_b = priors.beta.shape + alpha0 * e_n;
    const double b_b = priors.beta.rate + e_sum_t;

    // q(U) given q(mu).
    const double e_log_omega = m::digamma(a_w) - std::log(b_w);
    const double e_log_beta = m::digamma(a_b) - std::log(b_b);
    const double xi_new = a_b / b_b;
    const double log_lambda = e_log_omega +
                              alpha0 * (e_log_beta - std::log(xi_new)) +
                              law.log_survival(horizon, xi_new);
    const double lambda = std::exp(log_lambda);
    const double e_n_new = md + lambda;

    const double delta =
        std::max(m::rel_diff(e_n_new, e_n), m::rel_diff(xi_new, xi));
    e_n = e_n_new;
    xi = xi_new;
    diag_.iterations = it;
    if (delta < opt.tol) {
      diag_.converged = true;
      break;
    }
  }
  diag_.expected_total_faults = e_n;

  const double e_sum_t =
      observed_time(xi) + (e_n - md) * law.truncated_mean(horizon, kInf, xi);
  ProductGammaComponent c;
  c.n = static_cast<std::uint64_t>(std::llround(e_n));
  c.weight = 1.0;
  c.omega = {priors.omega.shape + e_n, priors.omega.rate + 1.0};
  c.beta = {priors.beta.shape + alpha0 * e_n, priors.beta.rate + e_sum_t};
  posterior_.emplace(std::vector<ProductGammaComponent>{c}, alpha0, horizon);
}

}  // namespace vbsrm::core
