// The analytically tractable posterior family produced by the VB
// algorithms:
//
//   Pv(omega, beta) = sum_N Pv(N) * Gamma(omega; a_w(N), b_w(N))
//                              * Gamma(beta;  a_b(N), b_b(N)),
//
// a finite mixture over the total fault count N of products of
// independent gamma densities (paper Sec. 5: Pv(mu) = sum_N
// Pv(mu|N) Pv(N)).  VB1's fully factorized posterior is the
// single-component special case.
//
// Everything the paper reports is computed in closed form or by 1-D
// quadrature against this object: joint moments including Cov(omega,
// beta) (omega and beta are independent only *conditionally* on N —
// the mixture carries the correlation VB1 loses), marginal quantiles,
// joint density for contour plots, posterior sampling, and software
// reliability point/interval estimates via Eqs. (31)-(32) with the
// omega-integral done analytically:
//   E[e^{-omega h} | N, beta] = (b_w / (b_w + h))^{a_w}.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "bayes/summary.hpp"
#include "random/rng.hpp"

namespace vbsrm::core {

/// Gamma(shape, rate) marginal with the operations the mixture needs.
struct GammaParams {
  double shape = 1.0;
  double rate = 1.0;

  double mean() const { return shape / rate; }
  double variance() const { return shape / (rate * rate); }
  double cdf(double x) const;
  double quantile(double p) const;
  double log_pdf(double x) const;
};

/// One mixture component: the conditional posterior given N.
struct ProductGammaComponent {
  std::uint64_t n = 0;      // total fault count this component conditions on
  double weight = 0.0;      // Pv(N), normalized over the mixture
  GammaParams omega;        // Pv(omega | N)
  GammaParams beta;         // Pv(beta | N)
};

class GammaMixturePosterior {
 public:
  /// `alpha0` and `horizon` (t_e or s_k) are retained for reliability
  /// functionals.  Weights need not be normalized on input.
  GammaMixturePosterior(std::vector<ProductGammaComponent> components,
                        double alpha0, double horizon);
  ~GammaMixturePosterior();
  GammaMixturePosterior(GammaMixturePosterior&&) noexcept;
  GammaMixturePosterior& operator=(GammaMixturePosterior&&) noexcept;

  const std::vector<ProductGammaComponent>& components() const {
    return components_;
  }
  double alpha0() const { return alpha0_; }
  double horizon() const { return horizon_; }

  bayes::PosteriorSummary summary() const;

  /// Posterior of the total fault count: mean and P(N = n) accessors.
  double mean_total_faults() const;
  double prob_total_faults(std::uint64_t n) const;

  double cdf_omega(double x) const;
  double cdf_beta(double x) const;
  double quantile_omega(double p) const;
  double quantile_beta(double p) const;
  bayes::CredibleInterval interval_omega(double level) const;
  bayes::CredibleInterval interval_beta(double level) const;

  double marginal_pdf_omega(double x) const;
  double marginal_pdf_beta(double x) const;
  /// Joint density (for the paper's Figure 1 contours).
  double joint_density(double omega, double beta) const;

  /// Draw (omega, beta) from the mixture.
  std::pair<double, double> sample(random::Rng& rng) const;

  /// Serialize to CSV ("# alpha0,horizon" header line, then one
  /// component per line: n,weight,omega_shape,omega_rate,beta_shape,
  /// beta_rate) and parse it back.  Lets a fitted posterior be stored
  /// and reloaded without refitting.
  std::string to_csv() const;
  static GammaMixturePosterior from_csv(std::istream& in);

  /// Posterior-mean software reliability R(horizon + u | horizon).
  double reliability_point(double u) const;
  /// P(R <= x) over the mixture.
  double reliability_cdf(double x, double u) const;
  double reliability_quantile(double p, double u) const;
  bayes::ReliabilityEstimate reliability(double u, double level) const;

  /// Hot-path controls for the reliability functionals (see DESIGN.md
  /// "Performance architecture").  The cache precomputes, per mixture
  /// component above the functional weight floor, the beta-quadrature
  /// abscissae and pdf-weight coefficients shared by every reliability
  /// functional, turning each evaluation into cached dot products and
  /// letting a quantile search reuse one interval-mass table across all
  /// of its CDF evaluations.  Disabling it restores the pre-cache
  /// evaluation paths (used for perf baselines and equivalence tests);
  /// results agree to quadrature-tolerance level (<= ~1e-10) either way.
  void set_functional_cache(bool enabled) { use_functional_cache_ = enabled; }
  /// Worker threads for the per-component functional reduction
  /// (0 = hardware concurrency).  The reduction order is fixed, so the
  /// thread count never changes results.
  void set_functional_threads(unsigned threads) {
    functional_threads_ = threads;
  }

 private:
  /// Integrate g(beta) against one component's beta marginal.
  template <typename F>
  double beta_integral(const ProductGammaComponent& c, F&& g) const;

  // Lazily built per-component quadrature cache (definitions in the
  // .cpp): nodes, pdf-weight coefficients, and omega parameters for
  // every component above the functional weight floor.
  struct FunctionalCache;
  struct CacheSlot;
  struct HTable;
  const FunctionalCache& functional_cache() const;
  /// Per-node h = Lambda-increment table for one mission length u,
  /// indexed [cached component][node], plus the derived b_w/h factors
  /// the CDF integrand needs; shared across the CDF evaluations of a
  /// quantile search and the point estimate.
  HTable make_h_table(const FunctionalCache& fc, double u) const;
  double reliability_point_cached(const FunctionalCache& fc,
                                  const HTable& h) const;
  double reliability_cdf_cached(double x, const FunctionalCache& fc,
                                const HTable& h) const;
  double reliability_quantile_cached(double p, const FunctionalCache& fc,
                                     const HTable& h) const;

  std::vector<ProductGammaComponent> components_;
  double alpha0_;
  double horizon_;
  bool use_functional_cache_ = true;
  unsigned functional_threads_ = 1;
  std::vector<double> cum_weights_;  // prefix sums for sample()
  mutable std::unique_ptr<CacheSlot> cache_slot_;
};

}  // namespace vbsrm::core
