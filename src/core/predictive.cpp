#include "core/predictive.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/quadrature.hpp"
#include "math/specfun.hpp"
#include "nhpp/model.hpp"

namespace vbsrm::core {

namespace m = vbsrm::math;

PredictiveDistribution::PredictiveDistribution(
    const GammaMixturePosterior& posterior, double u)
    : posterior_(posterior), u_(u) {
  if (!(u > 0.0)) {
    throw std::invalid_argument("PredictiveDistribution: u must be > 0");
  }
  const nhpp::GammaFailureLaw law{posterior.alpha0()};
  const double te = posterior.horizon();
  static const m::GaussLegendre rule(24);
  constexpr int kPanels = 8;

  for (const auto& c : posterior.components()) {
    ComponentQuad q;
    q.weight = c.weight;
    q.a = c.omega.shape;
    q.b = c.omega.rate;
    const double lo = c.beta.quantile(1e-10);
    const double hi = c.beta.quantile(1.0 - 1e-10);
    const double panel = (hi - lo) / kPanels;
    for (int p = 0; p < kPanels; ++p) {
      const double center = lo + (p + 0.5) * panel;
      const double half = 0.5 * panel;
      for (int i = 0; i < rule.size(); ++i) {
        const double beta = center + half * rule.nodes()[i];
        const double wq =
            half * rule.weights()[i] * std::exp(c.beta.log_pdf(beta));
        q.wq.push_back(wq);
        q.h.push_back(law.interval_mass(te, te + u, beta));
      }
    }
    quads_.push_back(std::move(q));
  }
}

double PredictiveDistribution::pmf(std::uint64_t k) const {
  const double kd = static_cast<double>(k);
  double s = 0.0;
  for (const auto& q : quads_) {
    double comp = 0.0;
    for (std::size_t i = 0; i < q.wq.size(); ++i) {
      const double h = q.h[i];
      if (h <= 0.0) {
        if (k == 0) comp += q.wq[i];
        continue;
      }
      // Negative binomial: C(a+k-1, k) (h/(b+h))^k (b/(b+h))^a.
      const double log_p = m::log_gamma(q.a + kd) - m::log_gamma(q.a) -
                           m::log_gamma(kd + 1.0) +
                           kd * (std::log(h) - std::log(q.b + h)) +
                           q.a * (std::log(q.b) - std::log(q.b + h));
      comp += q.wq[i] * std::exp(log_p);
    }
    s += q.weight * comp;
  }
  return s;
}

double PredictiveDistribution::cdf(std::uint64_t k) const {
  double s = 0.0;
  for (std::uint64_t i = 0; i <= k; ++i) s += pmf(i);
  return std::min(s, 1.0);
}

double PredictiveDistribution::mean() const {
  // E[K] = E[omega] * E_beta-ish; exactly: sum_N w_N E[omega|N] *
  // integral h(beta) dPv(beta|N).
  double s = 0.0;
  for (const auto& q : quads_) {
    double eh = 0.0;
    for (std::size_t i = 0; i < q.wq.size(); ++i) eh += q.wq[i] * q.h[i];
    s += q.weight * (q.a / q.b) * eh;
  }
  return s;
}

double PredictiveDistribution::variance() const {
  // Var(K) = E[Var(K|omega,beta)] + Var(E[K|omega,beta])
  //        = E[omega h] + Var(omega h); all moments via the cached
  // quadratures (omega moments analytic given N).
  double e1 = 0.0, e2 = 0.0;
  for (const auto& q : quads_) {
    const double eo = q.a / q.b;
    const double eo2 = q.a * (q.a + 1.0) / (q.b * q.b);
    double eh = 0.0, eh2 = 0.0;
    for (std::size_t i = 0; i < q.wq.size(); ++i) {
      eh += q.wq[i] * q.h[i];
      eh2 += q.wq[i] * q.h[i] * q.h[i];
    }
    e1 += q.weight * eo * eh;
    e2 += q.weight * eo2 * eh2;
  }
  return e1 + e2 - e1 * e1;
}

std::uint64_t PredictiveDistribution::quantile(double p) const {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("predictive quantile: p in (0,1)");
  }
  double acc = 0.0;
  // Upper bound: mean + 20 sd + 10 is far beyond any sensible quantile.
  const std::uint64_t hard_cap =
      static_cast<std::uint64_t>(mean() + 20.0 * std::sqrt(variance()) + 10.0);
  for (std::uint64_t k = 0; k <= hard_cap; ++k) {
    acc += pmf(k);
    if (acc >= p) return k;
  }
  return hard_cap;
}

std::pair<std::uint64_t, std::uint64_t> PredictiveDistribution::interval(
    double level) const {
  const double a = 0.5 * (1.0 - level);
  return {quantile(a), quantile(1.0 - a)};
}

ResidualFaultDistribution ResidualFaultDistribution::from_posterior(
    const GammaMixturePosterior& posterior) {
  ResidualFaultDistribution out;
  std::uint64_t n_min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t n_max = 0;
  for (const auto& c : posterior.components()) {
    n_min = std::min(n_min, c.n);
    n_max = std::max(n_max, c.n);
  }
  out.observed = n_min;
  out.pmf.assign(n_max - n_min + 1, 0.0);
  for (const auto& c : posterior.components()) {
    out.pmf[c.n - n_min] += c.weight;
  }
  return out;
}

double ResidualFaultDistribution::mean() const {
  double s = 0.0;
  for (std::size_t r = 0; r < pmf.size(); ++r) {
    s += pmf[r] * static_cast<double>(r);
  }
  return s;
}

double ResidualFaultDistribution::prob_at_most(std::uint64_t r) const {
  double s = 0.0;
  for (std::size_t i = 0; i < pmf.size() && i <= r; ++i) s += pmf[i];
  return std::min(s, 1.0);
}

std::uint64_t ResidualFaultDistribution::quantile(double p) const {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("residual quantile: p in (0,1)");
  }
  double acc = 0.0;
  for (std::size_t r = 0; r < pmf.size(); ++r) {
    acc += pmf[r];
    if (acc >= p) return r;
  }
  return pmf.size() - 1;
}

}  // namespace vbsrm::core
