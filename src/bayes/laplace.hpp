// LAPL — Laplace approximation (paper Sec. 4.2): the joint posterior is
// approximated by a bivariate normal centered at the MAP estimate with
// covariance equal to the inverse negative Hessian of the log posterior
// at the MAP.  With flat priors this reduces to the classical
// MLE/observed-information confidence intervals (Yamada & Osaki 1985).
//
// Reliability inference uses the plug-in MAP point estimate and the
// delta method for the interval; as the paper shows, the symmetric
// normal approximation can produce bounds outside [0, 1] — these are
// reported as-is and flagged by `reliability_estimate_out_of_range`.
#pragma once

#include "bayes/posterior.hpp"
#include "bayes/summary.hpp"
#include "math/linalg.hpp"

namespace vbsrm::bayes {

struct LaplaceOptions {
  std::pair<double, double> start = {0.0, 0.0};  // {0,0} = auto heuristic
  int max_iterations = 4000;
};

class LaplaceEstimator {
 public:
  LaplaceEstimator(LogPosterior posterior, LaplaceOptions opt = {});

  double map_omega() const { return map_omega_; }
  double map_beta() const { return map_beta_; }
  const math::Matrix& covariance() const { return cov_; }

  /// Moments of the approximating normal (mean == MAP).
  PosteriorSummary summary() const;

  CredibleInterval interval_omega(double level) const;
  CredibleInterval interval_beta(double level) const;

  /// Normal joint density of the approximation (for contour plots).
  double joint_density(double omega, double beta) const;

  /// Plug-in reliability with delta-method interval; bounds may fall
  /// outside [0, 1] (the approximation's known defect).
  ReliabilityEstimate reliability(double u, double level) const;
  static bool reliability_estimate_out_of_range(const ReliabilityEstimate& r);

  /// Laplace approximation of the log model evidence log P(D):
  /// log post(MAP) + (d/2) log 2*pi + (1/2) log det(Cov).  The grouped-
  /// data posterior drops the parameter-independent -sum log x_i! terms,
  /// so evidences are comparable (Bayes factors valid) across models
  /// evaluated on the *same* data with the same LogPosterior convention.
  double log_marginal_likelihood() const;

 private:
  LogPosterior posterior_;
  double map_omega_ = 0.0;
  double map_beta_ = 0.0;
  math::Matrix cov_;
};

}  // namespace vbsrm::bayes
