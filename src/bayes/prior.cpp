#include "bayes/prior.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "math/specfun.hpp"

namespace vbsrm::bayes {

GammaPrior GammaPrior::from_mean_sd(double mean, double sd) {
  if (!(mean > 0.0) || !(sd > 0.0)) {
    throw std::invalid_argument("GammaPrior::from_mean_sd: need mean, sd > 0");
  }
  const double shape = (mean / sd) * (mean / sd);
  return {shape, shape / mean};
}

double GammaPrior::mean() const {
  if (is_flat()) return std::numeric_limits<double>::infinity();
  return shape / rate;
}

double GammaPrior::sd() const {
  if (is_flat()) return std::numeric_limits<double>::infinity();
  return std::sqrt(shape) / rate;
}

double GammaPrior::log_density(double x) const {
  if (!(x > 0.0)) return -std::numeric_limits<double>::infinity();
  if (is_flat()) return 0.0;
  return shape * std::log(rate) + (shape - 1.0) * std::log(x) - rate * x -
         math::log_gamma(shape);
}

std::string GammaPrior::describe() const {
  std::ostringstream os;
  if (is_flat()) {
    os << "flat";
  } else {
    os << "Gamma(shape=" << shape << ", rate=" << rate << "; mean=" << mean()
       << ", sd=" << sd() << ")";
  }
  return os.str();
}

}  // namespace vbsrm::bayes
