// Profile-posterior interval estimation — the classical remedy for the
// Laplace approximation's symmetric-interval defect (and the direction
// the paper's "analytical expansion techniques" future work points at).
//
// For the parameter omega the profile log posterior is
//   p(omega) = max_beta log P(omega, beta | D),
// and the two-sided level-L interval consists of the omega with
//   2 * (p(omega_hat) - p(omega)) <= chi^2_1 quantile(L),
// found by bracketed root solving on both sides of the mode (same for
// beta).  Unlike LAPL the endpoints follow the posterior's skew; unlike
// NINT no integration box is needed.
#pragma once

#include "bayes/posterior.hpp"
#include "bayes/summary.hpp"

namespace vbsrm::bayes {

class ProfileIntervalEstimator {
 public:
  explicit ProfileIntervalEstimator(LogPosterior posterior);

  double mode_omega() const { return mode_omega_; }
  double mode_beta() const { return mode_beta_; }

  /// Profile log posterior of omega (maximized over beta), relative to
  /// the joint mode (0 at the mode, negative elsewhere).
  double profile_omega(double omega) const;
  double profile_beta(double beta) const;

  CredibleInterval interval_omega(double level) const;
  CredibleInterval interval_beta(double level) const;

 private:
  double maximize_over_beta(double omega) const;
  double maximize_over_omega(double beta) const;

  LogPosterior posterior_;
  double mode_omega_ = 0.0;
  double mode_beta_ = 0.0;
  double peak_ = 0.0;
};

}  // namespace vbsrm::bayes
