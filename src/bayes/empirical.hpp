// Empirical Bayes: estimate the gamma prior hyperparameters from
// historical projects.  The paper's "Info" scenario assumes a good
// guess for the priors exists; this module manufactures that guess from
// data of *previous releases/projects* by maximizing the summed Laplace
// model evidence
//   sum_k log P(D_k | m_w, phi_w, m_b, phi_b)
// over the four hyperparameters (type-II maximum likelihood).
#pragma once

#include <vector>

#include "bayes/prior.hpp"
#include "data/failure_data.hpp"

namespace vbsrm::bayes {

struct EmpiricalBayesOptions {
  /// Starting guess; default derives moment-matched values from the
  /// projects' individual MLE fits.
  PriorPair start{};
  bool use_default_start = true;
  int max_iterations = 4000;
  /// Floor on the learned priors' coefficient of variation (sd/mean).
  /// Type-II ML is known to collapse the hyper-variance to zero when
  /// the between-project spread is comparable to the within-project
  /// uncertainty; the floor (gamma shape <= 1/min_cv^2) keeps the
  /// learned prior honest for the *next* project.
  double min_cv = 0.2;
};

struct EmpiricalBayesResult {
  PriorPair priors;
  double log_marginal = 0.0;  // summed evidence at the optimum
  bool converged = false;
};

/// Fit hyperpriors to a set of failure-time projects sharing alpha0.
/// Needs >= 2 projects (one project cannot identify 4 hyperparameters).
EmpiricalBayesResult empirical_bayes_priors(
    double alpha0, const std::vector<data::FailureTimeData>& projects,
    const EmpiricalBayesOptions& opt = {});

/// Summed Laplace evidence of the projects under the given priors
/// (exposed for tests and custom optimizers).
double total_log_marginal(double alpha0,
                          const std::vector<data::FailureTimeData>& projects,
                          const PriorPair& priors);

}  // namespace vbsrm::bayes
