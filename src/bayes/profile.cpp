#include "bayes/profile.hpp"

#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

#include "math/optimize.hpp"
#include "math/roots.hpp"
#include "math/specfun.hpp"

namespace vbsrm::bayes {

namespace m = vbsrm::math;

ProfileIntervalEstimator::ProfileIntervalEstimator(LogPosterior posterior)
    : posterior_(std::move(posterior)) {
  const double o0 = 1.3 * static_cast<double>(posterior_.failures()) + 1.0;
  const double b0 = posterior_.alpha0() / (0.6 * posterior_.horizon());
  auto nlp = [&](const std::vector<double>& p) {
    const double v = posterior_(std::exp(p[0]), std::exp(p[1]));
    return std::isfinite(v) ? -v : 1e300;
  };
  m::NelderMeadOptions nm;
  nm.restarts = 2;
  const auto sol = m::nelder_mead(nlp, {std::log(o0), std::log(b0)}, nm);
  mode_omega_ = std::exp(sol.x[0]);
  mode_beta_ = std::exp(sol.x[1]);
  peak_ = posterior_(mode_omega_, mode_beta_);
}

double ProfileIntervalEstimator::maximize_over_beta(double omega) const {
  // Unimodal in log beta around the joint mode: golden section over a
  // generous window, then return the achieved maximum.
  const double center = std::log(mode_beta_);
  auto neg = [&](double lb) {
    const double v = posterior_(omega, std::exp(lb));
    return std::isfinite(v) ? -v : 1e300;
  };
  const auto r = m::golden_section(neg, center - 8.0, center + 8.0, 1e-11);
  return -r.f;
}

double ProfileIntervalEstimator::maximize_over_omega(double beta) const {
  // The conditional in omega is gamma-shaped: the prior contributes
  // (shape-1) log w - rate*w, the likelihood M log w - w D(beta), so the
  // maximizer is (shape - 1 + M) / (rate + D(beta)) when positive.
  const auto& pw = posterior_.priors().omega;
  const double shape = pw.is_flat() ? 1.0 : pw.shape;
  const double rate = pw.is_flat() ? 0.0 : pw.rate;
  const double num = shape - 1.0 + static_cast<double>(posterior_.failures());
  const double den = rate + posterior_.exposure(beta);
  if (num <= 0.0 || den <= 0.0) {
    return posterior_(1e-12, beta);  // degenerate: mass at omega -> 0
  }
  return posterior_(num / den, beta);
}

double ProfileIntervalEstimator::profile_omega(double omega) const {
  if (!(omega > 0.0)) return -std::numeric_limits<double>::infinity();
  return maximize_over_beta(omega) - peak_;
}

double ProfileIntervalEstimator::profile_beta(double beta) const {
  if (!(beta > 0.0)) return -std::numeric_limits<double>::infinity();
  return maximize_over_omega(beta) - peak_;
}

namespace {

/// Roots of profile(x) = threshold on both sides of the mode, searched
/// multiplicatively.
CredibleInterval likelihood_ratio_interval(
    double mode, double threshold, double level,
    const std::function<double(double)>& profile) {
  auto f = [&](double x) { return profile(x) - threshold; };
  // Left endpoint.
  double lo = mode;
  int guard = 0;
  while (f(lo) > 0.0 && guard++ < 200) lo *= 0.8;
  const auto left = m::brent(f, lo, mode, 1e-11, 300);
  // Right endpoint.
  double hi = mode;
  guard = 0;
  while (f(hi) > 0.0 && guard++ < 200) hi *= 1.25;
  const auto right = m::brent(f, mode, hi, 1e-11, 300);
  return {left.x, right.x, level};
}

}  // namespace

CredibleInterval ProfileIntervalEstimator::interval_omega(
    double level) const {
  if (!(level > 0.0) || !(level < 1.0)) {
    throw std::invalid_argument("interval_omega: level in (0,1)");
  }
  const double z = m::normal_quantile(0.5 + 0.5 * level);
  const double threshold = -0.5 * z * z;
  return likelihood_ratio_interval(mode_omega_, threshold, level,
                                   [&](double w) { return profile_omega(w); });
}

CredibleInterval ProfileIntervalEstimator::interval_beta(double level) const {
  if (!(level > 0.0) || !(level < 1.0)) {
    throw std::invalid_argument("interval_beta: level in (0,1)");
  }
  const double z = m::normal_quantile(0.5 + 0.5 * level);
  const double threshold = -0.5 * z * z;
  return likelihood_ratio_interval(mode_beta_, threshold, level,
                                   [&](double b) { return profile_beta(b); });
}

}  // namespace vbsrm::bayes
