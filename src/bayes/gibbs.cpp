#include "bayes/gibbs.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "random/distributions.hpp"

namespace vbsrm::bayes {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct GibbsState {
  double omega;
  double beta;
};

GibbsState initial_state(double alpha0, std::size_t failures,
                         double horizon) {
  return {1.5 * static_cast<double>(failures) + 1.0,
          alpha0 / (0.6 * horizon)};
}

}  // namespace

ChainResult gibbs_failure_times(double alpha0, const data::FailureTimeData& d,
                                const PriorPair& priors,
                                const McmcOptions& opt) {
  if (d.count() == 0) {
    throw std::invalid_argument("gibbs_failure_times: no failures");
  }
  const nhpp::GammaFailureLaw law{alpha0};
  const double te = d.observation_end();
  const double m = static_cast<double>(d.count());
  const double sum_t = d.total_time();
  const bool exponential = (alpha0 == 1.0);

  random::Rng rng(opt.seed);
  GibbsState s = initial_state(alpha0, d.count(), te);

  const std::size_t total_iter = opt.burn_in + opt.thin * opt.samples;
  std::vector<double> omega_chain, beta_chain;
  omega_chain.reserve(opt.samples);
  beta_chain.reserve(opt.samples);
  std::size_t variates = 0;

  for (std::size_t it = 0; it < total_iter; ++it) {
    // 1) residual fault count.
    const double mean_r = s.omega * law.survival(te, s.beta);
    const auto r = random::sample_poisson(rng, mean_r);
    ++variates;
    const double rd = static_cast<double>(r);

    // 2) beta.
    if (exponential) {
      // Residual lifetimes marginalized: only the e^{-beta t_e r} factor
      // survives, giving a clean conjugate update.
      s.beta = random::sample_gamma(rng, priors.beta.shape + m,
                                    priors.beta.rate + sum_t + rd * te);
      ++variates;
    } else {
      // Augment the r unobserved failure times from the right-truncated
      // law, then use full conjugacy with all N = m + r times.
      double sum_all = sum_t;
      for (std::uint64_t k = 0; k < r; ++k) {
        sum_all += random::sample_truncated_gamma(rng, alpha0, s.beta, te,
                                                  kInf);
      }
      variates += static_cast<std::size_t>(r);
      s.beta = random::sample_gamma(rng, priors.beta.shape + (m + rd) * alpha0,
                                    priors.beta.rate + sum_all);
      ++variates;
    }

    // 3) omega.
    s.omega = random::sample_gamma(rng, priors.omega.shape + m + rd,
                                   priors.omega.rate + 1.0);
    ++variates;

    if (it >= opt.burn_in && (it - opt.burn_in) % opt.thin == opt.thin - 1) {
      omega_chain.push_back(s.omega);
      beta_chain.push_back(s.beta);
      if (omega_chain.size() == opt.samples) break;
    }
  }
  return ChainResult(std::move(omega_chain), std::move(beta_chain), alpha0,
                     te, variates);
}

ChainResult gibbs_grouped(double alpha0, const data::GroupedData& d,
                          const PriorPair& priors, const McmcOptions& opt) {
  if (d.total_failures() == 0) {
    throw std::invalid_argument("gibbs_grouped: no failures");
  }
  const nhpp::GammaFailureLaw law{alpha0};
  const double sk = d.observation_end();
  const double m = static_cast<double>(d.total_failures());

  random::Rng rng(opt.seed);
  GibbsState s = initial_state(alpha0, d.total_failures(), sk);

  const std::size_t total_iter = opt.burn_in + opt.thin * opt.samples;
  std::vector<double> omega_chain, beta_chain;
  omega_chain.reserve(opt.samples);
  beta_chain.reserve(opt.samples);
  std::size_t variates = 0;

  for (std::size_t it = 0; it < total_iter; ++it) {
    // 1) augment observed failure times within their intervals.
    double sum_obs = 0.0;
    for (std::size_t i = 0; i < d.intervals(); ++i) {
      const std::size_t xi = d.counts()[i];
      for (std::size_t k = 0; k < xi; ++k) {
        sum_obs += random::sample_truncated_gamma(
            rng, alpha0, s.beta, d.left_edge(i), d.right_edge(i));
      }
      variates += xi;
    }

    // 2) residual fault count.
    const double mean_r = s.omega * law.survival(sk, s.beta);
    const auto r = random::sample_poisson(rng, mean_r);
    ++variates;
    const double rd = static_cast<double>(r);

    // 3) beta.
    if (alpha0 == 1.0) {
      s.beta = random::sample_gamma(rng, priors.beta.shape + m,
                                    priors.beta.rate + sum_obs + rd * sk);
      ++variates;
    } else {
      double sum_all = sum_obs;
      for (std::uint64_t k = 0; k < r; ++k) {
        sum_all += random::sample_truncated_gamma(rng, alpha0, s.beta, sk,
                                                  kInf);
      }
      variates += static_cast<std::size_t>(r);
      s.beta = random::sample_gamma(rng, priors.beta.shape + (m + rd) * alpha0,
                                    priors.beta.rate + sum_all);
      ++variates;
    }

    // 4) omega.
    s.omega = random::sample_gamma(rng, priors.omega.shape + m + rd,
                                   priors.omega.rate + 1.0);
    ++variates;

    if (it >= opt.burn_in && (it - opt.burn_in) % opt.thin == opt.thin - 1) {
      omega_chain.push_back(s.omega);
      beta_chain.push_back(s.beta);
      if (omega_chain.size() == opt.samples) break;
    }
  }
  return ChainResult(std::move(omega_chain), std::move(beta_chain), alpha0,
                     sk, variates);
}

}  // namespace vbsrm::bayes
