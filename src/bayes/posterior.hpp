// The unnormalized log posterior log P(omega, beta | D) + const for
// gamma-type NHPP models under either observation scheme (paper Eq. 6
// with Eq. 4/5 likelihoods), exposed in a factorized form:
//
//   log post(omega, beta) = prior terms
//                         + C(beta) + M log(omega) - omega * D(beta)
//
// where C collects the beta-only data terms and D(beta) = G(horizon).
// The factorization lets grid methods evaluate one (C, D) pair per beta
// node and sweep omega analytically cheaply.
#pragma once

#include <cstddef>

#include "bayes/prior.hpp"
#include "data/failure_data.hpp"
#include "nhpp/model.hpp"

namespace vbsrm::bayes {

class LogPosterior {
 public:
  LogPosterior(double alpha0, const data::FailureTimeData& d,
               const PriorPair& priors);
  LogPosterior(double alpha0, const data::GroupedData& d,
               const PriorPair& priors);

  double alpha0() const { return alpha0_; }
  const PriorPair& priors() const { return priors_; }
  /// Number of observed failures M.
  std::size_t failures() const { return failures_; }
  /// Observation horizon (t_e or s_k).
  double horizon() const { return horizon_; }

  /// Beta-only data term C(beta).
  double beta_term(double beta) const;
  /// Exposure D(beta) = G(horizon; alpha0, beta).
  double exposure(double beta) const;

  /// Full unnormalized log posterior.
  double operator()(double omega, double beta) const;

 private:
  double alpha0_;
  PriorPair priors_;
  std::size_t failures_;
  double horizon_;

  // Failure-time-data sufficient statistics (empty for grouped data).
  bool grouped_ = false;
  double sum_t_ = 0.0;
  double sum_log_t_ = 0.0;

  // Grouped data copy (small).
  std::vector<double> bounds_;
  std::vector<std::size_t> counts_;
};

}  // namespace vbsrm::bayes
