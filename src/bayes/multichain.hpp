// Multi-chain MCMC: run several independently seeded Gibbs chains,
// compute the cross-chain potential scale reduction factor (R-hat,
// Gelman-Rubin), and pool the draws.  Production users should not trust
// a single chain; this wraps the discipline up.
//
// Chains are embarrassingly parallel: each one is seeded independently
// (splitmix of the base seed and the chain index) and writes its result
// into a preassigned slot, so running with `threads > 1` is
// bit-identical to the serial run — the math::parallel_for determinism
// contract.
#pragma once

#include <vector>

#include "bayes/gibbs.hpp"

namespace vbsrm::bayes {

struct MultiChainResult {
  std::vector<ChainResult> chains;
  double rhat_omega = 0.0;
  double rhat_beta = 0.0;
  /// All chains concatenated (valid once R-hat ~ 1).
  ChainResult pooled;

  bool converged(double threshold = 1.01) const {
    return rhat_omega < threshold && rhat_beta < threshold;
  }
};

/// Cross-chain R-hat for an arbitrary selector over equal-length chains.
double cross_chain_rhat(const std::vector<std::vector<double>>& chains);

/// `threads` bounds the worker pool running the chains (1 = serial,
/// 0 = hardware concurrency); the result is identical for any value.
MultiChainResult gibbs_failure_times_chains(int n_chains, double alpha0,
                                            const data::FailureTimeData& d,
                                            const PriorPair& priors,
                                            const McmcOptions& base = {},
                                            unsigned threads = 1);

MultiChainResult gibbs_grouped_chains(int n_chains, double alpha0,
                                      const data::GroupedData& d,
                                      const PriorPair& priors,
                                      const McmcOptions& base = {},
                                      unsigned threads = 1);

}  // namespace vbsrm::bayes
