// NINT — direct numerical integration of the joint posterior (paper
// Sec. 4.1 / 6).  A composite Gauss-Legendre product grid is laid over
// a finite box in (omega, beta); the unnormalized log posterior is
// evaluated on the grid once, and every downstream functional (moments,
// marginal quantiles, reliability point estimates per Eq. 31 and
// reliability quantiles per Eq. 32) is a weighted sum over that grid.
//
// As in the paper, the integration box is best chosen from the VB2
// posterior: [q_{0.5%}/2, q_{99.5%} * 1.5] per parameter.
#pragma once

#include <vector>

#include "bayes/posterior.hpp"
#include "bayes/summary.hpp"

namespace vbsrm::bayes {

/// Finite integration box.
struct Box {
  double omega_lo = 0.0, omega_hi = 0.0;
  double beta_lo = 0.0, beta_hi = 0.0;

  /// The paper's rule: lower = q0.5% / 2, upper = q99.5% * 1.5.
  static Box from_quantiles(double omega_q005, double omega_q995,
                            double beta_q005, double beta_q995);
};

struct NintOptions {
  int panels = 48;  // panels per axis
  int order = 8;    // Gauss-Legendre points per panel
};

class NintEstimator {
 public:
  NintEstimator(LogPosterior posterior, Box box, NintOptions opt = {});

  const Box& box() const { return box_; }
  /// log of the normalizing constant over the box (Eq. 6's log C).
  double log_normalizer() const { return log_z_; }

  PosteriorSummary summary() const;

  double quantile_omega(double p) const;
  double quantile_beta(double p) const;
  CredibleInterval interval_omega(double level) const;
  CredibleInterval interval_beta(double level) const;

  /// Marginal posterior densities evaluated on grid nodes (normalized).
  std::vector<std::pair<double, double>> marginal_omega() const;
  std::vector<std::pair<double, double>> marginal_beta() const;

  /// Normalized joint density at an arbitrary point (for contour plots).
  double joint_density(double omega, double beta) const;

  /// Posterior-mean software reliability R(t_e + u | t_e), Eq. (31).
  double reliability_point(double u) const;
  /// P(R <= x) for the reliability over (t_e, t_e + u].
  double reliability_cdf(double x, double u) const;
  /// Reliability quantile by bisection on the cdf, Eq. (32).
  double reliability_quantile(double p, double u) const;
  ReliabilityEstimate reliability(double u, double level) const;

 private:
  double node_weight_sum(std::size_t beta_index, double omega_cut) const;

  LogPosterior posterior_;
  Box box_;
  std::vector<double> omega_nodes_, omega_w_;
  std::vector<double> beta_nodes_, beta_w_;
  // Normalized cell masses: mass_[i * nbeta + j] = w_i w_j post_ij / Z.
  std::vector<double> mass_;
  double log_z_ = 0.0;
};

}  // namespace vbsrm::bayes
