#include "bayes/posterior.hpp"

#include <cmath>
#include <limits>

#include "math/specfun.hpp"

namespace vbsrm::bayes {

namespace m = vbsrm::math;

LogPosterior::LogPosterior(double alpha0, const data::FailureTimeData& d,
                           const PriorPair& priors)
    : alpha0_(alpha0),
      priors_(priors),
      failures_(d.count()),
      horizon_(d.observation_end()),
      grouped_(false),
      sum_t_(d.total_time()),
      sum_log_t_(d.total_log_time()) {}

LogPosterior::LogPosterior(double alpha0, const data::GroupedData& d,
                           const PriorPair& priors)
    : alpha0_(alpha0),
      priors_(priors),
      failures_(d.total_failures()),
      horizon_(d.observation_end()),
      grouped_(true),
      bounds_(d.boundaries()),
      counts_(d.counts()) {}

double LogPosterior::beta_term(double beta) const {
  if (!(beta > 0.0)) return -std::numeric_limits<double>::infinity();
  const nhpp::GammaFailureLaw law{alpha0_};
  if (!grouped_) {
    // sum_i log g(t_i; alpha0, beta)
    return static_cast<double>(failures_) *
               (alpha0_ * std::log(beta) - m::log_gamma(alpha0_)) +
           (alpha0_ - 1.0) * sum_log_t_ - beta * sum_t_;
  }
  double c = 0.0;
  double prev = 0.0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const double x = static_cast<double>(counts_[i]);
    if (x > 0.0) c += x * law.log_interval_mass(prev, bounds_[i], beta);
    prev = bounds_[i];
  }
  return c;
}

double LogPosterior::exposure(double beta) const {
  const nhpp::GammaFailureLaw law{alpha0_};
  return law.cdf(horizon_, beta);
}

double LogPosterior::operator()(double omega, double beta) const {
  if (!(omega > 0.0) || !(beta > 0.0)) {
    return -std::numeric_limits<double>::infinity();
  }
  return priors_.omega.log_density(omega) + priors_.beta.log_density(beta) +
         beta_term(beta) + static_cast<double>(failures_) * std::log(omega) -
         omega * exposure(beta);
}

}  // namespace vbsrm::bayes
