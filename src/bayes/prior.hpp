// Prior specifications.  The paper uses independent gamma priors for
// omega and beta (conjugate for the complete-data likelihood), with the
// "NoInfo" scenario using flat (improper, P ∝ 1) densities.
#pragma once

#include <string>

namespace vbsrm::bayes {

/// Gamma(shape, rate) prior; `rate == 0 && shape == 1` encodes the flat
/// improper prior P(x) ∝ 1 (log density 0 everywhere on (0, inf)).
struct GammaPrior {
  double shape = 1.0;
  double rate = 0.0;

  /// Construct from a mean/sd "good guess" (the paper's Info scenario).
  static GammaPrior from_mean_sd(double mean, double sd);

  /// Flat improper prior P(x) ∝ 1.
  static GammaPrior flat() { return {1.0, 0.0}; }

  bool is_flat() const { return rate == 0.0; }
  double mean() const;  // +inf for flat
  double sd() const;    // +inf for flat
  double log_density(double x) const;

  std::string describe() const;
};

/// The pair of independent priors on (omega, beta).
struct PriorPair {
  GammaPrior omega;
  GammaPrior beta;

  static PriorPair flat() { return {GammaPrior::flat(), GammaPrior::flat()}; }
};

}  // namespace vbsrm::bayes
