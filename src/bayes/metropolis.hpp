// General-purpose random-walk Metropolis-Hastings on (log omega,
// log beta).  The paper notes MH as the fallback when no Gibbs scheme is
// available (e.g. non-conjugate models); here it doubles as an
// independent cross-check of the Gibbs samplers and as an ablation
// subject (mixing vs the data-augmented Gibbs chain).
#pragma once

#include "bayes/chain.hpp"
#include "bayes/posterior.hpp"

namespace vbsrm::bayes {

struct MhOptions {
  McmcOptions mcmc;
  /// Initial proposal sd in log space; adapted during burn-in towards
  /// ~35% acceptance.
  double step = 0.25;
  bool adapt = true;
};

struct MhResult {
  ChainResult chain;
  double acceptance_rate = 0.0;
  double final_step = 0.0;
};

MhResult metropolis(const LogPosterior& posterior, const MhOptions& opt = {});

}  // namespace vbsrm::bayes
