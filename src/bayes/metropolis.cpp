#include "bayes/metropolis.hpp"

#include <cmath>

#include "random/distributions.hpp"

namespace vbsrm::bayes {

MhResult metropolis(const LogPosterior& posterior, const MhOptions& opt) {
  random::Rng rng(opt.mcmc.seed);

  double lo = std::log(1.3 * static_cast<double>(posterior.failures()) + 1.0);
  double lb = std::log(posterior.alpha0() / (0.6 * posterior.horizon()));
  // Log-space target includes the Jacobian omega*beta of the transform.
  auto log_target = [&](double x, double y) {
    return posterior(std::exp(x), std::exp(y)) + x + y;
  };
  double lt = log_target(lo, lb);

  double step = opt.step;
  std::size_t accepted = 0, proposed = 0;
  const std::size_t total_iter =
      opt.mcmc.burn_in + opt.mcmc.thin * opt.mcmc.samples;

  std::vector<double> omega_chain, beta_chain;
  omega_chain.reserve(opt.mcmc.samples);
  beta_chain.reserve(opt.mcmc.samples);
  std::size_t variates = 0;
  std::size_t window_accepted = 0, window_size = 0;

  for (std::size_t it = 0; it < total_iter; ++it) {
    const double po = lo + step * random::sample_normal(rng);
    const double pb = lb + step * random::sample_normal(rng);
    variates += 2;
    const double plt = log_target(po, pb);
    ++proposed;
    ++window_size;
    if (std::log(rng.next_open()) < plt - lt) {
      lo = po;
      lb = pb;
      lt = plt;
      ++accepted;
      ++window_accepted;
    }
    // Robbins-Monro-ish step adaptation during burn-in only.
    if (opt.adapt && it < opt.mcmc.burn_in && window_size == 200) {
      const double rate =
          static_cast<double>(window_accepted) / static_cast<double>(window_size);
      step *= std::exp(0.5 * (rate - 0.35));
      window_accepted = window_size = 0;
    }
    if (it >= opt.mcmc.burn_in &&
        (it - opt.mcmc.burn_in) % opt.mcmc.thin == opt.mcmc.thin - 1) {
      omega_chain.push_back(std::exp(lo));
      beta_chain.push_back(std::exp(lb));
      if (omega_chain.size() == opt.mcmc.samples) break;
    }
  }
  ChainResult chain(std::move(omega_chain), std::move(beta_chain),
                    posterior.alpha0(), posterior.horizon(), variates);
  return {std::move(chain),
          proposed ? static_cast<double>(accepted) / proposed : 0.0, step};
}

}  // namespace vbsrm::bayes
