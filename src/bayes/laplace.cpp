#include "bayes/laplace.hpp"

#include <cmath>
#include <stdexcept>

#include "math/optimize.hpp"
#include "math/specfun.hpp"

namespace vbsrm::bayes {

namespace m = vbsrm::math;

LaplaceEstimator::LaplaceEstimator(LogPosterior posterior, LaplaceOptions opt)
    : posterior_(std::move(posterior)), cov_(2, 2) {
  auto [o0, b0] = opt.start;
  if (!(o0 > 0.0) || !(b0 > 0.0)) {
    // Heuristic start: a bit more faults than observed, failure-law
    // mean at ~60% of the horizon.
    o0 = 1.3 * static_cast<double>(posterior_.failures()) + 1.0;
    b0 = posterior_.alpha0() / (0.6 * posterior_.horizon());
  }
  // Maximize the posterior density in natural coordinates; optimize over
  // logs for scale robustness (the argmax over the plane is unchanged).
  auto nlp = [&](const std::vector<double>& p) {
    const double v = posterior_(std::exp(p[0]), std::exp(p[1]));
    return std::isfinite(v) ? -v : 1e300;
  };
  m::NelderMeadOptions nm;
  nm.max_iter = opt.max_iterations;
  nm.restarts = 2;
  const auto sol = m::nelder_mead(nlp, {std::log(o0), std::log(b0)}, nm);
  map_omega_ = std::exp(sol.x[0]);
  map_beta_ = std::exp(sol.x[1]);

  auto neg_post = [&](const std::vector<double>& p) {
    const double v = posterior_(p[0], p[1]);
    return std::isfinite(v) ? -v : 1e300;
  };
  const auto h = m::numeric_hessian(neg_post, {map_omega_, map_beta_});
  math::Matrix hess(2, 2);
  hess(0, 0) = h[0];
  hess(0, 1) = h[1];
  hess(1, 0) = h[2];
  hess(1, 1) = h[3];
  cov_ = math::inverse(hess);
  if (!(cov_(0, 0) > 0.0) || !(cov_(1, 1) > 0.0)) {
    throw std::domain_error(
        "LaplaceEstimator: Hessian at MAP not positive definite");
  }
}

PosteriorSummary LaplaceEstimator::summary() const {
  return {map_omega_, map_beta_, cov_(0, 0), cov_(1, 1), cov_(0, 1)};
}

CredibleInterval LaplaceEstimator::interval_omega(double level) const {
  const double z = m::normal_quantile(0.5 + 0.5 * level);
  const double sd = std::sqrt(cov_(0, 0));
  return {map_omega_ - z * sd, map_omega_ + z * sd, level};
}

CredibleInterval LaplaceEstimator::interval_beta(double level) const {
  const double z = m::normal_quantile(0.5 + 0.5 * level);
  const double sd = std::sqrt(cov_(1, 1));
  return {map_beta_ - z * sd, map_beta_ + z * sd, level};
}

double LaplaceEstimator::joint_density(double omega, double beta) const {
  const double det = cov_(0, 0) * cov_(1, 1) - cov_(0, 1) * cov_(1, 0);
  if (det <= 0.0) return 0.0;
  const double dx = omega - map_omega_;
  const double dy = beta - map_beta_;
  const double qf = (cov_(1, 1) * dx * dx - 2.0 * cov_(0, 1) * dx * dy +
                     cov_(0, 0) * dy * dy) /
                    det;
  return std::exp(-0.5 * qf) / (2.0 * M_PI * std::sqrt(det));
}

ReliabilityEstimate LaplaceEstimator::reliability(double u,
                                                  double level) const {
  const nhpp::GammaFailureLaw law{posterior_.alpha0()};
  const double te = posterior_.horizon();
  const double h = law.interval_mass(te, te + u, map_beta_);
  const double r = std::exp(-map_omega_ * h);

  // Delta method: dR/domega = -h R;  dR/dbeta = -omega h'(beta) R with
  // h'(beta) = d/dbeta [G(te+u) - G(te)] computed by central difference.
  const double db = 1e-6 * map_beta_;
  const double hp = (law.interval_mass(te, te + u, map_beta_ + db) -
                     law.interval_mass(te, te + u, map_beta_ - db)) /
                    (2.0 * db);
  const double gr_o = -h * r;
  const double gr_b = -map_omega_ * hp * r;
  const double var = gr_o * gr_o * cov_(0, 0) + gr_b * gr_b * cov_(1, 1) +
                     2.0 * gr_o * gr_b * cov_(0, 1);
  const double sd = std::sqrt(std::max(0.0, var));
  const double z = m::normal_quantile(0.5 + 0.5 * level);
  return {r, r - z * sd, r + z * sd, level};
}

double LaplaceEstimator::log_marginal_likelihood() const {
  const double det = cov_(0, 0) * cov_(1, 1) - cov_(0, 1) * cov_(1, 0);
  if (det <= 0.0) {
    throw std::domain_error(
        "log_marginal_likelihood: covariance not positive definite");
  }
  return posterior_(map_omega_, map_beta_) + std::log(2.0 * M_PI) +
         0.5 * std::log(det);
}

bool LaplaceEstimator::reliability_estimate_out_of_range(
    const ReliabilityEstimate& r) {
  return r.lower < 0.0 || r.upper > 1.0;
}

}  // namespace vbsrm::bayes
