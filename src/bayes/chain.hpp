// MCMC chain container and estimators derived from samples.  Interval
// estimates use order statistics exactly as the paper prescribes (the
// empirical 0.5%/99.5% points of the collected samples), and the
// reliability estimators evaluate R(t_e + u | t_e) per sample.
#pragma once

#include <cstdint>
#include <vector>

#include "bayes/summary.hpp"
#include "nhpp/model.hpp"

namespace vbsrm::bayes {

struct McmcOptions {
  std::size_t burn_in = 10000;
  std::size_t thin = 10;       // collect every thin-th iteration
  std::size_t samples = 20000; // collected (post-burn-in, post-thinning)
  std::uint64_t seed = 0xC0FFEEull;
};

class ChainResult {
 public:
  ChainResult(std::vector<double> omega, std::vector<double> beta,
              double alpha0, double horizon, std::size_t variates);

  const std::vector<double>& omega() const { return omega_; }
  const std::vector<double>& beta() const { return beta_; }
  std::size_t size() const { return omega_.size(); }
  /// Total count of random variates generated (the paper's Table 6
  /// bookkeeping: burn-in and thinned-away iterations included).
  std::size_t variates_generated() const { return variates_; }

  PosteriorSummary summary() const;
  CredibleInterval interval_omega(double level) const;
  CredibleInterval interval_beta(double level) const;

  /// Reliability over (t_e, t_e+u]: sample mean and order-statistic
  /// interval of the per-sample reliabilities.
  ReliabilityEstimate reliability(double u, double level) const;

  /// Effective sample sizes (omega, beta) — convergence diagnostics.
  std::pair<double, double> effective_sample_sizes() const;

 private:
  std::vector<double> omega_, beta_;
  double alpha0_, horizon_;
  std::size_t variates_;
};

}  // namespace vbsrm::bayes
