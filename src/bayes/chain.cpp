#include "bayes/chain.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/diagnostics.hpp"
#include "stats/quantiles.hpp"

namespace vbsrm::bayes {

ChainResult::ChainResult(std::vector<double> omega, std::vector<double> beta,
                         double alpha0, double horizon, std::size_t variates)
    : omega_(std::move(omega)), beta_(std::move(beta)), alpha0_(alpha0),
      horizon_(horizon), variates_(variates) {
  if (omega_.size() != beta_.size() || omega_.empty()) {
    throw std::invalid_argument("ChainResult: chains empty or mismatched");
  }
}

PosteriorSummary ChainResult::summary() const {
  return {stats::mean(omega_), stats::mean(beta_), stats::variance(omega_),
          stats::variance(beta_), stats::covariance(omega_, beta_)};
}

CredibleInterval ChainResult::interval_omega(double level) const {
  const double a = 0.5 * (1.0 - level);
  return {stats::order_statistic_quantile(omega_, a),
          stats::order_statistic_quantile(omega_, 1.0 - a), level};
}

CredibleInterval ChainResult::interval_beta(double level) const {
  const double a = 0.5 * (1.0 - level);
  return {stats::order_statistic_quantile(beta_, a),
          stats::order_statistic_quantile(beta_, 1.0 - a), level};
}

ReliabilityEstimate ChainResult::reliability(double u, double level) const {
  const nhpp::GammaFailureLaw law{alpha0_};
  std::vector<double> r;
  r.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    const double h = law.interval_mass(horizon_, horizon_ + u, beta_[i]);
    r.push_back(std::exp(-omega_[i] * h));
  }
  const double a = 0.5 * (1.0 - level);
  return {stats::mean(r), stats::order_statistic_quantile(r, a),
          stats::order_statistic_quantile(r, 1.0 - a), level};
}

std::pair<double, double> ChainResult::effective_sample_sizes() const {
  return {stats::effective_sample_size(omega_),
          stats::effective_sample_size(beta_)};
}

}  // namespace vbsrm::bayes
