#include "bayes/nint.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/quadrature.hpp"
#include "math/roots.hpp"
#include "math/specfun.hpp"

namespace vbsrm::bayes {

namespace m = vbsrm::math;

Box Box::from_quantiles(double omega_q005, double omega_q995,
                        double beta_q005, double beta_q995) {
  return {omega_q005 / 2.0, omega_q995 * 1.5, beta_q005 / 2.0,
          beta_q995 * 1.5};
}

NintEstimator::NintEstimator(LogPosterior posterior, Box box,
                             NintOptions opt)
    : posterior_(std::move(posterior)), box_(box) {
  if (!(box.omega_hi > box.omega_lo) || !(box.beta_hi > box.beta_lo) ||
      box.omega_lo < 0.0 || box.beta_lo < 0.0) {
    throw std::invalid_argument("NintEstimator: bad box");
  }
  const auto grid = m::make_product_grid(box.omega_lo, box.omega_hi,
                                         box.beta_lo, box.beta_hi,
                                         opt.panels, opt.order);
  omega_nodes_ = grid.x;
  omega_w_ = grid.wx;
  beta_nodes_ = grid.y;
  beta_w_ = grid.wy;

  const std::size_t no = omega_nodes_.size();
  const std::size_t nb = beta_nodes_.size();

  // Factorized evaluation: one (C(beta), D(beta), prior) triple per
  // beta node, then the omega sweep is cheap.
  const double mlog = static_cast<double>(posterior_.failures());
  std::vector<double> cb(nb), db(nb), pb(nb);
  for (std::size_t j = 0; j < nb; ++j) {
    cb[j] = posterior_.beta_term(beta_nodes_[j]);
    db[j] = posterior_.exposure(beta_nodes_[j]);
    pb[j] = posterior_.priors().beta.log_density(beta_nodes_[j]);
  }

  std::vector<double> logmass(no * nb);
  double peak = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < no; ++i) {
    const double omega = omega_nodes_[i];
    const double pomega = posterior_.priors().omega.log_density(omega) +
                          mlog * std::log(omega);
    const double lwi = std::log(omega_w_[i]);
    for (std::size_t j = 0; j < nb; ++j) {
      const double lp = pomega + pb[j] + cb[j] - omega * db[j];
      const double v = lp + lwi + std::log(beta_w_[j]);
      logmass[i * nb + j] = v;
      peak = std::max(peak, v);
    }
  }
  double z = 0.0;
  mass_.resize(no * nb);
  for (std::size_t k = 0; k < logmass.size(); ++k) {
    mass_[k] = std::exp(logmass[k] - peak);
    z += mass_[k];
  }
  for (double& v : mass_) v /= z;
  log_z_ = peak + std::log(z);
}

PosteriorSummary NintEstimator::summary() const {
  const std::size_t no = omega_nodes_.size(), nb = beta_nodes_.size();
  double eo = 0.0, eb = 0.0, eoo = 0.0, ebb = 0.0, eob = 0.0;
  for (std::size_t i = 0; i < no; ++i) {
    const double o = omega_nodes_[i];
    for (std::size_t j = 0; j < nb; ++j) {
      const double w = mass_[i * nb + j];
      const double b = beta_nodes_[j];
      eo += w * o;
      eb += w * b;
      eoo += w * o * o;
      ebb += w * b * b;
      eob += w * o * b;
    }
  }
  return {eo, eb, eoo - eo * eo, ebb - eb * eb, eob - eo * eb};
}

namespace {

/// Quantile from (node, mass) pairs with nodes ascending: accumulates
/// mass and linearly interpolates inside the crossing node gap.
double marginal_quantile(const std::vector<double>& nodes,
                         const std::vector<double>& mass, double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("quantile: p in (0,1)");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double next = acc + mass[i];
    if (next >= p) {
      const double frac = mass[i] > 0.0 ? (p - acc) / mass[i] : 0.5;
      const double left = i == 0 ? nodes[0] : 0.5 * (nodes[i - 1] + nodes[i]);
      const double right = i + 1 < nodes.size()
                               ? 0.5 * (nodes[i] + nodes[i + 1])
                               : nodes[i];
      return left + frac * (right - left);
    }
    acc = next;
  }
  return nodes.back();
}

}  // namespace

double NintEstimator::quantile_omega(double p) const {
  const std::size_t no = omega_nodes_.size(), nb = beta_nodes_.size();
  std::vector<double> marg(no, 0.0);
  for (std::size_t i = 0; i < no; ++i) {
    for (std::size_t j = 0; j < nb; ++j) marg[i] += mass_[i * nb + j];
  }
  return marginal_quantile(omega_nodes_, marg, p);
}

double NintEstimator::quantile_beta(double p) const {
  const std::size_t no = omega_nodes_.size(), nb = beta_nodes_.size();
  std::vector<double> marg(nb, 0.0);
  for (std::size_t i = 0; i < no; ++i) {
    for (std::size_t j = 0; j < nb; ++j) marg[j] += mass_[i * nb + j];
  }
  return marginal_quantile(beta_nodes_, marg, p);
}

CredibleInterval NintEstimator::interval_omega(double level) const {
  const double a = 0.5 * (1.0 - level);
  return {quantile_omega(a), quantile_omega(1.0 - a), level};
}

CredibleInterval NintEstimator::interval_beta(double level) const {
  const double a = 0.5 * (1.0 - level);
  return {quantile_beta(a), quantile_beta(1.0 - a), level};
}

std::vector<std::pair<double, double>> NintEstimator::marginal_omega() const {
  const std::size_t no = omega_nodes_.size(), nb = beta_nodes_.size();
  std::vector<std::pair<double, double>> out(no);
  for (std::size_t i = 0; i < no; ++i) {
    double mi = 0.0;
    for (std::size_t j = 0; j < nb; ++j) mi += mass_[i * nb + j];
    out[i] = {omega_nodes_[i], mi / omega_w_[i]};
  }
  return out;
}

std::vector<std::pair<double, double>> NintEstimator::marginal_beta() const {
  const std::size_t no = omega_nodes_.size(), nb = beta_nodes_.size();
  std::vector<std::pair<double, double>> out(nb);
  for (std::size_t j = 0; j < nb; ++j) {
    double mj = 0.0;
    for (std::size_t i = 0; i < no; ++i) mj += mass_[i * nb + j];
    out[j] = {beta_nodes_[j], mj / beta_w_[j]};
  }
  return out;
}

double NintEstimator::joint_density(double omega, double beta) const {
  return std::exp(posterior_(omega, beta) - log_z_);
}

double NintEstimator::reliability_point(double u) const {
  const nhpp::GammaFailureLaw law{posterior_.alpha0()};
  const double te = posterior_.horizon();
  const std::size_t no = omega_nodes_.size(), nb = beta_nodes_.size();
  double r = 0.0;
  for (std::size_t j = 0; j < nb; ++j) {
    const double h = law.interval_mass(te, te + u, beta_nodes_[j]);
    for (std::size_t i = 0; i < no; ++i) {
      r += mass_[i * nb + j] * std::exp(-omega_nodes_[i] * h);
    }
  }
  return r;
}

double NintEstimator::node_weight_sum(std::size_t beta_index,
                                      double omega_cut) const {
  // Mass in this beta column with omega >= omega_cut, linearly
  // interpolated within the straddling node cell.
  const std::size_t no = omega_nodes_.size(), nb = beta_nodes_.size();
  if (omega_cut <= omega_nodes_.front()) {
    double s = 0.0;
    for (std::size_t i = 0; i < no; ++i) s += mass_[i * nb + beta_index];
    return s;
  }
  if (omega_cut > omega_nodes_.back()) return 0.0;
  double s = 0.0;
  for (std::size_t i = no; i-- > 0;) {
    if (omega_nodes_[i] >= omega_cut) {
      s += mass_[i * nb + beta_index];
    } else {
      // Fractional share of the straddled gap between node i and node
      // i+1, treating node i's mass as uniform over that gap.
      const double right = omega_nodes_[i + 1];
      const double frac = (right - omega_cut) / (right - omega_nodes_[i]);
      s += frac * mass_[i * nb + beta_index];
      break;
    }
  }
  return s;
}

double NintEstimator::reliability_cdf(double x, double u) const {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const nhpp::GammaFailureLaw law{posterior_.alpha0()};
  const double te = posterior_.horizon();
  const std::size_t nb = beta_nodes_.size();
  const double neg_log_x = -std::log(x);
  double p = 0.0;
  for (std::size_t j = 0; j < nb; ++j) {
    const double h = law.interval_mass(te, te + u, beta_nodes_[j]);
    const double cut = h > 0.0 ? neg_log_x / h
                               : std::numeric_limits<double>::infinity();
    p += node_weight_sum(j, cut);
  }
  return p;
}

double NintEstimator::reliability_quantile(double p, double u) const {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("reliability_quantile: p in (0,1)");
  }
  auto f = [&](double x) { return reliability_cdf(x, u) - p; };
  const auto r = m::bisect(f, 1e-12, 1.0 - 1e-12, 1e-10, 200);
  return r.x;
}

ReliabilityEstimate NintEstimator::reliability(double u, double level) const {
  const double a = 0.5 * (1.0 - level);
  return {reliability_point(u), reliability_quantile(a, u),
          reliability_quantile(1.0 - a, u), level};
}

}  // namespace vbsrm::bayes
