#include "bayes/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "bayes/laplace.hpp"
#include "math/optimize.hpp"
#include "nhpp/fit.hpp"
#include "stats/descriptive.hpp"

namespace vbsrm::bayes {

namespace m = vbsrm::math;

namespace {

double total_log_marginal_with_starts(
    double alpha0, const std::vector<data::FailureTimeData>& projects,
    const PriorPair& priors,
    const std::vector<std::pair<double, double>>& starts) {
  double total = 0.0;
  for (std::size_t k = 0; k < projects.size(); ++k) {
    LogPosterior post(alpha0, projects[k], priors);
    LaplaceOptions lo;
    if (!starts.empty()) lo.start = starts[k];
    const LaplaceEstimator lap(std::move(post), lo);
    total += lap.log_marginal_likelihood();
  }
  return total;
}

}  // namespace

double total_log_marginal(double alpha0,
                          const std::vector<data::FailureTimeData>& projects,
                          const PriorPair& priors) {
  return total_log_marginal_with_starts(alpha0, projects, priors, {});
}

namespace {

PriorPair moment_matched_start(
    double alpha0, const std::vector<data::FailureTimeData>& projects) {
  // Fit each project by EM and moment-match gammas to the spread of the
  // per-project MLEs.
  std::vector<double> omegas, betas;
  nhpp::FitOptions fo;
  fo.compute_covariance = false;
  for (const auto& d : projects) {
    const auto fit = nhpp::fit_em(alpha0, d, fo);
    omegas.push_back(fit.omega);
    betas.push_back(fit.beta);
  }
  const double mo = stats::mean(omegas);
  const double mb = stats::mean(betas);
  // Spread: at least 40% cv so the start is not degenerate when the
  // projects happen to agree closely.
  const double so = std::max(std::sqrt(stats::variance(omegas)), 0.4 * mo);
  const double sb = std::max(std::sqrt(stats::variance(betas)), 0.4 * mb);
  return {GammaPrior::from_mean_sd(mo, so), GammaPrior::from_mean_sd(mb, sb)};
}

}  // namespace

EmpiricalBayesResult empirical_bayes_priors(
    double alpha0, const std::vector<data::FailureTimeData>& projects,
    const EmpiricalBayesOptions& opt) {
  if (projects.size() < 2) {
    throw std::invalid_argument(
        "empirical_bayes_priors: need >= 2 historical projects");
  }
  const PriorPair start = opt.use_default_start
                              ? moment_matched_start(alpha0, projects)
                              : opt.start;
  if (start.omega.is_flat() || start.beta.is_flat()) {
    throw std::invalid_argument(
        "empirical_bayes_priors: start priors must be proper");
  }

  // Warm starts for the per-project MAP searches: the project MLEs.
  std::vector<std::pair<double, double>> starts;
  {
    nhpp::FitOptions fo;
    fo.compute_covariance = false;
    for (const auto& d : projects) {
      const auto fit = nhpp::fit_em(alpha0, d, fo);
      starts.emplace_back(fit.omega, fit.beta);
    }
  }

  // Gamma cv = 1/sqrt(shape): the cv floor caps the shapes.
  const double shape_cap =
      opt.min_cv > 0.0 ? 1.0 / (opt.min_cv * opt.min_cv)
                       : std::numeric_limits<double>::infinity();
  auto objective = [&](const std::vector<double>& p) {
    const PriorPair priors{
        GammaPrior{std::min(std::exp(p[0]), shape_cap), std::exp(p[1])},
        GammaPrior{std::min(std::exp(p[2]), shape_cap), std::exp(p[3])}};
    try {
      const double lm =
          total_log_marginal_with_starts(alpha0, projects, priors, starts);
      return std::isfinite(lm) ? -lm : 1e300;
    } catch (const std::exception&) {
      return 1e300;  // MAP/Hessian failure under absurd hyperparameters
    }
  };
  m::NelderMeadOptions nm;
  nm.max_iter = opt.max_iterations;
  // The inner MAP searches leave ~1e-6-level noise on the evidence
  // surface; demanding more than ~1e-4 relative of the outer optimizer
  // just burns iterations without moving the hyperparameters.
  nm.x_tol = 1e-4;
  nm.f_tol = 1e-6;
  const std::vector<double> x0{
      std::log(start.omega.shape), std::log(start.omega.rate),
      std::log(start.beta.shape), std::log(start.beta.rate)};
  const auto sol = m::nelder_mead(objective, x0, nm);

  EmpiricalBayesResult out;
  out.priors = {
      GammaPrior{std::min(std::exp(sol.x[0]), shape_cap), std::exp(sol.x[1])},
      GammaPrior{std::min(std::exp(sol.x[2]), shape_cap), std::exp(sol.x[3])}};
  out.log_marginal = -sol.f;
  out.converged = sol.converged && sol.f < 1e299;
  return out;
}

}  // namespace vbsrm::bayes
