// MCMC — Gibbs samplers for gamma-type NHPP posteriors (paper Sec. 4.3).
//
// Failure-time data (Kuo & Yang 1995/96 scheme, generalized to gamma
// priors and any fixed alpha0):
//   r      | omega, beta ~ Poisson(omega * Q(alpha0, beta t_e))
//   omega  | r           ~ Gamma(m_w + m + r, phi_w + 1)
//   beta   | ...           GO (alpha0 = 1): residual lifetimes integrate
//                          out analytically ->
//                            Gamma(m_b + m, phi_b + sum t_i + r t_e);
//                          general alpha0: augment the r unobserved
//                          failure times with truncated-gamma draws and
//                          use full conjugacy:
//                            Gamma(m_b + (m+r) alpha0, phi_b + sum all T).
//
// Grouped data (Tanner-Wong data augmentation, as the paper's Sec. 6
// implementation): each iteration re-samples every observed failure's
// exact time from the gamma law truncated to its interval, plus the
// residual count/time as above.  This is why the grouped chain costs
// ~(3 + M) variates per iteration (Table 6: 8,610,000 for System 17).
#pragma once

#include "bayes/chain.hpp"
#include "bayes/prior.hpp"
#include "data/failure_data.hpp"

namespace vbsrm::bayes {

/// Run the failure-time-data Gibbs sampler.
ChainResult gibbs_failure_times(double alpha0, const data::FailureTimeData& d,
                                const PriorPair& priors,
                                const McmcOptions& opt = {});

/// Run the grouped-data Gibbs sampler with data augmentation.
ChainResult gibbs_grouped(double alpha0, const data::GroupedData& d,
                          const PriorPair& priors,
                          const McmcOptions& opt = {});

}  // namespace vbsrm::bayes
