#include "bayes/multichain.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "math/parallel.hpp"
#include "stats/descriptive.hpp"

namespace vbsrm::bayes {

double cross_chain_rhat(const std::vector<std::vector<double>>& chains) {
  if (chains.size() < 2) {
    throw std::invalid_argument("cross_chain_rhat: need >= 2 chains");
  }
  const std::size_t n = chains.front().size();
  for (const auto& c : chains) {
    if (c.size() != n || n < 2) {
      throw std::invalid_argument("cross_chain_rhat: ragged/short chains");
    }
  }
  std::vector<double> means, vars;
  for (const auto& c : chains) {
    means.push_back(stats::mean(c));
    vars.push_back(stats::variance(c));
  }
  const double w = stats::mean(vars);
  const double b = stats::variance(means) * static_cast<double>(n);
  const double var_plus =
      (static_cast<double>(n) - 1.0) / static_cast<double>(n) * w +
      b / static_cast<double>(n);
  if (w <= 0.0) return 1.0;
  return std::sqrt(var_plus / w);
}

namespace {

template <typename RunOne>
MultiChainResult run_chains(int n_chains, double alpha0, double horizon,
                            const McmcOptions& base, unsigned threads,
                            RunOne&& run_one) {
  if (n_chains < 2) {
    throw std::invalid_argument("run_chains: need >= 2 chains");
  }
  // Each chain fills its preassigned slot; the reductions below walk
  // the slots in index order, so any thread count gives the bytes the
  // serial loop produced (math/parallel.hpp determinism contract).
  std::vector<ChainResult> slots(
      static_cast<std::size_t>(n_chains),
      ChainResult({1.0}, {1.0}, alpha0, horizon, 0));
  math::parallel_for(
      static_cast<std::size_t>(n_chains), threads, [&](std::size_t c) {
        McmcOptions opt = base;
        opt.seed =
            base.seed + 0x9E3779B9ull * static_cast<std::uint64_t>(c + 1);
        slots[c] = run_one(opt);
      });

  MultiChainResult out{.chains = {},
                       .rhat_omega = 0.0,
                       .rhat_beta = 0.0,
                       .pooled = ChainResult({1.0}, {1.0}, alpha0, horizon, 0)};
  std::vector<std::vector<double>> omegas, betas;
  std::vector<double> pooled_omega, pooled_beta;
  std::size_t variates = 0;
  for (ChainResult& chain : slots) {
    omegas.push_back(chain.omega());
    betas.push_back(chain.beta());
    pooled_omega.insert(pooled_omega.end(), chain.omega().begin(),
                        chain.omega().end());
    pooled_beta.insert(pooled_beta.end(), chain.beta().begin(),
                       chain.beta().end());
    variates += chain.variates_generated();
    out.chains.push_back(std::move(chain));
  }
  out.rhat_omega = cross_chain_rhat(omegas);
  out.rhat_beta = cross_chain_rhat(betas);
  out.pooled = ChainResult(std::move(pooled_omega), std::move(pooled_beta),
                           alpha0, horizon, variates);
  return out;
}

}  // namespace

MultiChainResult gibbs_failure_times_chains(int n_chains, double alpha0,
                                            const data::FailureTimeData& d,
                                            const PriorPair& priors,
                                            const McmcOptions& base,
                                            unsigned threads) {
  return run_chains(n_chains, alpha0, d.observation_end(), base, threads,
                    [&](const McmcOptions& opt) {
                      return gibbs_failure_times(alpha0, d, priors, opt);
                    });
}

MultiChainResult gibbs_grouped_chains(int n_chains, double alpha0,
                                      const data::GroupedData& d,
                                      const PriorPair& priors,
                                      const McmcOptions& base,
                                      unsigned threads) {
  return run_chains(n_chains, alpha0, d.observation_end(), base, threads,
                    [&](const McmcOptions& opt) {
                      return gibbs_grouped(alpha0, d, priors, opt);
                    });
}

}  // namespace vbsrm::bayes
