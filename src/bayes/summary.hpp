// Common result types shared by all posterior estimators (NINT, LAPL,
// MCMC, VB1, VB2) so benches and examples can treat them uniformly.
#pragma once

namespace vbsrm::bayes {

/// First and second moments of the joint posterior of (omega, beta) —
/// the quantities of the paper's Table 1.
struct PosteriorSummary {
  double mean_omega = 0.0;
  double mean_beta = 0.0;
  double var_omega = 0.0;
  double var_beta = 0.0;
  double cov = 0.0;  // Cov(omega, beta)
};

/// Two-sided credible interval at a given level (e.g. 0.99 gives the
/// 0.5% and 99.5% quantiles, as in the paper's Tables 2-3).
struct CredibleInterval {
  double lower = 0.0;
  double upper = 0.0;
  double level = 0.0;
};

/// Point estimate plus two-sided interval for software reliability
/// R(t_e + u | t_e) — the paper's Tables 4-5.
struct ReliabilityEstimate {
  double point = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double level = 0.0;
};

}  // namespace vbsrm::bayes
