#include "engine/adapters.hpp"

#include <utility>

#include "bayes/gibbs.hpp"
#include "bayes/multichain.hpp"

namespace vbsrm::engine {

double EstimatorRequest::horizon() const {
  return std::visit([](const auto& d) { return d.observation_end(); }, data);
}

std::size_t EstimatorRequest::failures() const {
  if (const auto* ft = std::get_if<data::FailureTimeData>(&data)) {
    return ft->count();
  }
  return std::get<data::GroupedData>(data).total_failures();
}

bayes::LogPosterior log_posterior_for(const EstimatorRequest& req) {
  return std::visit(
      [&](const auto& d) {
        return bayes::LogPosterior(req.alpha0, d, req.priors);
      },
      req.data);
}

bayes::Box nint_box_from(const core::GammaMixturePosterior& posterior) {
  return bayes::Box::from_quantiles(
      posterior.quantile_omega(0.005), posterior.quantile_omega(0.995),
      posterior.quantile_beta(0.005), posterior.quantile_beta(0.995));
}

namespace adapters {
namespace {

core::Vb2Estimator fit_vb2(const EstimatorRequest& req) {
  return std::visit(
      [&](const auto& d) {
        return core::Vb2Estimator(req.alpha0, d, req.priors, req.vb2);
      },
      req.data);
}

class Vb2Adapter final : public Estimator {
 public:
  explicit Vb2Adapter(const EstimatorRequest& req) : est_(fit_vb2(req)) {
    diag_.iterations = est_.diagnostics().total_fixed_point_iterations;
    diag_.n_max_used = est_.diagnostics().n_max_used;
    diag_.tail_mass_at_n_max = est_.diagnostics().prob_at_n_max;
  }

  std::string_view method() const override { return "vb2"; }
  bayes::PosteriorSummary summarize() const override {
    return est_.posterior().summary();
  }
  bayes::CredibleInterval interval_omega(double level) const override {
    return est_.posterior().interval_omega(level);
  }
  bayes::CredibleInterval interval_beta(double level) const override {
    return est_.posterior().interval_beta(level);
  }
  bayes::ReliabilityEstimate reliability(double u,
                                         double level) const override {
    return est_.posterior().reliability(u, level);
  }
  const core::GammaMixturePosterior* mixture() const override {
    return &est_.posterior();
  }

 private:
  core::Vb2Estimator est_;
};

class Vb1Adapter final : public Estimator {
 public:
  explicit Vb1Adapter(const EstimatorRequest& req)
      : est_(std::visit(
            [&](const auto& d) {
              return core::Vb1Estimator(req.alpha0, d, req.priors, req.vb1);
            },
            req.data)) {
    diag_.iterations =
        static_cast<std::uint64_t>(est_.diagnostics().iterations);
    diag_.converged = est_.diagnostics().converged;
  }

  std::string_view method() const override { return "vb1"; }
  bayes::PosteriorSummary summarize() const override {
    return est_.posterior().summary();
  }
  bayes::CredibleInterval interval_omega(double level) const override {
    return est_.posterior().interval_omega(level);
  }
  bayes::CredibleInterval interval_beta(double level) const override {
    return est_.posterior().interval_beta(level);
  }
  bayes::ReliabilityEstimate reliability(double u,
                                         double level) const override {
    return est_.posterior().reliability(u, level);
  }
  const core::GammaMixturePosterior* mixture() const override {
    return &est_.posterior();
  }

 private:
  core::Vb1Estimator est_;
};

class NintAdapter final : public Estimator {
 public:
  explicit NintAdapter(const EstimatorRequest& req)
      : est_(log_posterior_for(req), resolve_box(req, diag_), req.nint) {
    diag_.grid_points_per_axis = static_cast<std::uint64_t>(
        req.nint.panels) * static_cast<std::uint64_t>(req.nint.order);
  }

  std::string_view method() const override { return "nint"; }
  bayes::PosteriorSummary summarize() const override { return est_.summary(); }
  bayes::CredibleInterval interval_omega(double level) const override {
    return est_.interval_omega(level);
  }
  bayes::CredibleInterval interval_beta(double level) const override {
    return est_.interval_beta(level);
  }
  bayes::ReliabilityEstimate reliability(double u,
                                         double level) const override {
    return est_.reliability(u, level);
  }
  const bayes::NintEstimator& grid() const { return est_; }

 private:
  /// The paper's box-seeding dependency: without an explicit box, run
  /// VB2 on the same request and apply the quantile rule.
  static bayes::Box resolve_box(const EstimatorRequest& req,
                                Diagnostics& diag) {
    if (req.nint_box) return *req.nint_box;
    const core::Vb2Estimator vb2 = fit_vb2(req);
    diag.iterations = vb2.diagnostics().total_fixed_point_iterations;
    diag.n_max_used = vb2.diagnostics().n_max_used;
    diag.tail_mass_at_n_max = vb2.diagnostics().prob_at_n_max;
    return nint_box_from(vb2.posterior());
  }

  bayes::NintEstimator est_;
};

class LaplaceAdapter final : public Estimator {
 public:
  explicit LaplaceAdapter(const EstimatorRequest& req)
      : est_(log_posterior_for(req), req.laplace) {}

  std::string_view method() const override { return "laplace"; }
  bayes::PosteriorSummary summarize() const override { return est_.summary(); }
  bayes::CredibleInterval interval_omega(double level) const override {
    return est_.interval_omega(level);
  }
  bayes::CredibleInterval interval_beta(double level) const override {
    return est_.interval_beta(level);
  }
  bayes::ReliabilityEstimate reliability(double u,
                                         double level) const override {
    return est_.reliability(u, level);
  }
  const bayes::LaplaceEstimator& laplace() const { return est_; }

 private:
  bayes::LaplaceEstimator est_;
};

class McmcAdapter final : public Estimator {
 public:
  explicit McmcAdapter(const EstimatorRequest& req) {
    const McmcEngineOptions& opt = req.mcmc;
    if (opt.chains <= 1) {
      chain_ = std::visit(
          [&](const auto& d) {
            if constexpr (std::is_same_v<std::decay_t<decltype(d)>,
                                         data::GroupedData>) {
              return bayes::gibbs_grouped(req.alpha0, d, req.priors, opt.base);
            } else {
              return bayes::gibbs_failure_times(req.alpha0, d, req.priors,
                                                opt.base);
            }
          },
          req.data);
      diag_.chains = 1;
    } else {
      auto multi = std::visit(
          [&](const auto& d) {
            if constexpr (std::is_same_v<std::decay_t<decltype(d)>,
                                         data::GroupedData>) {
              return bayes::gibbs_grouped_chains(opt.chains, req.alpha0, d,
                                                 req.priors, opt.base,
                                                 opt.chain_threads);
            } else {
              return bayes::gibbs_failure_times_chains(
                  opt.chains, req.alpha0, d, req.priors, opt.base,
                  opt.chain_threads);
            }
          },
          req.data);
      diag_.converged = multi.converged(opt.rhat_threshold);
      diag_.chains = opt.chains;
      chain_ = std::move(multi.pooled);
    }
    diag_.chain_samples = chain_->size();
    diag_.variates = chain_->variates_generated();
  }

  std::string_view method() const override { return "mcmc"; }
  bayes::PosteriorSummary summarize() const override {
    return chain_->summary();
  }
  bayes::CredibleInterval interval_omega(double level) const override {
    return chain_->interval_omega(level);
  }
  bayes::CredibleInterval interval_beta(double level) const override {
    return chain_->interval_beta(level);
  }
  bayes::ReliabilityEstimate reliability(double u,
                                         double level) const override {
    return chain_->reliability(u, level);
  }
  const bayes::ChainResult& chain() const { return *chain_; }

 private:
  std::optional<bayes::ChainResult> chain_;
};

}  // namespace

std::unique_ptr<Estimator> make_vb2(const EstimatorRequest& req) {
  return std::make_unique<Vb2Adapter>(req);
}
std::unique_ptr<Estimator> make_vb1(const EstimatorRequest& req) {
  return std::make_unique<Vb1Adapter>(req);
}
std::unique_ptr<Estimator> make_nint(const EstimatorRequest& req) {
  return std::make_unique<NintAdapter>(req);
}
std::unique_ptr<Estimator> make_laplace(const EstimatorRequest& req) {
  return std::make_unique<LaplaceAdapter>(req);
}
std::unique_ptr<Estimator> make_mcmc(const EstimatorRequest& req) {
  return std::make_unique<McmcAdapter>(req);
}

}  // namespace adapters
}  // namespace vbsrm::engine
