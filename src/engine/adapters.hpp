// Concrete adapter factories for the five paper methods.  Exposed so
// the registry can seed itself deterministically on first use (static
// self-registration objects are unreliable inside static libraries);
// callers normally go through engine::make().
#pragma once

#include <memory>

#include "engine/estimator.hpp"

namespace vbsrm::engine::adapters {

std::unique_ptr<Estimator> make_vb2(const EstimatorRequest& req);
std::unique_ptr<Estimator> make_vb1(const EstimatorRequest& req);
std::unique_ptr<Estimator> make_nint(const EstimatorRequest& req);
std::unique_ptr<Estimator> make_laplace(const EstimatorRequest& req);
std::unique_ptr<Estimator> make_mcmc(const EstimatorRequest& req);

}  // namespace vbsrm::engine::adapters
