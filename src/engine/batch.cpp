#include "engine/batch.hpp"

#include <exception>
#include <thread>

#include "engine/registry.hpp"
#include "math/parallel.hpp"

namespace vbsrm::engine {

std::uint64_t derive_cell_seed(std::uint64_t base, std::uint64_t cell) {
  // splitmix64 finalizer over base + cell step; avoids low-entropy
  // consecutive seeds reaching the xoshiro state initializer directly.
  std::uint64_t z = base + (cell + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

BatchRunner::BatchRunner(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
}

std::vector<EstimationReport> BatchRunner::run(const BatchSpec& spec) const {
  return run(spec, nullptr);
}

std::vector<EstimationReport> BatchRunner::run(
    const BatchSpec& spec, const std::atomic<bool>* cancel) const {
  const std::size_t n_methods = spec.methods.size();
  const std::size_t n_requests = spec.requests.size();
  const std::size_t n_levels = spec.levels.size();
  const std::size_t n_cells = n_methods * n_requests;

  std::vector<EstimationReport> reports(n_cells * n_levels);
  if (reports.empty()) return reports;

  // One task per (method, request) cell: fit once, query every level.
  // Slots are preassigned, so writes never race and the output order
  // does not depend on scheduling.
  auto run_cell = [&](std::size_t cell) {
    const std::size_t mi = cell / n_requests;
    const std::size_t ri = cell % n_requests;
    const std::string& method = spec.methods[mi];

    if (cancel != nullptr && cancel->load()) {
      for (std::size_t li = 0; li < n_levels; ++li) {
        EstimationReport& out = reports[cell * n_levels + li];
        out.method = method;
        out.request_index = ri;
        out.level = spec.levels[li];
        out.error = "canceled";
      }
      return;
    }

    EstimatorRequest req = spec.requests[ri];
    if (spec.mcmc_seed_base != 0) {
      req.mcmc.base.seed = derive_cell_seed(spec.mcmc_seed_base, cell);
    }

    std::unique_ptr<Estimator> est;
    std::string error;
    try {
      est = make(method, req);
    } catch (const std::exception& e) {
      error = e.what();
    }

    for (std::size_t li = 0; li < n_levels; ++li) {
      EstimationReport& out = reports[cell * n_levels + li];
      out.method = method;
      out.request_index = ri;
      out.level = spec.levels[li];
      if (!est) {
        out.error = error.empty() ? "estimator construction failed" : error;
        continue;
      }
      try {
        out.summary = est->summarize();
        out.omega_interval = est->interval_omega(out.level);
        out.beta_interval = est->interval_beta(out.level);
        out.reliability.reserve(spec.reliability_windows.size());
        for (double u : spec.reliability_windows) {
          out.reliability.push_back(est->reliability(u, out.level));
        }
        out.diagnostics = est->diagnostics();
        out.ok = true;
      } catch (const std::exception& e) {
        out.ok = false;
        out.error = e.what();
      }
    }
  };

  // Shared work-queue pool (math/parallel.hpp); per-cell exceptions are
  // already captured into the report, so nothing propagates from here.
  math::parallel_for(n_cells, threads_, run_cell);
  return reports;
}

}  // namespace vbsrm::engine
