// String-keyed estimator registry/factory.  The five paper methods are
// pre-registered; new methods are one `register_method` call away:
//
//   engine::register_method("profile", [](const EstimatorRequest& r) {
//     return std::make_unique<MyProfileAdapter>(r);
//   });
//   auto est = engine::make("profile", req);
//
// Lookup is case-insensitive ("VB2" == "vb2"); unknown names raise
// std::invalid_argument listing what is registered.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/estimator.hpp"

namespace vbsrm::engine {

using EstimatorFactory =
    std::function<std::unique_ptr<Estimator>(const EstimatorRequest&)>;

/// Register a method under `name` (lower-cased).  Returns false and
/// leaves the registry unchanged if the name is already taken.
bool register_method(const std::string& name, EstimatorFactory factory);

/// True if `name` resolves to a registered method.
bool is_registered(std::string_view name);

/// Registered method names, sorted ("laplace", "mcmc", "nint", "vb1",
/// "vb2" plus any user registrations).  The single source of truth for
/// method enumeration: the serving layer's GET /v1/methods and the
/// unknown-method error message of engine::make both read from here.
std::vector<std::string> registered_methods();

/// Back-compat alias for registered_methods().
std::vector<std::string> method_names();

/// Construct-and-fit the named estimator on the request.  Construction
/// wall time is stamped into `diagnostics().wall_time_ms`.
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<Estimator> make(std::string_view name,
                                const EstimatorRequest& req);

}  // namespace vbsrm::engine
