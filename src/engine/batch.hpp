// Parallel batch evaluation of a (method x request x level) grid — the
// paper's entire evaluation protocol as one call:
//
//   BatchSpec spec;
//   spec.methods  = engine::method_names();
//   spec.requests = {dt_info, dt_noinfo, dg_info, dg_noinfo};
//   spec.levels   = {0.99};
//   auto reports  = BatchRunner(4).run(spec);
//
// Each (method, request) pair is fitted exactly once by a worker-pool
// thread, then queried at every level; reports come back in the fixed
// order methods-major, requests-middle, levels-minor regardless of
// scheduling.  MCMC seeds are derived per cell from `mcmc_seed_base`
// (splitmix64 of the cell index), so a parallel run is bit-identical to
// a serial run and to any other thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/estimator.hpp"

namespace vbsrm::engine {

struct BatchSpec {
  std::vector<std::string> methods;
  std::vector<EstimatorRequest> requests;
  std::vector<double> levels{0.99};
  /// Reliability windows u; one ReliabilityEstimate per window in each
  /// report (empty = skip reliability).
  std::vector<double> reliability_windows;
  /// Base for per-cell MCMC seed derivation; 0 keeps each request's own
  /// `mcmc.base.seed` unchanged.
  std::uint64_t mcmc_seed_base = 0;
};

/// One grid cell's results.  `ok == false` means the estimator threw;
/// `error` carries the message and the numeric fields stay zeroed.
struct EstimationReport {
  std::string method;
  std::size_t request_index = 0;
  double level = 0.0;
  bool ok = false;
  std::string error;

  bayes::PosteriorSummary summary;
  bayes::CredibleInterval omega_interval;
  bayes::CredibleInterval beta_interval;
  std::vector<bayes::ReliabilityEstimate> reliability;  // per window
  Diagnostics diagnostics;
};

/// Deterministic MCMC seed for a (method, request) cell: splitmix64 of
/// the base and the cell's position in the grid.
std::uint64_t derive_cell_seed(std::uint64_t base, std::uint64_t cell);

class BatchRunner {
 public:
  /// `threads == 0` picks std::thread::hardware_concurrency().
  explicit BatchRunner(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Evaluate the grid; report order is deterministic (methods-major,
  /// then requests, then levels) and independent of the thread count.
  std::vector<EstimationReport> run(const BatchSpec& spec) const;

  /// Cancellable variant for callers with deadlines (the serving
  /// layer): cells that have not started when `*cancel` becomes true
  /// are skipped and reported as `ok == false, error == "canceled"`;
  /// cells already fitting run to completion.  `cancel == nullptr`
  /// behaves exactly like run(spec).
  std::vector<EstimationReport> run(const BatchSpec& spec,
                                    const std::atomic<bool>* cancel) const;

 private:
  unsigned threads_;
};

}  // namespace vbsrm::engine
