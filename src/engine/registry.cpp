#include "engine/registry.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <map>
#include <sstream>

#include "engine/adapters.hpp"
#include "math/thread_annotations.hpp"

namespace vbsrm::engine {

namespace {

std::string lowered(std::string_view name) {
  std::string out(name);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

struct Registry {
  math::Mutex mutex;
  std::map<std::string, EstimatorFactory> factories GUARDED_BY(mutex);

  Registry() NO_THREAD_SAFETY_ANALYSIS {
    factories["vb2"] = adapters::make_vb2;
    factories["vb1"] = adapters::make_vb1;
    factories["nint"] = adapters::make_nint;
    factories["laplace"] = adapters::make_laplace;
    factories["mcmc"] = adapters::make_mcmc;
  }
};

Registry& registry() {
  static Registry r;  // seeded with the paper's five methods
  return r;
}

std::vector<std::string> names_locked(const Registry& r)
    REQUIRES(r.mutex) {
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, factory] : r.factories) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

}  // namespace

bool register_method(const std::string& name, EstimatorFactory factory) {
  if (name.empty() || !factory) return false;
  Registry& r = registry();
  const math::MutexLock lock(r.mutex);
  return r.factories.emplace(lowered(name), std::move(factory)).second;
}

bool is_registered(std::string_view name) {
  Registry& r = registry();
  const math::MutexLock lock(r.mutex);
  return r.factories.count(lowered(name)) != 0;
}

std::vector<std::string> registered_methods() {
  Registry& r = registry();
  const math::MutexLock lock(r.mutex);
  return names_locked(r);
}

std::vector<std::string> method_names() { return registered_methods(); }

std::unique_ptr<Estimator> make(std::string_view name,
                                const EstimatorRequest& req) {
  EstimatorFactory factory;
  {
    Registry& r = registry();
    const math::MutexLock lock(r.mutex);
    const auto it = r.factories.find(lowered(name));
    if (it == r.factories.end()) {
      std::ostringstream msg;
      msg << "engine::make: unknown method \"" << std::string(name)
          << "\"; registered:";
      for (const auto& known : names_locked(r)) msg << ' ' << known;
      throw std::invalid_argument(msg.str());
    }
    factory = it->second;
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::unique_ptr<Estimator> est = factory(req);
  const auto t1 = std::chrono::steady_clock::now();
  if (est) {
    est->set_wall_time_ms(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return est;
}

}  // namespace vbsrm::engine
