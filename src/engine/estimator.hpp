// Unified estimation engine (paper Sec. 4-6 as one API).
//
// The paper's contribution is a *comparison* of five posterior
// approximations — NINT, Laplace, MCMC, VB1, VB2 — on identical data.
// This layer gives them one polymorphic face:
//
//   engine::EstimatorRequest req = ...;        // model + data + priors
//   auto est = engine::make("vb2", req);       // string-keyed registry
//   auto s   = est->summarize();
//   auto ci  = est->interval_omega(0.99);
//   auto r   = est->reliability(1000.0, 0.99);
//
// The adapters wrap the concrete estimators in src/core and src/bayes
// without re-deriving anything; in particular the paper's VB2 -> NINT
// integration-box seeding (box = [q0.5%/2, q99.5%*1.5] of the VB2
// posterior) lives inside the NINT adapter instead of being copy-pasted
// at every call site.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <variant>

#include "bayes/chain.hpp"
#include "bayes/laplace.hpp"
#include "bayes/nint.hpp"
#include "bayes/prior.hpp"
#include "bayes/summary.hpp"
#include "core/gamma_mixture.hpp"
#include "core/vb1.hpp"
#include "core/vb2.hpp"
#include "data/failure_data.hpp"

namespace vbsrm::engine {

/// What a fit actually cost and used, uniformly across methods.  Fields
/// irrelevant to a method stay at their zero defaults.
struct Diagnostics {
  double wall_time_ms = 0.0;          // construction/fit wall time
  std::uint64_t iterations = 0;       // fixed-point / coordinate-ascent
  bool converged = true;              // iterative methods only
  // VB2 (and the VB2 run seeding a NINT box):
  std::uint64_t n_max_used = 0;       // truncation point actually used
  double tail_mass_at_n_max = 0.0;    // Pv(n_max) after normalization
  // NINT:
  std::uint64_t grid_points_per_axis = 0;
  // MCMC:
  std::uint64_t chain_samples = 0;    // collected (post burn-in/thin)
  std::uint64_t variates = 0;         // total random variates generated
  int chains = 0;
};

/// MCMC knobs beyond bayes::McmcOptions: how many independent chains to
/// pool (>1 enables the Gelman-Rubin check in `Diagnostics::converged`).
struct McmcEngineOptions {
  bayes::McmcOptions base;
  int chains = 1;
  double rhat_threshold = 1.01;
  /// Worker threads for multi-chain runs (1 = serial, 0 = hardware);
  /// any value gives bit-identical pooled draws.
  unsigned chain_threads = 1;
};

/// Everything needed to fit any method on any dataset: model family
/// (alpha0), observation scheme (failure-time or grouped), priors, and
/// the per-method option blocks.  A request is method-agnostic; the
/// registry picks the block the chosen adapter needs.
struct EstimatorRequest {
  double alpha0 = 1.0;  // gamma-type shape: 1 = Goel-Okumoto, 2 = S-shaped
  std::variant<data::FailureTimeData, data::GroupedData> data;
  bayes::PriorPair priors;

  core::Vb2Options vb2;
  core::Vb1Options vb1;
  bayes::NintOptions nint;
  /// Explicit NINT integration box; when absent the adapter runs VB2
  /// with the request's `vb2` options and applies the paper's quantile
  /// rule (the VB2 -> NINT seeding dependency).
  std::optional<bayes::Box> nint_box;
  bayes::LaplaceOptions laplace;
  McmcEngineOptions mcmc;

  EstimatorRequest(double a0, data::FailureTimeData d, bayes::PriorPair p)
      : alpha0(a0), data(std::move(d)), priors(p) {}
  EstimatorRequest(double a0, data::GroupedData d, bayes::PriorPair p)
      : alpha0(a0), data(std::move(d)), priors(p) {}

  bool grouped() const {
    return std::holds_alternative<data::GroupedData>(data);
  }
  /// Observation horizon t_e or s_k.
  double horizon() const;
  /// Observed failure count m / M.
  std::size_t failures() const;
};

/// Polymorphic estimator: the five methods of the paper behind one
/// interface, each answering the paper's three questions — moments
/// (Table 1), credible intervals (Tables 2-3), reliability (Tables 4-5).
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Canonical registry key ("vb2", "nint", ...).
  virtual std::string_view method() const = 0;

  virtual bayes::PosteriorSummary summarize() const = 0;
  virtual bayes::CredibleInterval interval_omega(double level) const = 0;
  virtual bayes::CredibleInterval interval_beta(double level) const = 0;
  /// Software reliability R(t_e + u | t_e), point + two-sided interval.
  virtual bayes::ReliabilityEstimate reliability(double u,
                                                 double level) const = 0;

  /// The closed-form mixture posterior, when the method has one (VB1,
  /// VB2); nullptr otherwise.  Lets callers reach the predictive /
  /// residual-fault machinery without downcasting.
  virtual const core::GammaMixturePosterior* mixture() const {
    return nullptr;
  }

  const Diagnostics& diagnostics() const { return diag_; }
  /// Engine-internal: the registry stamps construction wall time here.
  void set_wall_time_ms(double ms) { diag_.wall_time_ms = ms; }

 protected:
  Diagnostics diag_;
};

/// Build the shared unnormalized log posterior for a request (used by
/// the NINT/Laplace adapters and exposed for callers that need it).
bayes::LogPosterior log_posterior_for(const EstimatorRequest& req);

/// The paper's NINT box rule applied to a VB2 posterior:
/// [q0.5%/2, q99.5%*1.5] per parameter.
bayes::Box nint_box_from(const core::GammaMixturePosterior& posterior);

}  // namespace vbsrm::engine
