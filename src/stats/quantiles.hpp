// Empirical quantiles and distribution-function utilities.  The MCMC
// estimators derive credible intervals from order statistics exactly the
// way the paper does (e.g. the 500th smallest of 20000 samples for the
// 2.5% point).
#pragma once

#include <span>
#include <vector>

namespace vbsrm::stats {

/// Order-statistic quantile: the ceil(p*n)-th smallest sample (1-based),
/// matching the paper's MCMC interval rule.  p in (0, 1].
double order_statistic_quantile(std::span<const double> x, double p);

/// Interpolating quantile (R type-7).  p in [0, 1].
double quantile_type7(std::span<const double> x, double p);

/// Empirical CDF value at t: fraction of samples <= t.
double ecdf(std::span<const double> x, double t);

/// All requested quantiles in one sort.
std::vector<double> quantiles(std::span<const double> x,
                              std::span<const double> ps,
                              bool order_statistic = true);

}  // namespace vbsrm::stats
