#include "stats/gof.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/specfun.hpp"

namespace vbsrm::stats {

KsResult ks_test(std::span<const double> x,
                 const std::function<double(double)>& cdf) {
  if (x.empty()) throw std::invalid_argument("ks_test: empty sample");
  std::vector<double> s(x.begin(), x.end());
  std::sort(s.begin(), s.end());
  const double n = static_cast<double>(s.size());
  double d = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double f = cdf(s[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(f - lo), std::abs(hi - f)});
  }
  return {d, kolmogorov_pvalue(d, s.size())};
}

double kolmogorov_pvalue(double d, std::size_t n) {
  // Asymptotic series with the Stephens small-sample correction.
  const double sn = std::sqrt(static_cast<double>(n));
  const double t = d * (sn + 0.12 + 0.11 / sn);
  if (t < 1e-3) return 1.0;
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = 2.0 * std::pow(-1.0, k - 1) *
                        std::exp(-2.0 * k * k * t * t);
    sum += term;
    if (std::abs(term) < 1e-12) break;
  }
  return std::clamp(sum, 0.0, 1.0);
}

ChiSquareResult chi_square_test(std::span<const double> observed,
                                std::span<const double> expected,
                                int fitted_params, double min_expected) {
  if (observed.size() != expected.size() || observed.empty()) {
    throw std::invalid_argument("chi_square_test: size mismatch/empty");
  }
  // Pool small-expectation bins left to right.
  std::vector<double> obs, exp;
  double po = 0.0, pe = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    po += observed[i];
    pe += expected[i];
    if (pe >= min_expected) {
      obs.push_back(po);
      exp.push_back(pe);
      po = pe = 0.0;
    }
  }
  if (pe > 0.0 || po > 0.0) {  // leftover pooled into the last bin
    if (obs.empty()) {
      obs.push_back(po);
      exp.push_back(pe);
    } else {
      obs.back() += po;
      exp.back() += pe;
    }
  }
  double stat = 0.0;
  for (std::size_t i = 0; i < obs.size(); ++i) {
    if (exp[i] <= 0.0) continue;
    const double diff = obs[i] - exp[i];
    stat += diff * diff / exp[i];
  }
  const int dof = std::max(1, static_cast<int>(obs.size()) - 1 - fitted_params);
  return {stat, dof, chi_square_sf(stat, dof)};
}

double chi_square_sf(double x, int k) {
  if (x <= 0.0) return 1.0;
  return vbsrm::math::gamma_q(0.5 * k, 0.5 * x);
}

}  // namespace vbsrm::stats
