#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace vbsrm::stats {

Histogram1D::Histogram1D(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / bins) {
  if (!(hi > lo) || bins < 1) throw std::invalid_argument("Histogram1D: bad args");
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram1D::add(double x) {
  if (x < lo_ || x >= hi_) return;  // out-of-range values are dropped
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  counts_[std::min(bin, counts_.size() - 1)] += 1;
  ++total_;
}

void Histogram1D::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram1D::bin_center(int bin) const {
  return lo_ + (bin + 0.5) * width_;
}

double Histogram1D::density(int bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) /
         (static_cast<double>(total_) * width_);
}

Histogram2D::Histogram2D(double xlo, double xhi, int xbins, double ylo,
                         double yhi, int ybins)
    : xlo_(xlo), xhi_(xhi), ylo_(ylo), yhi_(yhi),
      xw_((xhi - xlo) / xbins), yw_((yhi - ylo) / ybins),
      xbins_(xbins), ybins_(ybins) {
  if (!(xhi > xlo) || !(yhi > ylo) || xbins < 1 || ybins < 1) {
    throw std::invalid_argument("Histogram2D: bad args");
  }
  counts_.assign(static_cast<std::size_t>(xbins) * ybins, 0);
}

void Histogram2D::add(double x, double y) {
  if (x < xlo_ || x >= xhi_ || y < ylo_ || y >= yhi_) return;
  const auto ix = std::min(static_cast<std::size_t>((x - xlo_) / xw_),
                           static_cast<std::size_t>(xbins_ - 1));
  const auto iy = std::min(static_cast<std::size_t>((y - ylo_) / yw_),
                           static_cast<std::size_t>(ybins_ - 1));
  counts_[ix * static_cast<std::size_t>(ybins_) + iy] += 1;
  ++total_;
}

void Histogram2D::add_all(std::span<const double> xs,
                          std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("add_all: size mismatch");
  for (std::size_t i = 0; i < xs.size(); ++i) add(xs[i], ys[i]);
}

std::size_t Histogram2D::count(int ix, int iy) const {
  return counts_.at(static_cast<std::size_t>(ix) * ybins_ +
                    static_cast<std::size_t>(iy));
}

double Histogram2D::x_center(int ix) const { return xlo_ + (ix + 0.5) * xw_; }
double Histogram2D::y_center(int iy) const { return ylo_ + (iy + 0.5) * yw_; }

double Histogram2D::density(int ix, int iy) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(ix, iy)) /
         (static_cast<double>(total_) * xw_ * yw_);
}

std::string Histogram2D::to_csv() const {
  std::ostringstream os;
  os << "x,y,density\n";
  for (int i = 0; i < xbins_; ++i) {
    for (int j = 0; j < ybins_; ++j) {
      os << x_center(i) << ',' << y_center(j) << ',' << density(i, j) << '\n';
    }
  }
  return os.str();
}

std::string ascii_contour(const std::vector<std::vector<double>>& grid,
                          int levels) {
  if (grid.empty() || grid.front().empty()) return "";
  std::vector<double> positive;
  for (const auto& row : grid) {
    for (double v : row) {
      if (v > 0.0) positive.push_back(v);
    }
  }
  if (positive.empty()) return "";
  std::sort(positive.begin(), positive.end());
  const double vmax = positive.back();
  // Level thresholds: geometric bands below the max.
  std::vector<double> thresh;
  for (int l = levels; l >= 1; --l) {
    thresh.push_back(vmax * std::pow(10.0, -0.6 * l));
  }
  static const char glyphs[] = " .:-=+*#%@";
  std::ostringstream os;
  for (auto it = grid.rbegin(); it != grid.rend(); ++it) {  // top-down
    for (double v : *it) {
      int g = 0;
      for (std::size_t k = 0; k < thresh.size(); ++k) {
        if (v >= thresh[k]) g = static_cast<int>(k) + 1;
      }
      if (v >= 0.5 * vmax) g = 9;
      os << glyphs[std::min(g, 9)];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace vbsrm::stats
