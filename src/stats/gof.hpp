// Goodness-of-fit machinery: one-sample Kolmogorov-Smirnov and
// chi-square tests.  Used to check how well a fitted NHPP describes a
// data set (the paper's observation that System 17's grouped data fit
// the Goel-Okumoto model poorly drives the D_G-NoInfo instability).
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace vbsrm::stats {

struct KsResult {
  double statistic = 0.0;  // sup |F_n - F|
  double p_value = 0.0;    // asymptotic Kolmogorov distribution
};

/// One-sample KS test of sorted-or-not samples against a cdf.
KsResult ks_test(std::span<const double> x,
                 const std::function<double(double)>& cdf);

/// Asymptotic Kolmogorov distribution complement: P(sqrt(n) D > t).
double kolmogorov_pvalue(double d, std::size_t n);

struct ChiSquareResult {
  double statistic = 0.0;
  int dof = 0;
  double p_value = 0.0;
};

/// Chi-square GOF for binned counts vs expected counts.  `fitted_params`
/// reduces the degrees of freedom.  Bins with expected < min_expected
/// are pooled with their right neighbor.
ChiSquareResult chi_square_test(std::span<const double> observed,
                                std::span<const double> expected,
                                int fitted_params = 0,
                                double min_expected = 5.0);

/// Upper tail of the chi-square distribution with k dof at x.
double chi_square_sf(double x, int k);

}  // namespace vbsrm::stats
