#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vbsrm::stats {

double mean(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("mean: empty sample");
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  if (x.size() < 2) throw std::invalid_argument("variance: need n >= 2");
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size() - 1);
}

double covariance(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("covariance: need equal sizes, n >= 2");
  }
  const double mx = mean(x), my = mean(y);
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += (x[i] - mx) * (y[i] - my);
  return s / static_cast<double>(x.size() - 1);
}

double central_moment(std::span<const double> x, int k) {
  if (x.empty()) throw std::invalid_argument("central_moment: empty sample");
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += std::pow(v - m, k);
  return s / static_cast<double>(x.size());
}

double skewness(std::span<const double> x) {
  const double m2 = central_moment(x, 2);
  if (m2 <= 0.0) return 0.0;
  return central_moment(x, 3) / std::pow(m2, 1.5);
}

double weighted_mean(std::span<const double> x, std::span<const double> w) {
  if (x.size() != w.size() || x.empty()) {
    throw std::invalid_argument("weighted_mean: size mismatch/empty");
  }
  double sw = 0.0, s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (w[i] < 0.0) throw std::invalid_argument("weighted_mean: w < 0");
    sw += w[i];
    s += w[i] * x[i];
  }
  if (sw <= 0.0) throw std::invalid_argument("weighted_mean: zero weight");
  return s / sw;
}

double weighted_variance(std::span<const double> x,
                         std::span<const double> w) {
  const double m = weighted_mean(x, w);
  double sw = 0.0, s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sw += w[i];
    s += w[i] * (x[i] - m) * (x[i] - m);
  }
  return s / sw;
}

Summary summarize(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("summarize: empty sample");
  Summary s;
  s.n = x.size();
  s.mean = mean(x);
  s.variance = x.size() > 1 ? variance(x) : 0.0;
  s.sd = std::sqrt(s.variance);
  const auto [lo, hi] = std::minmax_element(x.begin(), x.end());
  s.min = *lo;
  s.max = *hi;
  return s;
}

}  // namespace vbsrm::stats
