#include "stats/quantiles.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vbsrm::stats {

namespace {

std::vector<double> sorted_copy(std::span<const double> x) {
  std::vector<double> s(x.begin(), x.end());
  std::sort(s.begin(), s.end());
  return s;
}

double order_statistic_from_sorted(const std::vector<double>& s, double p) {
  const std::size_t n = s.size();
  // The 1e-9 guard keeps p*n values that are integers up to floating-
  // point noise (e.g. 0.5*(1-0.98)*1000) from spilling into the next
  // order statistic.
  std::size_t k = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(n) - 1e-9));
  if (k < 1) k = 1;
  if (k > n) k = n;
  return s[k - 1];
}

double type7_from_sorted(const std::vector<double>& s, double p) {
  const std::size_t n = s.size();
  if (n == 1) return s[0];
  const double h = (static_cast<double>(n) - 1.0) * p;
  const std::size_t lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = h - static_cast<double>(lo);
  return s[lo] + frac * (s[hi] - s[lo]);
}

}  // namespace

double order_statistic_quantile(std::span<const double> x, double p) {
  if (x.empty()) throw std::invalid_argument("quantile: empty sample");
  if (!(p > 0.0) || p > 1.0) throw std::invalid_argument("quantile: bad p");
  return order_statistic_from_sorted(sorted_copy(x), p);
}

double quantile_type7(std::span<const double> x, double p) {
  if (x.empty()) throw std::invalid_argument("quantile: empty sample");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("quantile: bad p");
  return type7_from_sorted(sorted_copy(x), p);
}

double ecdf(std::span<const double> x, double t) {
  if (x.empty()) throw std::invalid_argument("ecdf: empty sample");
  std::size_t count = 0;
  for (double v : x) {
    if (v <= t) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(x.size());
}

std::vector<double> quantiles(std::span<const double> x,
                              std::span<const double> ps,
                              bool order_statistic) {
  if (x.empty()) throw std::invalid_argument("quantiles: empty sample");
  const auto s = sorted_copy(x);
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) {
    out.push_back(order_statistic ? order_statistic_from_sorted(s, p)
                                  : type7_from_sorted(s, p));
  }
  return out;
}

}  // namespace vbsrm::stats
