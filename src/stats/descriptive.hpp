// Descriptive statistics over samples and over weighted discrete
// distributions (the VB mixture posterior reports weighted moments).
#pragma once

#include <span>
#include <vector>

namespace vbsrm::stats {

double mean(std::span<const double> x);

/// Unbiased (n-1) sample variance.
double variance(std::span<const double> x);

/// Unbiased sample covariance of two equal-length samples.
double covariance(std::span<const double> x, std::span<const double> y);

/// Sample skewness (biased, moment estimator m3 / m2^{3/2}).
double skewness(std::span<const double> x);

/// k-th central moment (biased, 1/n normalization).
double central_moment(std::span<const double> x, int k);

/// Weighted mean with nonnegative weights (need not be normalized).
double weighted_mean(std::span<const double> x, std::span<const double> w);

/// Weighted population variance around the weighted mean.
double weighted_variance(std::span<const double> x, std::span<const double> w);

struct Summary {
  double mean = 0.0;
  double variance = 0.0;
  double sd = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;
};

Summary summarize(std::span<const double> x);

}  // namespace vbsrm::stats
