// 1-D and 2-D histograms.  The 2-D histogram renders the MCMC scatter
// density used in the paper's Figure 1, and both power the contour /
// CSV outputs of the figure bench.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace vbsrm::stats {

class Histogram1D {
 public:
  Histogram1D(double lo, double hi, int bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  int bins() const { return static_cast<int>(counts_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t count(int bin) const { return counts_.at(static_cast<std::size_t>(bin)); }
  std::size_t total() const { return total_; }
  double bin_center(int bin) const;
  /// Density estimate: count / (total * bin_width).
  double density(int bin) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

class Histogram2D {
 public:
  Histogram2D(double xlo, double xhi, int xbins, double ylo, double yhi,
              int ybins);

  void add(double x, double y);
  void add_all(std::span<const double> xs, std::span<const double> ys);

  int xbins() const { return xbins_; }
  int ybins() const { return ybins_; }
  std::size_t count(int ix, int iy) const;
  std::size_t total() const { return total_; }
  double x_center(int ix) const;
  double y_center(int iy) const;
  double density(int ix, int iy) const;

  /// Render as CSV: header "x,y,density" then one row per cell.
  std::string to_csv() const;

 private:
  double xlo_, xhi_, ylo_, yhi_, xw_, yw_;
  int xbins_, ybins_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// ASCII contour rendering of a density grid (rows printed top-down);
/// levels are quantile bands of the positive values.  Shared by the
/// figure bench for quick terminal inspection.
std::string ascii_contour(const std::vector<std::vector<double>>& grid,
                          int levels = 6);

}  // namespace vbsrm::stats
