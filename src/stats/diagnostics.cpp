#include "stats/diagnostics.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace vbsrm::stats {

std::vector<double> autocorrelation(std::span<const double> x, int max_lag) {
  const std::size_t n = x.size();
  if (n < 2) throw std::invalid_argument("autocorrelation: need n >= 2");
  if (max_lag < 0 || static_cast<std::size_t>(max_lag) >= n) {
    throw std::invalid_argument("autocorrelation: bad max_lag");
  }
  const double m = mean(x);
  double c0 = 0.0;
  for (double v : x) c0 += (v - m) * (v - m);
  c0 /= static_cast<double>(n);
  std::vector<double> rho(static_cast<std::size_t>(max_lag) + 1, 0.0);
  rho[0] = 1.0;
  if (c0 <= 0.0) return rho;  // constant chain
  for (int k = 1; k <= max_lag; ++k) {
    double ck = 0.0;
    for (std::size_t i = 0; i + k < n; ++i) {
      ck += (x[i] - m) * (x[i + k] - m);
    }
    ck /= static_cast<double>(n);
    rho[static_cast<std::size_t>(k)] = ck / c0;
  }
  return rho;
}

double effective_sample_size(std::span<const double> x) {
  const std::size_t n = x.size();
  if (n < 4) return static_cast<double>(n);
  const int max_lag = static_cast<int>(std::min<std::size_t>(n - 2, 2000));
  const auto rho = autocorrelation(x, max_lag);
  // Geyer initial positive sequence: sum pairs rho[2k-1]+rho[2k] while
  // positive.
  double tau = 1.0;
  for (int k = 1; k + 1 <= max_lag; k += 2) {
    const double pair = rho[static_cast<std::size_t>(k)] +
                        rho[static_cast<std::size_t>(k + 1)];
    if (pair <= 0.0) break;
    tau += 2.0 * pair;
  }
  return static_cast<double>(n) / tau;
}

double geweke_z(std::span<const double> x, double first_frac,
                double last_frac) {
  const std::size_t n = x.size();
  if (n < 20) throw std::invalid_argument("geweke_z: chain too short");
  if (first_frac <= 0.0 || last_frac <= 0.0 ||
      first_frac + last_frac >= 1.0) {
    throw std::invalid_argument("geweke_z: bad fractions");
  }
  const std::size_t na = static_cast<std::size_t>(first_frac * n);
  const std::size_t nb = static_cast<std::size_t>(last_frac * n);
  auto a = x.subspan(0, na);
  auto b = x.subspan(n - nb, nb);
  const double ma = mean(a), mb = mean(b);
  // Variance of the mean estimated with ESS to account for
  // autocorrelation within each window.
  const double va = variance(a) / effective_sample_size(a);
  const double vb = variance(b) / effective_sample_size(b);
  return (ma - mb) / std::sqrt(va + vb);
}

double split_rhat(std::span<const double> x, int splits) {
  if (splits < 2) throw std::invalid_argument("split_rhat: splits >= 2");
  const std::size_t n = x.size();
  const std::size_t per = n / static_cast<std::size_t>(splits);
  if (per < 2) throw std::invalid_argument("split_rhat: chain too short");
  std::vector<double> chain_means, chain_vars;
  for (int c = 0; c < splits; ++c) {
    auto seg = x.subspan(static_cast<std::size_t>(c) * per, per);
    chain_means.push_back(mean(seg));
    chain_vars.push_back(variance(seg));
  }
  const double w = mean(chain_vars);
  const double b = variance(chain_means) * static_cast<double>(per);
  const double var_plus =
      (static_cast<double>(per) - 1.0) / static_cast<double>(per) * w +
      b / static_cast<double>(per);
  if (w <= 0.0) return 1.0;
  return std::sqrt(var_plus / w);
}

}  // namespace vbsrm::stats
