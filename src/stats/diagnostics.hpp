// MCMC convergence diagnostics: autocorrelation, effective sample size,
// Geweke's z-score, and the (split-chain) Gelman-Rubin statistic.
#pragma once

#include <span>
#include <vector>

namespace vbsrm::stats {

/// Sample autocorrelation at the given lags (lag 0 == 1).
std::vector<double> autocorrelation(std::span<const double> x, int max_lag);

/// Effective sample size via Geyer's initial positive sequence of
/// summed autocorrelation pairs.
double effective_sample_size(std::span<const double> x);

/// Geweke convergence z-score comparing the mean of the first
/// `first_frac` of the chain against the last `last_frac` (spectral
/// variance approximated by batch variance).
double geweke_z(std::span<const double> x, double first_frac = 0.1,
                double last_frac = 0.5);

/// Split-chain potential scale reduction factor (R-hat).  The chain is
/// split into `splits` equal pieces which are treated as parallel
/// chains; values near 1 indicate convergence.
double split_rhat(std::span<const double> x, int splits = 4);

}  // namespace vbsrm::stats
