// The estimation service, sockets excluded.
//
// Service::handle maps one logical request (method + target + JSON
// body) to one response; the HTTP layer in serve/http.hpp is a thin
// wire adapter around it, and the tests drive this class directly.
//
// Routes:
//   POST /v1/estimate  dataset + method + options -> moments, credible
//                      intervals, reliability (one engine::make fit)
//   POST /v1/batch     method x level grid -> engine::BatchRunner
//   GET  /v1/methods   engine::registered_methods()
//   GET  /healthz      liveness probe
//   GET  /metrics      counters, latency histogram, cache + queue state
//
// Concurrency model: handle() may be called from any number of I/O
// threads; estimation work is pushed onto a bounded queue served by a
// fixed worker pool.  A full queue answers 503 + Retry-After
// immediately (backpressure, never unbounded blocking), and each
// request carries a deadline — when it expires while the job is still
// queued or running, the caller gets 504 and a still-queued job is
// skipped instead of burning a worker for nobody.
//
// Caching: estimate responses are stored in a sharded LRU keyed by the
// canonical serialization of (dataset, method, options); hits return
// the exact bytes the miss produced (X-Cache: hit|miss tells them
// apart, the body never differs).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/estimator.hpp"
#include "math/thread_annotations.hpp"
#include "serve/cache.hpp"
#include "serve/json.hpp"
#include "stats/histogram.hpp"

namespace vbsrm::serve {

struct ServiceOptions {
  unsigned workers = 0;              // estimation workers; 0 = hardware
  std::size_t queue_capacity = 64;   // jobs waiting beyond the workers
  std::size_t cache_capacity = 256;  // cached estimate responses
  std::size_t cache_shards = 8;
  double default_deadline_ms = 30000.0;
  double retry_after_s = 1.0;        // hint sent with every 503
  unsigned batch_threads = 1;        // BatchRunner width inside one job
  std::size_t max_body_bytes = 8u << 20;
};

/// A transport-agnostic request: the HTTP layer fills this from the
/// wire, tests construct it directly.
struct Request {
  std::string method;        // "GET" / "POST"
  std::string target;        // path, query string ignored
  std::string body;
  double deadline_ms = 0.0;  // <= 0 picks ServiceOptions::default_deadline_ms
};

struct Response {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

/// What /v1/estimate answers for one fitted estimator; shared with the
/// CLI's --json mode so both front ends emit one schema.
struct EstimateQuery {
  std::string method = "vb2";
  double level = 0.99;
  std::vector<double> reliability_windows;
};

/// Build the estimate response document (summary, intervals,
/// reliability per window, diagnostics).  Deterministic for a
/// deterministic estimator: wall-clock fields are deliberately
/// excluded so cache hits and misses are byte-identical.
json::Value estimate_response(const engine::Estimator& est,
                              const EstimateQuery& query);

struct LatencyBucket {
  double lo_ms = 0.0;
  double hi_ms = 0.0;
  std::uint64_t count = 0;
};

struct MetricsSnapshot {
  std::uint64_t requests_total = 0;
  std::uint64_t estimate_requests = 0;
  std::uint64_t batch_requests = 0;
  std::uint64_t methods_requests = 0;
  std::uint64_t healthz_requests = 0;
  std::uint64_t metrics_requests = 0;
  std::uint64_t unmatched_requests = 0;  // 404/405
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t queue_full_503 = 0;
  std::uint64_t deadline_504 = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t cache_entries = 0;
  std::size_t cache_capacity = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t in_flight = 0;
  unsigned workers = 0;
  std::uint64_t latency_count = 0;
  std::vector<LatencyBucket> latency;  // non-empty bins only
};

class Service {
 public:
  explicit Service(ServiceOptions opt = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Thread-safe request dispatch.
  Response handle(const Request& req);

  MetricsSnapshot metrics_snapshot() const;
  std::size_t queue_depth() const;
  const ServiceOptions& options() const { return opt_; }

  /// Drain: stop admitting work, let the workers finish every queued
  /// job, join them.  Idempotent; handle() answers 503 afterwards.
  void shutdown();

  /// Canonical cache key for an estimate body (exposed for tests):
  /// the compact serialization of the normalized request document.
  /// Throws the same errors handle() maps to 400.
  std::string canonical_estimate_key(const std::string& body) const;

 private:
  struct Job {
    // `work` receives the job's abandoned flag so long-running work
    // (batch grids) can cancel mid-flight after the waiter gave up.
    std::function<Response(const std::atomic<bool>&)> work;
    std::promise<Response> promise;
    std::shared_ptr<std::atomic<bool>> abandoned;
  };

  Response route(const Request& req);
  Response handle_estimate(const Request& req);
  Response handle_batch(const Request& req);
  Response handle_methods();
  Response handle_healthz();
  Response handle_metrics();

  /// Queue `work` and wait for it up to the deadline.  Returns the 503
  /// (queue full / shutting down) or 504 (deadline) response when the
  /// result never arrives.
  Response submit_and_wait(
      std::function<Response(const std::atomic<bool>&)> work,
      double deadline_ms);

  void worker_loop();
  void record(const Request& req, const Response& resp, double elapsed_ms);

  ServiceOptions opt_;
  ResultCache cache_;

  mutable math::Mutex queue_mutex_;
  math::CondVar queue_cv_;
  std::deque<Job> queue_ GUARDED_BY(queue_mutex_);
  bool stopping_ GUARDED_BY(queue_mutex_) = false;
  std::atomic<std::size_t> in_flight_{0};

  // Joining is serialized by its own mutex so concurrent shutdown()
  // calls (destructor racing a signal-handler drain) never both join
  // the same std::thread.  Lock order: join_mutex_ is never taken with
  // queue_mutex_ held, and workers only ever take queue_mutex_, so no
  // cycle exists.
  mutable math::Mutex join_mutex_;
  std::vector<std::thread> workers_ GUARDED_BY(join_mutex_);

  mutable math::Mutex metrics_mutex_;
  MetricsSnapshot counters_ GUARDED_BY(metrics_mutex_);  // histogram unused
  stats::Histogram1D latency_log10_ GUARDED_BY(metrics_mutex_);  // log10(ms)
};

}  // namespace vbsrm::serve
