#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace vbsrm::serve {

namespace {

constexpr std::size_t kMaxHeadBytes = 64u << 10;

std::string lowered(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trimmed(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

ParseStatus parse_http_request(std::string_view buf, HttpRequest& out,
                               std::size_t& consumed, std::string& error,
                               std::size_t max_body_bytes) {
  out = HttpRequest{};
  consumed = 0;
  error.clear();

  // Locate the blank line ending the head ("\r\n\r\n" or "\n\n").
  std::size_t head_end = std::string_view::npos;
  std::size_t body_start = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (buf[i] != '\n') continue;
    std::size_t j = i + 1;
    if (j < buf.size() && buf[j] == '\r') ++j;
    if (j < buf.size() && buf[j] == '\n') {
      head_end = i;
      body_start = j + 1;
      break;
    }
  }
  if (head_end == std::string_view::npos) {
    if (buf.size() > kMaxHeadBytes) {
      error = "request head too large";
      return ParseStatus::Bad;
    }
    return ParseStatus::Incomplete;
  }

  // Request line.
  const std::string_view head = buf.substr(0, head_end);
  std::size_t line_start = 0;
  const auto next_line = [&](std::string_view& line) {
    if (line_start >= head.size()) return false;
    std::size_t nl = head.find('\n', line_start);
    if (nl == std::string_view::npos) nl = head.size();
    line = trimmed(head.substr(line_start, nl - line_start));
    line_start = nl + 1;
    return true;
  };

  std::string_view request_line;
  if (!next_line(request_line) || request_line.empty()) {
    error = "empty request line";
    return ParseStatus::Bad;
  }
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    error = "malformed request line";
    return ParseStatus::Bad;
  }
  out.method = std::string(request_line.substr(0, sp1));
  out.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  out.version = std::string(trimmed(request_line.substr(sp2 + 1)));
  if (out.version != "HTTP/1.1" && out.version != "HTTP/1.0") {
    error = "unsupported HTTP version";
    return ParseStatus::Bad;
  }

  // Header fields.
  std::string_view line;
  while (next_line(line)) {
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      error = "malformed header line";
      return ParseStatus::Bad;
    }
    out.headers[lowered(trimmed(line.substr(0, colon)))] =
        std::string(trimmed(line.substr(colon + 1)));
  }

  // Body via Content-Length (chunked encoding is not supported).
  std::size_t content_length = 0;
  if (const auto it = out.headers.find("content-length");
      it != out.headers.end()) {
    const std::string& v = it->second;
    const auto [p, ec] =
        std::from_chars(v.data(), v.data() + v.size(), content_length);
    if (ec != std::errc() || p != v.data() + v.size()) {
      error = "bad Content-Length";
      return ParseStatus::Bad;
    }
  } else if (out.headers.count("transfer-encoding") != 0) {
    error = "chunked transfer encoding not supported";
    return ParseStatus::Bad;
  }
  if (content_length > max_body_bytes) {
    error = "request body too large";
    return ParseStatus::Bad;
  }
  if (buf.size() - body_start < content_length) return ParseStatus::Incomplete;
  out.body = std::string(buf.substr(body_start, content_length));
  consumed = body_start + content_length;
  return ParseStatus::Ok;
}

std::string_view status_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return status < 400 ? "OK" : "Error";
  }
}

std::string serialize_response(const Response& r, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + ' ';
  out += status_phrase(r.status);
  out += "\r\nContent-Type: ";
  out += r.content_type;
  out += "\r\nContent-Length: " + std::to_string(r.body.size());
  for (const auto& [name, value] : r.headers) {
    out += "\r\n" + name + ": " + value;
  }
  out += keep_alive ? "\r\nConnection: keep-alive" : "\r\nConnection: close";
  out += "\r\n\r\n";
  out += r.body;
  return out;
}

// --- HttpServer ------------------------------------------------------------

HttpServer::HttpServer(Service& service, HttpServerOptions opt)
    : shared_(std::make_shared<Shared>()) {
  shared_->service = &service;
  shared_->opt = std::move(opt);
  const HttpServerOptions& o = shared_->opt;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(o.port);
  if (::inet_pton(AF_INET, o.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bad listen address: " + o.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind " + o.host + ":" + std::to_string(o.port) +
                             ": " + why);
  }
  if (::listen(listen_fd_, o.backlog) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen: " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
}

HttpServer::~HttpServer() {
  request_stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  wait_for_connections();
}

void HttpServer::wait_for_connections() {
  Shared& sh = *shared_;
  const math::MutexLock lock(sh.mutex);
  sh.cv.wait(sh.mutex,
             [&sh]() REQUIRES(sh.mutex) { return sh.active == 0; });
}

void HttpServer::run() {
  while (!shared_->stop.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100 /* ms: stop-flag poll interval */);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks stop
      break;
    }
    if (rc == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    const timeval tv{shared_->opt.io_timeout_s, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      const math::MutexLock lock(shared_->mutex);
      ++shared_->active;
    }
    std::thread(&HttpServer::serve_connection, shared_, fd).detach();
  }
  // Drain: stop accepting, let in-flight connections finish their
  // current request.
  wait_for_connections();
}

void HttpServer::serve_connection(std::shared_ptr<Shared> shared, int fd) {
  std::string buf;
  char chunk[16 * 1024];
  bool open = true;
  while (open && !shared->stop.load()) {
    HttpRequest hreq;
    std::size_t consumed = 0;
    std::string perr;
    const std::size_t max_body = shared->service->options().max_body_bytes;
    ParseStatus st = parse_http_request(buf, hreq, consumed, perr, max_body);
    while (st == ParseStatus::Incomplete) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {  // peer closed, timed out, or errored
        open = false;
        break;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
      st = parse_http_request(buf, hreq, consumed, perr, max_body);
    }
    if (!open) break;
    if (st == ParseStatus::Bad) {
      json::Value doc = json::Value::object();
      json::Value err = json::Value::object();
      err["status"] = 400;
      err["message"] = perr;
      doc["error"] = std::move(err);
      Response bad;
      bad.status = 400;
      bad.body = json::write(doc);
      bad.body.push_back('\n');
      const std::string wire = serialize_response(bad, false);
      (void)::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
      break;
    }
    buf.erase(0, consumed);

    Request req;
    req.method = hreq.method;
    req.target = hreq.target;
    req.body = std::move(hreq.body);
    if (const auto it = hreq.headers.find("x-deadline-ms");
        it != hreq.headers.end()) {
      req.deadline_ms = std::atof(it->second.c_str());
    }
    const bool keep_alive =
        !shared->stop.load() && hreq.version == "HTTP/1.1" &&
        lowered(hreq.headers.count("connection") ? hreq.headers.at("connection")
                                                 : "") != "close";

    const Response resp = shared->service->handle(req);
    const std::string wire = serialize_response(resp, keep_alive);
    std::size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n =
          ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        open = false;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    if (!keep_alive) break;
  }
  ::close(fd);
  {
    const math::MutexLock lock(shared->mutex);
    --shared->active;
  }
  shared->cv.notify_all();
}

}  // namespace vbsrm::serve
