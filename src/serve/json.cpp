#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vbsrm::serve::json {

// --- Value accessors -------------------------------------------------------

namespace {

[[noreturn]] void type_mismatch(const char* wanted) {
  throw std::logic_error(std::string("json::Value: not a ") + wanted);
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::Bool) type_mismatch("bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::Number) type_mismatch("number");
  return num_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) type_mismatch("string");
  return str_;
}

const std::vector<Value>& Value::items() const {
  if (type_ != Type::Array) type_mismatch("array");
  return arr_;
}

const std::vector<Member>& Value::members() const {
  if (type_ != Type::Object) type_mismatch("object");
  return obj_;
}

void Value::push_back(Value v) {
  if (type_ != Type::Array) type_mismatch("array");
  arr_.push_back(std::move(v));
}

std::size_t Value::size() const {
  if (type_ == Type::Array) return arr_.size();
  if (type_ == Type::Object) return obj_.size();
  type_mismatch("array or object");
}

Value& Value::operator[](std::string_view key) {
  if (type_ != Type::Object) type_mismatch("object");
  for (Member& m : obj_) {
    if (m.first == key) return m.second;
  }
  obj_.emplace_back(std::string(key), Value());
  return obj_.back().second;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::Object) type_mismatch("object");
  for (const Member& m : obj_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

// --- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Value run() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json: " + what, pos_);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  char take() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      fail("invalid literal");
    }
    pos_ += lit.size();
  }

  Value parse_value(int depth) {
    if (depth > max_depth_) fail("nesting too deep");
    skip_ws();
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Value(parse_string());
      case 't':
        expect_literal("true");
        return Value(true);
      case 'f':
        expect_literal("false");
        return Value(false);
      case 'n':
        expect_literal("null");
        return Value(nullptr);
      default:
        return parse_number();
    }
  }

  Value parse_object(int depth) {
    ++pos_;  // '{'
    Value obj = Value::object();
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      if (take() != ':') fail("expected ':' after object key");
      obj[key] = parse_value(depth + 1);
      skip_ws();
      const char c = take();
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array(int depth) {
    ++pos_;  // '['
    Value arr = Value::array();
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    ++pos_;  // opening '"'
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return out;
      if (c < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (take() != '\\' || take() != 'u') fail("lone high surrogate");
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("unknown escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      pos_ = start;
      fail("invalid value");
    }
    if (peek() == '0') {
      ++pos_;  // leading zero must stand alone
      if (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("leading zero in number");
      }
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required after decimal point");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required in exponent");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    double d = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [p, ec] = std::from_chars(first, last, d);
    if (ec == std::errc::result_out_of_range) {
      // Underflow collapses toward zero (keep it); overflow has no
      // finite double and the writer could not round-trip it — reject.
      const std::string tmp(first, last);
      d = std::strtod(tmp.c_str(), nullptr);
      if (!std::isfinite(d)) fail("number out of double range");
    } else if (ec != std::errc() || p != last) {
      fail("unparseable number");
    }
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int max_depth_;
};

}  // namespace

Value parse(std::string_view text, int max_depth) {
  return Parser(text, max_depth).run();
}

// --- writer ----------------------------------------------------------------

std::string write_number(double d) {
  if (!std::isfinite(d)) return "null";
  char buf[32];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  (void)ec;  // 32 bytes always suffice for shortest round-trip doubles
  return std::string(buf, p);
}

namespace {

void write_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void write_value(std::string& out, const Value& v, int indent, int depth) {
  const bool pretty = indent >= 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.type()) {
    case Value::Type::Null:
      out += "null";
      break;
    case Value::Type::Bool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Value::Type::Number:
      out += write_number(v.as_number());
      break;
    case Value::Type::String:
      write_string(out, v.as_string());
      break;
    case Value::Type::Array: {
      const auto& items = v.items();
      if (items.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i) out.push_back(',');
        newline(depth + 1);
        write_value(out, items[i], indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Value::Type::Object: {
      const auto& members = v.members();
      if (members.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i) out.push_back(',');
        newline(depth + 1);
        write_string(out, members[i].first);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        write_value(out, members[i].second, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string write(const Value& v, int indent) {
  std::string out;
  write_value(out, v, indent, 0);
  return out;
}

}  // namespace vbsrm::serve::json
