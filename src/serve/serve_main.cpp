// vbsrm_serve — the estimation service daemon.
//
//   vbsrm_serve [--host H] [--port P] [--workers N] [--queue N]
//               [--cache N] [--deadline-ms D] [--batch-threads N]
//
// Serves the unified estimation engine over HTTP/1.1 on a POSIX
// socket: POST /v1/estimate, POST /v1/batch, GET /v1/methods,
// GET /healthz, GET /metrics.  --port 0 (the default) binds an
// ephemeral port; the chosen one is announced on stdout as
//
//   vbsrm_serve listening on http://127.0.0.1:PORT
//
// which the smoke client parses.  SIGINT/SIGTERM stop the accept loop,
// finish in-flight requests, drain the estimation queue, and exit 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "serve/http.hpp"
#include "serve/service.hpp"

namespace {

vbsrm::serve::HttpServer* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: vbsrm_serve [--host H] [--port P] [--workers N]\n"
               "                   [--queue N] [--cache N] [--deadline-ms D]\n"
               "                   [--batch-threads N]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vbsrm::serve;

  ServiceOptions sopt;
  HttpServerOptions hopt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--host") hopt.host = next();
    else if (a == "--port") hopt.port = static_cast<std::uint16_t>(std::atoi(next()));
    else if (a == "--workers") sopt.workers = static_cast<unsigned>(std::atoi(next()));
    else if (a == "--queue") sopt.queue_capacity = static_cast<std::size_t>(std::atoll(next()));
    else if (a == "--cache") sopt.cache_capacity = static_cast<std::size_t>(std::atoll(next()));
    else if (a == "--deadline-ms") sopt.default_deadline_ms = std::atof(next());
    else if (a == "--batch-threads") sopt.batch_threads = static_cast<unsigned>(std::atoi(next()));
    else usage();
  }

  // A peer that disappears mid-write must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  Service service(sopt);
  try {
    HttpServer server(service, hopt);
    g_server = &server;

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = on_signal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    std::printf("vbsrm_serve listening on http://%s:%u\n", hopt.host.c_str(),
                static_cast<unsigned>(server.port()));
    std::printf("workers=%u queue=%zu cache=%zu deadline_ms=%g\n",
                service.options().workers, service.options().queue_capacity,
                service.options().cache_capacity,
                service.options().default_deadline_ms);
    std::fflush(stdout);

    server.run();  // returns after a signal, with connections finished
    g_server = nullptr;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vbsrm_serve: %s\n", e.what());
    return 1;
  }

  service.shutdown();  // drain queued estimation jobs
  std::printf("vbsrm_serve: drained, exiting\n");
  return 0;
}
