#include "serve/service.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <variant>

#include "data/failure_data.hpp"
#include "engine/batch.hpp"
#include "engine/registry.hpp"
#include "math/parallel.hpp"

namespace vbsrm::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Request decoding failure; handle() maps it to 400 Bad Request.
struct BadRequest : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

std::string lowered(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

// --- JSON field helpers (every failure is a BadRequest) -------------------

const json::Value& need(const json::Value& obj, std::string_view key) {
  const json::Value* v = obj.find(key);
  if (!v) throw BadRequest("missing field \"" + std::string(key) + "\"");
  return *v;
}

double as_finite_number(const json::Value& v, std::string_view what) {
  if (!v.is_number() || !std::isfinite(v.as_number())) {
    throw BadRequest("\"" + std::string(what) + "\" must be a finite number");
  }
  return v.as_number();
}

double number_or(const json::Value& obj, std::string_view key, double dflt) {
  const json::Value* v = obj.find(key);
  return v ? as_finite_number(*v, key) : dflt;
}

std::uint64_t as_count(const json::Value& v, std::string_view what) {
  const double d = as_finite_number(v, what);
  if (d < 0.0 || d != std::floor(d) || d > 9.007199254740992e15) {
    throw BadRequest("\"" + std::string(what) +
                     "\" must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

std::uint64_t count_or(const json::Value& obj, std::string_view key,
                       std::uint64_t dflt) {
  const json::Value* v = obj.find(key);
  return v ? as_count(*v, key) : dflt;
}

std::vector<double> number_array(const json::Value& v, std::string_view what) {
  if (!v.is_array()) {
    throw BadRequest("\"" + std::string(what) + "\" must be an array");
  }
  std::vector<double> out;
  out.reserve(v.size());
  for (const json::Value& item : v.items()) {
    out.push_back(as_finite_number(item, what));
  }
  return out;
}

// --- request decoding ------------------------------------------------------

bayes::GammaPrior parse_prior(const json::Value& v, std::string_view which) {
  if (v.is_null()) return bayes::GammaPrior::flat();
  if (!v.is_object()) {
    throw BadRequest("prior \"" + std::string(which) + "\" must be an object");
  }
  if (v.contains("mean") || v.contains("sd")) {
    const double mean = as_finite_number(need(v, "mean"), "mean");
    const double sd = as_finite_number(need(v, "sd"), "sd");
    if (!(mean > 0.0) || !(sd > 0.0)) {
      throw BadRequest("prior mean and sd must be > 0");
    }
    return bayes::GammaPrior::from_mean_sd(mean, sd);
  }
  const double shape = number_or(v, "shape", 1.0);
  const double rate = number_or(v, "rate", 0.0);
  if (!(shape > 0.0) || rate < 0.0) {
    throw BadRequest("prior shape must be > 0 and rate >= 0");
  }
  return bayes::GammaPrior{shape, rate};
}

bayes::PriorPair parse_priors(const json::Value& doc) {
  const json::Value* v = doc.find("priors");
  if (!v || v->is_null()) return bayes::PriorPair::flat();
  if (!v->is_object()) throw BadRequest("\"priors\" must be an object");
  bayes::PriorPair p = bayes::PriorPair::flat();
  if (const json::Value* o = v->find("omega")) p.omega = parse_prior(*o, "omega");
  if (const json::Value* b = v->find("beta")) p.beta = parse_prior(*b, "beta");
  return p;
}

using DataVariant = std::variant<data::FailureTimeData, data::GroupedData>;

DataVariant parse_data(const json::Value& doc) {
  const json::Value& v = need(doc, "data");
  if (!v.is_object()) throw BadRequest("\"data\" must be an object");
  const json::Value& type = need(v, "type");
  if (!type.is_string()) throw BadRequest("\"data.type\" must be a string");
  try {
    if (type.as_string() == "failure_times") {
      std::vector<double> times = number_array(need(v, "times"), "data.times");
      const double te =
          as_finite_number(need(v, "observation_end"), "data.observation_end");
      return data::FailureTimeData(std::move(times), te);
    }
    if (type.as_string() == "grouped") {
      std::vector<double> bounds =
          number_array(need(v, "boundaries"), "data.boundaries");
      const json::Value& cv = need(v, "counts");
      if (!cv.is_array()) throw BadRequest("\"data.counts\" must be an array");
      std::vector<std::size_t> counts;
      counts.reserve(cv.size());
      for (const json::Value& c : cv.items()) {
        counts.push_back(static_cast<std::size_t>(as_count(c, "data.counts")));
      }
      return data::GroupedData(std::move(bounds), std::move(counts));
    }
  } catch (const data::DataError& e) {
    throw BadRequest(std::string("invalid data: ") + e.what());
  }
  throw BadRequest("data.type must be \"failure_times\" or \"grouped\"");
}

/// Fields shared by /v1/estimate and /v1/batch bodies.
struct ParsedCommon {
  double alpha0 = 1.0;
  DataVariant data;
  bayes::PriorPair priors;
  std::vector<double> reliability_windows;
  bayes::McmcOptions mcmc;
  int chains = 1;

  engine::EstimatorRequest to_request() const {
    engine::EstimatorRequest req = std::visit(
        [&](const auto& d) {
          return engine::EstimatorRequest(alpha0, d, priors);
        },
        data);
    req.mcmc.base = mcmc;
    req.mcmc.chains = chains;
    return req;
  }
};

ParsedCommon parse_common(const json::Value& doc) {
  ParsedCommon out{1.0, parse_data(doc), parse_priors(doc), {}, {}, 1};
  out.alpha0 = number_or(doc, "alpha0", 1.0);
  if (!(out.alpha0 > 0.0)) throw BadRequest("\"alpha0\" must be > 0");
  if (const json::Value* w = doc.find("reliability_windows")) {
    out.reliability_windows = number_array(*w, "reliability_windows");
    for (const double u : out.reliability_windows) {
      if (!(u > 0.0)) throw BadRequest("reliability windows must be > 0");
    }
    if (out.reliability_windows.size() > 64) {
      throw BadRequest("at most 64 reliability windows per request");
    }
  }
  if (const json::Value* m = doc.find("mcmc")) {
    if (!m->is_object()) throw BadRequest("\"mcmc\" must be an object");
    out.mcmc.burn_in =
        static_cast<std::size_t>(count_or(*m, "burn_in", out.mcmc.burn_in));
    out.mcmc.thin =
        static_cast<std::size_t>(count_or(*m, "thin", out.mcmc.thin));
    out.mcmc.samples =
        static_cast<std::size_t>(count_or(*m, "samples", out.mcmc.samples));
    out.mcmc.seed = count_or(*m, "seed", out.mcmc.seed);
    out.chains = static_cast<int>(count_or(*m, "chains", 1));
    if (out.mcmc.thin == 0 || out.mcmc.samples == 0 || out.chains < 1) {
      throw BadRequest("mcmc.thin, mcmc.samples, mcmc.chains must be >= 1");
    }
  }
  return out;
}

double parse_level(const json::Value& doc) {
  const double level = number_or(doc, "level", 0.99);
  if (!(level > 0.0) || !(level < 1.0)) {
    throw BadRequest("\"level\" must lie in (0, 1)");
  }
  return level;
}

std::string parse_method(const json::Value& doc) {
  std::string method = "vb2";
  if (const json::Value* m = doc.find("method")) {
    if (!m->is_string()) throw BadRequest("\"method\" must be a string");
    method = lowered(m->as_string());
  }
  if (!engine::is_registered(method)) {
    std::string msg = "unknown method \"" + method + "\"; registered:";
    for (const std::string& n : engine::registered_methods()) msg += ' ' + n;
    throw BadRequest(msg);
  }
  return method;
}

// --- canonical serialization (the cache key) -------------------------------

json::Value data_canonical(const DataVariant& data) {
  json::Value d = json::Value::object();
  if (const auto* dt = std::get_if<data::FailureTimeData>(&data)) {
    d["type"] = "failure_times";
    json::Value times = json::Value::array();
    for (const double t : dt->times()) times.push_back(t);
    d["times"] = std::move(times);
    d["observation_end"] = dt->observation_end();
  } else {
    const auto& dg = std::get<data::GroupedData>(data);
    d["type"] = "grouped";
    json::Value bounds = json::Value::array();
    for (const double b : dg.boundaries()) bounds.push_back(b);
    d["boundaries"] = std::move(bounds);
    json::Value counts = json::Value::array();
    for (const std::size_t c : dg.counts()) counts.push_back(c);
    d["counts"] = std::move(counts);
  }
  return d;
}

json::Value prior_canonical(const bayes::GammaPrior& p) {
  json::Value v = json::Value::object();
  v["shape"] = p.shape;
  v["rate"] = p.rate;
  return v;
}

/// Normalized (dataset, method, options) document in a fixed key order;
/// its compact serialization is the content address of the result.
/// Every default is materialized, so "level omitted" and "level: 0.99"
/// collide on purpose, while anything that changes the fit changes the
/// bytes.
std::string canonical_key(const std::string& method, double level,
                          const ParsedCommon& c) {
  json::Value canon = json::Value::object();
  canon["v"] = 1;  // key-schema version, bump on layout changes
  canon["method"] = method;
  canon["alpha0"] = c.alpha0;
  canon["data"] = data_canonical(c.data);
  json::Value priors = json::Value::object();
  priors["omega"] = prior_canonical(c.priors.omega);
  priors["beta"] = prior_canonical(c.priors.beta);
  canon["priors"] = std::move(priors);
  canon["level"] = level;
  json::Value windows = json::Value::array();
  for (const double u : c.reliability_windows) windows.push_back(u);
  canon["reliability_windows"] = std::move(windows);
  json::Value mcmc = json::Value::object();
  mcmc["burn_in"] = c.mcmc.burn_in;
  mcmc["thin"] = c.mcmc.thin;
  mcmc["samples"] = c.mcmc.samples;
  mcmc["seed"] = c.mcmc.seed;
  mcmc["chains"] = c.chains;
  canon["mcmc"] = std::move(mcmc);
  return json::write(canon);
}

// --- response documents ----------------------------------------------------

json::Value interval_json(const bayes::CredibleInterval& ci) {
  json::Value v = json::Value::object();
  v["lower"] = ci.lower;
  v["upper"] = ci.upper;
  return v;
}

json::Value summary_json(const bayes::PosteriorSummary& s) {
  json::Value v = json::Value::object();
  v["mean_omega"] = s.mean_omega;
  v["mean_beta"] = s.mean_beta;
  v["var_omega"] = s.var_omega;
  v["var_beta"] = s.var_beta;
  v["cov"] = s.cov;
  return v;
}

json::Value reliability_json(double window, const bayes::ReliabilityEstimate& r) {
  json::Value v = json::Value::object();
  v["window"] = window;
  v["point"] = r.point;
  v["lower"] = r.lower;
  v["upper"] = r.upper;
  return v;
}

json::Value diagnostics_json(const engine::Diagnostics& d) {
  // wall_time_ms is deliberately absent: it differs run to run and
  // would break the byte-identity of cached responses.
  json::Value v = json::Value::object();
  v["iterations"] = d.iterations;
  v["converged"] = d.converged;
  v["n_max_used"] = d.n_max_used;
  v["tail_mass_at_n_max"] = d.tail_mass_at_n_max;
  v["grid_points_per_axis"] = d.grid_points_per_axis;
  v["chain_samples"] = d.chain_samples;
  v["variates"] = d.variates;
  v["chains"] = d.chains;
  return v;
}

Response json_response(int status, const json::Value& doc) {
  Response r;
  r.status = status;
  r.body = json::write(doc);
  r.body.push_back('\n');
  return r;
}

Response error_response(int status, const std::string& message) {
  json::Value doc = json::Value::object();
  json::Value err = json::Value::object();
  err["status"] = status;
  err["message"] = message;
  doc["error"] = std::move(err);
  return json_response(status, doc);
}

std::string retry_after_value(double seconds) {
  const double s = std::max(1.0, std::ceil(seconds));
  return std::to_string(static_cast<long long>(s));
}

/// Path with any query string removed.
std::string_view path_of(std::string_view target) {
  const auto q = target.find('?');
  return q == std::string_view::npos ? target : target.substr(0, q);
}

}  // namespace

json::Value estimate_response(const engine::Estimator& est,
                              const EstimateQuery& query) {
  json::Value out = json::Value::object();
  out["method"] = std::string(est.method());
  out["level"] = query.level;
  out["summary"] = summary_json(est.summarize());
  json::Value intervals = json::Value::object();
  intervals["omega"] = interval_json(est.interval_omega(query.level));
  intervals["beta"] = interval_json(est.interval_beta(query.level));
  out["intervals"] = std::move(intervals);
  json::Value rel = json::Value::array();
  for (const double u : query.reliability_windows) {
    rel.push_back(reliability_json(u, est.reliability(u, query.level)));
  }
  out["reliability"] = std::move(rel);
  out["diagnostics"] = diagnostics_json(est.diagnostics());
  return out;
}

// --- Service ---------------------------------------------------------------

Service::Service(ServiceOptions opt)
    : opt_(opt),
      cache_(opt.cache_capacity, opt.cache_shards),
      latency_log10_(-2.0, 6.0, 32) {
  opt_.workers = math::resolve_threads(opt_.workers);
  workers_.reserve(opt_.workers);
  for (unsigned i = 0; i < opt_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() { shutdown(); }

void Service::shutdown() {
  {
    const math::MutexLock lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // Serialize the join: concurrent shutdown() calls (destructor vs. a
  // signal-initiated drain) must not both call join() on one thread.
  const math::MutexLock join_lock(join_mutex_);
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void Service::worker_loop() {
  for (;;) {
    Job job;
    {
      const math::MutexLock lock(queue_mutex_);
      queue_cv_.wait(queue_mutex_, [this]() REQUIRES(queue_mutex_) {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (job.abandoned->load()) {
      // The waiter already answered 504; skip the work entirely.
      job.promise.set_value(error_response(504, "deadline exceeded"));
      continue;
    }
    ++in_flight_;
    try {
      job.promise.set_value(job.work(*job.abandoned));
    } catch (...) {
      job.promise.set_exception(std::current_exception());
    }
    --in_flight_;
  }
}

Response Service::submit_and_wait(
    std::function<Response(const std::atomic<bool>&)> work,
    double deadline_ms) {
  const double budget =
      deadline_ms > 0.0 ? deadline_ms : opt_.default_deadline_ms;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(budget));

  Job job;
  job.work = std::move(work);
  job.abandoned = std::make_shared<std::atomic<bool>>(false);
  std::future<Response> fut = job.promise.get_future();
  const std::shared_ptr<std::atomic<bool>> abandoned = job.abandoned;
  {
    const math::MutexLock lock(queue_mutex_);
    if (stopping_) {
      Response r = error_response(503, "service shutting down");
      r.headers.emplace_back("Retry-After", retry_after_value(opt_.retry_after_s));
      return r;
    }
    if (queue_.size() >= opt_.queue_capacity) {
      Response r = error_response(503, "estimation queue full");
      r.headers.emplace_back("Retry-After", retry_after_value(opt_.retry_after_s));
      return r;
    }
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();

  if (fut.wait_until(deadline) == std::future_status::ready) {
    try {
      return fut.get();
    } catch (const std::exception& e) {
      return error_response(500, std::string("internal error: ") + e.what());
    }
  }
  abandoned->store(true);
  return error_response(504, "deadline exceeded");
}

Response Service::handle(const Request& req) {
  const auto t0 = Clock::now();
  Response resp;
  if (req.body.size() > opt_.max_body_bytes) {
    resp = error_response(413, "request body too large");
  } else {
    resp = route(req);
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  record(req, resp, elapsed_ms);
  return resp;
}

Response Service::route(const Request& req) {
  const std::string_view path = path_of(req.target);
  const bool get = req.method == "GET";
  const bool post = req.method == "POST";

  if (path == "/healthz") {
    if (!get) return error_response(405, "use GET");
    return handle_healthz();
  }
  if (path == "/metrics") {
    if (!get) return error_response(405, "use GET");
    return handle_metrics();
  }
  if (path == "/v1/methods") {
    if (!get) return error_response(405, "use GET");
    return handle_methods();
  }
  if (path == "/v1/estimate") {
    if (!post) return error_response(405, "use POST");
    return handle_estimate(req);
  }
  if (path == "/v1/batch") {
    if (!post) return error_response(405, "use POST");
    return handle_batch(req);
  }
  return error_response(404, "no such route: " + std::string(path));
}

Response Service::handle_healthz() {
  json::Value doc = json::Value::object();
  doc["status"] = "ok";
  return json_response(200, doc);
}

Response Service::handle_methods() {
  json::Value doc = json::Value::object();
  json::Value names = json::Value::array();
  for (const std::string& n : engine::registered_methods()) names.push_back(n);
  doc["methods"] = std::move(names);
  return json_response(200, doc);
}

Response Service::handle_estimate(const Request& req) {
  std::string method;
  double level = 0.99;
  std::shared_ptr<ParsedCommon> common;
  std::string key;
  try {
    const json::Value doc = json::parse(req.body);
    if (!doc.is_object()) throw BadRequest("request body must be a JSON object");
    method = parse_method(doc);
    level = parse_level(doc);
    common = std::make_shared<ParsedCommon>(parse_common(doc));
    key = canonical_key(method, level, *common);
  } catch (const json::ParseError& e) {
    return error_response(400, std::string("invalid JSON: ") + e.what());
  } catch (const BadRequest& e) {
    return error_response(400, e.what());
  }

  if (std::optional<std::string> hit = cache_.get(key)) {
    Response r;
    r.body = std::move(*hit);
    r.headers.emplace_back("X-Cache", "hit");
    return r;
  }

  return submit_and_wait(
      [this, method, level, common, key](const std::atomic<bool>&) {
        EstimateQuery query{method, level, common->reliability_windows};
        Response r;
        try {
          const std::unique_ptr<engine::Estimator> est =
              engine::make(method, common->to_request());
          r = json_response(200, estimate_response(*est, query));
        } catch (const std::exception& e) {
          return error_response(500, std::string("estimation failed: ") + e.what());
        }
        cache_.put(key, r.body);
        r.headers.emplace_back("X-Cache", "miss");
        return r;
      },
      req.deadline_ms);
}

Response Service::handle_batch(const Request& req) {
  engine::BatchSpec spec;
  std::shared_ptr<ParsedCommon> common;
  try {
    const json::Value doc = json::parse(req.body);
    if (!doc.is_object()) throw BadRequest("request body must be a JSON object");

    const json::Value& mv = need(doc, "methods");
    if (!mv.is_array() || mv.size() == 0) {
      throw BadRequest("\"methods\" must be a non-empty array");
    }
    for (const json::Value& m : mv.items()) {
      if (!m.is_string()) throw BadRequest("\"methods\" entries must be strings");
      const std::string name = lowered(m.as_string());
      if (!engine::is_registered(name)) {
        std::string msg = "unknown method \"" + name + "\"; registered:";
        for (const std::string& n : engine::registered_methods()) msg += ' ' + n;
        throw BadRequest(msg);
      }
      spec.methods.push_back(name);
    }

    spec.levels.clear();
    if (const json::Value* lv = doc.find("levels")) {
      for (const double l : number_array(*lv, "levels")) {
        if (!(l > 0.0) || !(l < 1.0)) {
          throw BadRequest("\"levels\" must lie in (0, 1)");
        }
        spec.levels.push_back(l);
      }
    }
    if (spec.levels.empty()) spec.levels.push_back(0.99);

    if (spec.methods.size() * spec.levels.size() > 256) {
      throw BadRequest("batch grid too large (methods x levels > 256)");
    }

    common = std::make_shared<ParsedCommon>(parse_common(doc));
    spec.reliability_windows = common->reliability_windows;
    spec.mcmc_seed_base = count_or(doc, "mcmc_seed_base", 0);
  } catch (const json::ParseError& e) {
    return error_response(400, std::string("invalid JSON: ") + e.what());
  } catch (const BadRequest& e) {
    return error_response(400, e.what());
  }

  const auto spec_ptr = std::make_shared<engine::BatchSpec>(std::move(spec));
  return submit_and_wait(
      [this, spec_ptr, common](const std::atomic<bool>& abandoned) {
        spec_ptr->requests.push_back(common->to_request());
        const engine::BatchRunner runner(opt_.batch_threads);
        const std::vector<engine::EstimationReport> reports =
            runner.run(*spec_ptr, &abandoned);
        json::Value doc = json::Value::object();
        json::Value arr = json::Value::array();
        for (const engine::EstimationReport& rep : reports) {
          json::Value r = json::Value::object();
          r["method"] = rep.method;
          r["level"] = rep.level;
          r["ok"] = rep.ok;
          if (!rep.ok) {
            r["error"] = rep.error;
            arr.push_back(std::move(r));
            continue;
          }
          r["summary"] = summary_json(rep.summary);
          json::Value intervals = json::Value::object();
          intervals["omega"] = interval_json(rep.omega_interval);
          intervals["beta"] = interval_json(rep.beta_interval);
          r["intervals"] = std::move(intervals);
          json::Value rel = json::Value::array();
          for (std::size_t i = 0; i < rep.reliability.size(); ++i) {
            rel.push_back(reliability_json(spec_ptr->reliability_windows[i],
                                           rep.reliability[i]));
          }
          r["reliability"] = std::move(rel);
          r["diagnostics"] = diagnostics_json(rep.diagnostics);
          arr.push_back(std::move(r));
        }
        doc["reports"] = std::move(arr);
        return json_response(200, doc);
      },
      req.deadline_ms);
}

Response Service::handle_metrics() {
  const MetricsSnapshot m = metrics_snapshot();
  json::Value doc = json::Value::object();

  json::Value requests = json::Value::object();
  requests["total"] = m.requests_total;
  requests["estimate"] = m.estimate_requests;
  requests["batch"] = m.batch_requests;
  requests["methods"] = m.methods_requests;
  requests["healthz"] = m.healthz_requests;
  requests["metrics"] = m.metrics_requests;
  requests["unmatched"] = m.unmatched_requests;
  doc["requests"] = std::move(requests);

  json::Value responses = json::Value::object();
  responses["2xx"] = m.responses_2xx;
  responses["4xx"] = m.responses_4xx;
  responses["5xx"] = m.responses_5xx;
  responses["queue_full_503"] = m.queue_full_503;
  responses["deadline_504"] = m.deadline_504;
  doc["responses"] = std::move(responses);

  json::Value latency = json::Value::object();
  latency["count"] = m.latency_count;
  json::Value buckets = json::Value::array();
  for (const LatencyBucket& b : m.latency) {
    json::Value bucket = json::Value::object();
    bucket["lo_ms"] = b.lo_ms;
    bucket["hi_ms"] = b.hi_ms;
    bucket["count"] = b.count;
    buckets.push_back(std::move(bucket));
  }
  latency["buckets"] = std::move(buckets);
  doc["latency_ms"] = std::move(latency);

  json::Value cache = json::Value::object();
  cache["hits"] = m.cache_hits;
  cache["misses"] = m.cache_misses;
  const std::uint64_t lookups = m.cache_hits + m.cache_misses;
  cache["hit_ratio"] =
      lookups == 0 ? 0.0
                   : static_cast<double>(m.cache_hits) /
                         static_cast<double>(lookups);
  cache["entries"] = m.cache_entries;
  cache["capacity"] = m.cache_capacity;
  doc["cache"] = std::move(cache);

  json::Value queue = json::Value::object();
  queue["depth"] = m.queue_depth;
  queue["capacity"] = m.queue_capacity;
  queue["in_flight"] = m.in_flight;
  queue["workers"] = m.workers;
  doc["queue"] = std::move(queue);

  return json_response(200, doc);
}

MetricsSnapshot Service::metrics_snapshot() const {
  MetricsSnapshot m;
  {
    const math::MutexLock lock(metrics_mutex_);
    m = counters_;
    m.latency_count = latency_log10_.total();
    const double lo = latency_log10_.lo();
    const double width =
        (latency_log10_.hi() - lo) / latency_log10_.bins();
    for (int i = 0; i < latency_log10_.bins(); ++i) {
      const std::uint64_t c = latency_log10_.count(i);
      if (c == 0) continue;
      m.latency.push_back(LatencyBucket{std::pow(10.0, lo + i * width),
                                        std::pow(10.0, lo + (i + 1) * width),
                                        c});
    }
  }
  m.queue_depth = queue_depth();
  m.queue_capacity = opt_.queue_capacity;
  m.in_flight = in_flight_.load();
  m.workers = opt_.workers;
  m.cache_hits = cache_.hits();
  m.cache_misses = cache_.misses();
  m.cache_entries = cache_.size();
  m.cache_capacity = cache_.capacity();
  return m;
}

std::size_t Service::queue_depth() const {
  const math::MutexLock lock(queue_mutex_);
  return queue_.size();
}

void Service::record(const Request& req, const Response& resp,
                     double elapsed_ms) {
  const std::string_view path = path_of(req.target);
  const math::MutexLock lock(metrics_mutex_);
  ++counters_.requests_total;
  if (path == "/v1/estimate") ++counters_.estimate_requests;
  else if (path == "/v1/batch") ++counters_.batch_requests;
  else if (path == "/v1/methods") ++counters_.methods_requests;
  else if (path == "/healthz") ++counters_.healthz_requests;
  else if (path == "/metrics") ++counters_.metrics_requests;
  else ++counters_.unmatched_requests;

  if (resp.status >= 200 && resp.status < 300) ++counters_.responses_2xx;
  else if (resp.status >= 400 && resp.status < 500) ++counters_.responses_4xx;
  else if (resp.status >= 500) ++counters_.responses_5xx;
  if (resp.status == 503) ++counters_.queue_full_503;
  if (resp.status == 504) ++counters_.deadline_504;

  // Clamp into the histogram's domain so no request is ever dropped.
  const double x = std::log10(std::max(elapsed_ms, 1.1e-2));
  latency_log10_.add(std::min(std::max(x, -2.0), 6.0 - 1e-9));
}

std::string Service::canonical_estimate_key(const std::string& body) const {
  const json::Value doc = json::parse(body);
  if (!doc.is_object()) throw BadRequest("request body must be a JSON object");
  const std::string method = parse_method(doc);
  const double level = parse_level(doc);
  const ParsedCommon common = parse_common(doc);
  return canonical_key(method, level, common);
}

}  // namespace vbsrm::serve
