#include "serve/cache.hpp"

#include <algorithm>

namespace vbsrm::serve {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV offset basis
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;  // FNV prime
  }
  return h;
}

ResultCache::ResultCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity), shards_(std::max<std::size_t>(shards, 1)) {
  if (capacity_ == 0) return;
  const std::size_t n = shards_.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Spread capacity as evenly as possible, at least 1 per shard.
    shards_[i].capacity = std::max<std::size_t>(1, (capacity_ + i) / n);
  }
}

ResultCache::Shard& ResultCache::shard_for(const std::string& key) {
  return shards_[fnv1a64(key) % shards_.size()];
}

std::optional<std::string> ResultCache::get(const std::string& key) {
  if (capacity_ == 0) return std::nullopt;
  Shard& s = shard_for(key);
  const math::MutexLock lock(s.mutex);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    ++s.misses;
    return std::nullopt;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  ++s.hits;
  return it->second->value;
}

void ResultCache::put(const std::string& key, std::string value) {
  if (capacity_ == 0) return;
  Shard& s = shard_for(key);
  const math::MutexLock lock(s.mutex);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    it->second->value = std::move(value);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  if (s.lru.size() >= s.capacity) {
    s.index.erase(s.lru.back().key);
    s.lru.pop_back();
  }
  s.lru.push_front(Entry{key, std::move(value)});
  s.index.emplace(key, s.lru.begin());
}

std::uint64_t ResultCache::hits() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) {
    const math::MutexLock lock(s.mutex);
    n += s.hits;
  }
  return n;
}

std::uint64_t ResultCache::misses() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) {
    const math::MutexLock lock(s.mutex);
    n += s.misses;
  }
  return n;
}

std::size_t ResultCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    const math::MutexLock lock(s.mutex);
    n += s.lru.size();
  }
  return n;
}

}  // namespace vbsrm::serve
