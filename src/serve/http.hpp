// Minimal HTTP/1.1 over POSIX sockets — the wire adapter around
// serve::Service.  No external dependencies: a hand-rolled request
// parser (exposed for unit tests), a response serializer, and a
// thread-per-connection accept loop with poll()-based stop polling so a
// signal handler can request a clean drain-and-exit.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "math/thread_annotations.hpp"
#include "serve/service.hpp"

namespace vbsrm::serve {

/// One parsed request head + body as read off the wire.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;
  std::map<std::string, std::string> headers;  // keys lower-cased
  std::string body;
};

enum class ParseStatus {
  Ok,          // one complete request parsed; `consumed` bytes eaten
  Incomplete,  // need more bytes
  Bad,         // malformed; `error` says why
};

/// Parse one request from the front of `buf`.  Accepts both CRLF and
/// bare-LF line endings; requires Content-Length for bodies (no chunked
/// encoding).  Oversized heads/bodies are Bad, not Incomplete, so a
/// hostile peer cannot make the reader buffer forever.
ParseStatus parse_http_request(std::string_view buf, HttpRequest& out,
                               std::size_t& consumed, std::string& error,
                               std::size_t max_body_bytes = 8u << 20);

/// Serialize a service response as an HTTP/1.1 message (status line,
/// Content-Type/Content-Length/Connection plus any extra headers, body).
std::string serialize_response(const Response& r, bool keep_alive);

/// Human phrase for a status code ("OK", "Service Unavailable", ...).
std::string_view status_phrase(int status);

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = kernel-assigned; read back via port()
  int backlog = 64;
  int io_timeout_s = 30;   // per-socket recv/send timeout
};

/// Accept loop + thread-per-connection.  run() blocks until
/// request_stop(); it then stops accepting, finishes in-flight
/// connections (keep-alive loops exit after the current request), and
/// joins every connection thread.  The caller drains the Service queue
/// afterwards via Service::shutdown().
class HttpServer {
 public:
  /// Binds and listens immediately; throws std::runtime_error on
  /// failure (port in use, bad host, ...).
  HttpServer(Service& service, HttpServerOptions opt = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  std::uint16_t port() const { return port_; }

  void run();
  /// Async-signal-safe stop request (an atomic store the poll loop
  /// observes within one poll interval).
  void request_stop() { shared_->stop.store(true); }

 private:
  /// State shared with detached connection threads; connection threads
  /// hold a shared_ptr so the counters outlive any teardown race, and
  /// run() waits for `active == 0` before returning (the Service the
  /// threads reference must outlive run(), which the caller guarantees
  /// by construction order).
  struct Shared {
    Service* service = nullptr;
    HttpServerOptions opt;
    std::atomic<bool> stop{false};
    math::Mutex mutex;
    math::CondVar cv;
    int active GUARDED_BY(mutex) = 0;  // live connection threads
  };

  static void serve_connection(std::shared_ptr<Shared> shared, int fd);
  void wait_for_connections();

  std::shared_ptr<Shared> shared_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace vbsrm::serve
