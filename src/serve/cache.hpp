// Content-addressed result cache for the estimation service.
//
// Keys are the canonical serialization of (dataset, method, options) —
// see Service::canonical_estimate_key — hashed with FNV-1a 64.  The
// hash picks a shard (so concurrent clients on different requests never
// contend on one mutex) and the full key string is stored alongside the
// value, so a hash collision degrades to a miss, never to a wrong
// answer.  Each shard is an independent LRU over its slice of the
// capacity; values are the exact response bytes, which is what makes a
// cache hit byte-identical to the miss that populated it.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "math/thread_annotations.hpp"

namespace vbsrm::serve {

/// FNV-1a 64-bit over the bytes of `s`.
std::uint64_t fnv1a64(std::string_view s);

class ResultCache {
 public:
  /// `capacity` entries total, spread over `shards` independent LRUs
  /// (each shard gets at least one slot).  capacity == 0 disables
  /// caching: get always misses, put is a no-op.
  explicit ResultCache(std::size_t capacity, std::size_t shards = 8);

  /// Value for `key`, refreshing its LRU position; nullopt on miss.
  std::optional<std::string> get(const std::string& key);

  /// Insert or refresh `key`; evicts the shard's least-recently-used
  /// entry when the shard is full.
  void put(const std::string& key, std::string value);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    std::string value;
  };
  struct Shard {
    mutable math::Mutex mutex;
    std::list<Entry> lru GUARDED_BY(mutex);  // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        GUARDED_BY(mutex);
    std::uint64_t hits GUARDED_BY(mutex) = 0;
    std::uint64_t misses GUARDED_BY(mutex) = 0;
    std::size_t capacity = 0;  // immutable after construction
  };

  Shard& shard_for(const std::string& key);

  std::size_t capacity_;
  std::vector<Shard> shards_;
};

}  // namespace vbsrm::serve
