// Minimal JSON for the estimation service (and the CLI's --json mode).
//
// One value type, one recursive-descent parser, one writer — no external
// dependencies.  Two properties the service depends on:
//
//   * Number fidelity: doubles are written with std::to_chars (shortest
//     representation that round-trips), so write(parse(write(x))) is
//     byte-stable and parse(write(x)) == x bit-for-bit.  This is what
//     makes cached responses byte-identical to freshly computed ones.
//   * Deterministic output: objects preserve insertion order and the
//     writer adds no incidental whitespace (unless asked to indent), so
//     the same Value always serializes to the same bytes — the property
//     the content-addressed result cache keys on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vbsrm::serve::json {

/// Thrown by parse(); `offset` is the byte position of the error.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what), offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Value;
using Member = std::pair<std::string, Value>;

/// A JSON document node: null, bool, number (double), string, array, or
/// object (insertion-ordered).
class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Value() : type_(Type::Null) {}
  Value(std::nullptr_t) : type_(Type::Null) {}
  Value(bool b) : type_(Type::Bool), bool_(b) {}
  Value(double d) : type_(Type::Number), num_(d) {}
  /// Any non-bool integer type; avoids an overload set that collides
  /// on platforms where size_t aliases one of the fixed-width types.
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  Value(T i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Value(const char* s) : type_(Type::String), str_(s) {}
  Value(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Value(std::string_view s) : type_(Type::String), str_(s) {}

  static Value array() {
    Value v;
    v.type_ = Type::Array;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::Object;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  // Typed accessors; throw std::logic_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& items() const;
  const std::vector<Member>& members() const;

  // --- array building ---
  void push_back(Value v);
  std::size_t size() const;  // array/object element count

  // --- object building / lookup ---
  /// Insert-or-get a member (object only); keeps insertion order.
  Value& operator[](std::string_view key);
  /// Pointer to the member value, or nullptr when absent (object only).
  const Value* find(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<Member> obj_;
};

/// Parse a complete JSON document.  Rejects trailing garbage, unknown
/// escapes, control characters in strings, non-finite literals, and
/// nesting deeper than `max_depth`.  Throws ParseError.
Value parse(std::string_view text, int max_depth = 64);

/// Serialize.  `indent < 0` gives the compact canonical form (no
/// whitespace); `indent >= 0` pretty-prints with that many spaces per
/// level.  Non-finite numbers serialize as null (JSON has no NaN/Inf).
std::string write(const Value& v, int indent = -1);

/// The writer's number formatting, exposed for tests: shortest
/// round-trip decimal form via std::to_chars ("null" for non-finite).
std::string write_number(double d);

}  // namespace vbsrm::serve::json
