// Prediction utilities on a fitted gamma-type NHPP: reliability over a
// future window, expected remaining faults, time to reach a reliability
// objective, and the distribution of the time to next failure.
#pragma once

#include "nhpp/model.hpp"

namespace vbsrm::nhpp {

/// P(no failure in (t, t+u]) — convenience forward to the model.
double reliability(const GammaTypeModel& model, double t, double u);

/// Expected number of failures in (t, t+u].
double expected_failures(const GammaTypeModel& model, double t, double u);

/// CDF of the time X from t until the next failure:
/// P(X <= u) = 1 - R(t+u | t).
double next_failure_cdf(const GammaTypeModel& model, double t, double u);

/// Median (or any quantile) of the time to next failure, +inf when the
/// process can die out before reaching the quantile (finite-failures
/// NHPPs have P(no more failures) > 0).
double next_failure_quantile(const GammaTypeModel& model, double t, double p);

/// Smallest u such that R(t+u | t) is still >= target when the mission
/// starts after waiting w more test time: finds the additional test time
/// w >= 0 with R(t+w+u | t+w) >= target (infinite if unreachable).
double test_time_for_reliability(const GammaTypeModel& model, double t,
                                 double mission, double target,
                                 double max_wait);

}  // namespace vbsrm::nhpp
