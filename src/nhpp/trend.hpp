// Reliability-trend tests applied before model fitting: the Laplace
// trend test (for both data schemes) detects reliability growth/decay,
// and goodness-of-fit helpers compare a fitted model against the data.
#pragma once

#include "data/failure_data.hpp"
#include "nhpp/model.hpp"
#include "stats/gof.hpp"

namespace vbsrm::nhpp {

/// Laplace factor for failure-time data on (0, t_e]; values << 0
/// indicate reliability growth (inter-failure times lengthening).
double laplace_trend(const data::FailureTimeData& d);

/// Laplace factor for grouped data (interval-midpoint form).
double laplace_trend(const data::GroupedData& d);

/// KS test of the fitted model via the time transform u_i = Lambda(t_i)/
/// Lambda(t_e), which is iid U(0,1) under the model (conditional on m).
stats::KsResult ks_fit_test(const GammaTypeModel& model,
                            const data::FailureTimeData& d);

/// Chi-square GOF of grouped counts against model-expected counts,
/// conditioning on the observed total so only the *shape* is tested.
stats::ChiSquareResult chi_square_fit_test(const GammaTypeModel& model,
                                           const data::GroupedData& d,
                                           int fitted_params = 2);

}  // namespace vbsrm::nhpp
