// Gamma-type NHPP software reliability models (the paper's Section 2).
//
// The finite-failures NHPP is characterized by
//   Lambda(t) = omega * G(t; theta),
// where G is the common failure-time distribution of the individual
// faults.  The gamma-type family takes G = Gamma(shape alpha0, rate
// beta) with alpha0 *fixed* per model:
//   alpha0 = 1  ->  Goel-Okumoto (exponential),
//   alpha0 = 2  ->  delayed S-shaped (2-stage Erlang).
// The free parameters estimated from data are (omega, beta).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vbsrm::nhpp {

/// The gamma failure-time distribution of one fault: CDF, density,
/// survival, and interval mass — all parameterized by (alpha0, beta=rate).
struct GammaFailureLaw {
  double alpha0 = 1.0;

  double cdf(double t, double beta) const;
  double pdf(double t, double beta) const;
  double log_pdf(double t, double beta) const;
  double survival(double t, double beta) const;
  double log_survival(double t, double beta) const;
  /// G(b) - G(a) for 0 <= a < b, computed to preserve relative accuracy.
  double interval_mass(double a, double b, double beta) const;
  double log_interval_mass(double a, double b, double beta) const;
  /// E[T | a < T <= b] for T ~ Gamma(alpha0, beta); b may be +inf.
  double truncated_mean(double a, double b, double beta) const;
};

/// Per-rate table of incomplete-gamma values over a fixed, shared grid
/// of bin boundaries 0 < s_1 < ... < s_k.
///
/// Grouped-data hot paths (the VB2 fixed point above all) need, at one
/// rate beta, the interval masses G(s_i) - G(s_{i-1}) and truncated
/// means of every bin under both Gamma(alpha0, beta) and
/// Gamma(alpha0+1, beta).  Going through GammaFailureLaw evaluates each
/// interior boundary twice per law (once as the right edge of bin i,
/// once as the left edge of bin i+1) and pays a log/exp round trip plus
/// a fresh log-gamma normalizer inside every incomplete-gamma call.
/// This table evaluates each boundary exactly once per law with the
/// math::gamma_pq pair kernel (amortized log-gamma and log-boundary
/// values), then assembles bin masses with the same tail-aware
/// differencing branch as GammaFailureLaw::interval_mass.  Quantities
/// that underflow linear arithmetic (masses below ~1e-290) fall back to
/// the exact log-space GammaFailureLaw path, so results agree with the
/// naive evaluation to a few ulps everywhere.
class GroupedMassTable {
 public:
  /// `with_up_law = false` skips the Gamma(alpha0+1) table (only needed
  /// for truncated means), halving the pair-kernel work for callers
  /// that just difference masses.
  GroupedMassTable(double alpha0, std::vector<double> boundaries,
                   bool with_up_law = true);

  /// Recompute the per-boundary P/Q pairs at rate beta: one pair-kernel
  /// evaluation per boundary per law — or, for integral alpha0 <= 32
  /// (every named model in the paper), one Erlang survival sum costing
  /// a single exp for BOTH laws, since Q_{k+1}(x) = Q_k(x) + e^-x x^k/k!.
  void evaluate(double beta);

  double alpha0() const { return law_.alpha0; }
  double beta() const { return beta_; }
  std::size_t bins() const { return bounds_.size(); }

  /// Mass of bin i, (s_{i-1}, s_i], under Gamma(alpha0, beta).
  double interval_mass(std::size_t i) const;
  /// Same bin under Gamma(alpha0 + 1, beta).
  double interval_mass_up(std::size_t i) const;
  /// Survival Q(., beta * s_k) beyond the last boundary.
  double tail_survival() const { return q_.back(); }
  double tail_survival_up() const { return q_up_.back(); }

  /// E[T | s_{i-1} < T <= s_i] for T ~ Gamma(alpha0, beta).
  double truncated_mean(std::size_t i) const;
  /// E[T | T > s_k].
  double tail_truncated_mean() const;

  /// log interval_mass(i), with the deep-tail fallback of
  /// GammaFailureLaw::log_interval_mass when the mass underflows.
  double log_interval_mass(std::size_t i) const;
  /// log Q(alpha0, beta * s_k), deep-tail safe.
  double log_tail_survival() const;

 private:
  double left_edge(std::size_t i) const { return i == 0 ? 0.0 : bounds_[i - 1]; }

  GammaFailureLaw law_;
  std::vector<double> bounds_;      // s_1 .. s_k
  std::vector<double> log_bounds_;  // log s_j, fixed per table
  double lgamma_a_ = 0.0;           // log Gamma(alpha0)
  double lgamma_up_ = 0.0;          // log Gamma(alpha0 + 1)
  double beta_ = 0.0;
  bool with_up_ = true;             // alpha0+1 law tabulated too
  int erlang_k_ = 0;                // alpha0 when integral <= 32, else 0
  // Per-boundary regularized incomplete gamma pairs at rate beta_.
  std::vector<double> p_, q_;        // law alpha0
  std::vector<double> p_up_, q_up_;  // law alpha0 + 1
};

/// A fully specified gamma-type NHPP model (parameter point).
class GammaTypeModel {
 public:
  GammaTypeModel(double alpha0, double omega, double beta);

  double alpha0() const { return law_.alpha0; }
  double omega() const { return omega_; }
  double beta() const { return beta_; }
  const GammaFailureLaw& law() const { return law_; }

  /// Mean value function Lambda(t) = omega * G(t).
  double mean_value(double t) const;
  /// Intensity lambda(t) = omega * g(t).
  double intensity(double t) const;
  /// Expected residual faults at time t: omega * (1 - G(t)).
  double residual_faults(double t) const;
  /// Software reliability R(t+u | t) = exp(-(Lambda(t+u) - Lambda(t))),
  /// Eq. (3) of the paper.
  double reliability(double t, double u) const;

  std::string name() const;

 private:
  GammaFailureLaw law_;
  double omega_;
  double beta_;
};

/// Factories for the two named members of the family.
GammaTypeModel goel_okumoto(double omega, double beta);
GammaTypeModel delayed_s_shaped(double omega, double beta);

}  // namespace vbsrm::nhpp
