// Gamma-type NHPP software reliability models (the paper's Section 2).
//
// The finite-failures NHPP is characterized by
//   Lambda(t) = omega * G(t; theta),
// where G is the common failure-time distribution of the individual
// faults.  The gamma-type family takes G = Gamma(shape alpha0, rate
// beta) with alpha0 *fixed* per model:
//   alpha0 = 1  ->  Goel-Okumoto (exponential),
//   alpha0 = 2  ->  delayed S-shaped (2-stage Erlang).
// The free parameters estimated from data are (omega, beta).
#pragma once

#include <string>

namespace vbsrm::nhpp {

/// The gamma failure-time distribution of one fault: CDF, density,
/// survival, and interval mass — all parameterized by (alpha0, beta=rate).
struct GammaFailureLaw {
  double alpha0 = 1.0;

  double cdf(double t, double beta) const;
  double pdf(double t, double beta) const;
  double log_pdf(double t, double beta) const;
  double survival(double t, double beta) const;
  double log_survival(double t, double beta) const;
  /// G(b) - G(a) for 0 <= a < b, computed to preserve relative accuracy.
  double interval_mass(double a, double b, double beta) const;
  double log_interval_mass(double a, double b, double beta) const;
  /// E[T | a < T <= b] for T ~ Gamma(alpha0, beta); b may be +inf.
  double truncated_mean(double a, double b, double beta) const;
};

/// A fully specified gamma-type NHPP model (parameter point).
class GammaTypeModel {
 public:
  GammaTypeModel(double alpha0, double omega, double beta);

  double alpha0() const { return law_.alpha0; }
  double omega() const { return omega_; }
  double beta() const { return beta_; }
  const GammaFailureLaw& law() const { return law_; }

  /// Mean value function Lambda(t) = omega * G(t).
  double mean_value(double t) const;
  /// Intensity lambda(t) = omega * g(t).
  double intensity(double t) const;
  /// Expected residual faults at time t: omega * (1 - G(t)).
  double residual_faults(double t) const;
  /// Software reliability R(t+u | t) = exp(-(Lambda(t+u) - Lambda(t))),
  /// Eq. (3) of the paper.
  double reliability(double t, double u) const;

  std::string name() const;

 private:
  GammaFailureLaw law_;
  double omega_;
  double beta_;
};

/// Factories for the two named members of the family.
GammaTypeModel goel_okumoto(double omega, double beta);
GammaTypeModel delayed_s_shaped(double omega, double beta);

}  // namespace vbsrm::nhpp
