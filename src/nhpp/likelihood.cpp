#include "nhpp/likelihood.hpp"

#include <cmath>
#include <limits>

#include "math/specfun.hpp"

namespace vbsrm::nhpp {

namespace m = vbsrm::math;

double log_likelihood(const GammaTypeModel& model,
                      const data::FailureTimeData& d) {
  const auto& law = model.law();
  double ll = 0.0;
  for (double t : d.times()) ll += law.log_pdf(t, model.beta());
  ll += static_cast<double>(d.count()) * std::log(model.omega());
  ll -= model.omega() * law.cdf(d.observation_end(), model.beta());
  return ll;
}

double log_likelihood(const GammaTypeModel& model,
                      const data::GroupedData& d) {
  const auto& law = model.law();
  double ll = 0.0;
  for (std::size_t i = 0; i < d.intervals(); ++i) {
    const double x = static_cast<double>(d.counts()[i]);
    if (x > 0.0) {
      ll += x * law.log_interval_mass(d.left_edge(i), d.right_edge(i),
                                      model.beta());
    }
    ll -= m::log_gamma(x + 1.0);
  }
  ll += static_cast<double>(d.total_failures()) * std::log(model.omega());
  ll -= model.omega() * law.cdf(d.observation_end(), model.beta());
  return ll;
}

namespace {

template <typename Data>
double log_likelihood_at_impl(double alpha0, double omega, double beta,
                              const Data& d) {
  if (!(omega > 0.0) || !(beta > 0.0) || !std::isfinite(omega) ||
      !std::isfinite(beta)) {
    return -std::numeric_limits<double>::infinity();
  }
  return log_likelihood(GammaTypeModel(alpha0, omega, beta), d);
}

}  // namespace

double log_likelihood_at(double alpha0, double omega, double beta,
                         const data::FailureTimeData& d) {
  return log_likelihood_at_impl(alpha0, omega, beta, d);
}

double log_likelihood_at(double alpha0, double omega, double beta,
                         const data::GroupedData& d) {
  return log_likelihood_at_impl(alpha0, omega, beta, d);
}

double aic(double max_log_likelihood, int params) {
  return 2.0 * params - 2.0 * max_log_likelihood;
}

double bic(double max_log_likelihood, std::size_t n_observations,
           int params) {
  return params * std::log(static_cast<double>(n_observations)) -
         2.0 * max_log_likelihood;
}

}  // namespace vbsrm::nhpp
