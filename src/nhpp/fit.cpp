#include "nhpp/fit.hpp"

#include <cmath>
#include <limits>

#include "math/optimize.hpp"
#include "math/specfun.hpp"
#include "nhpp/likelihood.hpp"

namespace vbsrm::nhpp {

namespace m = vbsrm::math;

namespace {

/// E-step sufficient statistics: expected total fault count and
/// expected sum of all N failure times, given current (omega, beta).
struct EStep {
  double expected_n = 0.0;    // E[N | data]
  double expected_sum = 0.0;  // E[sum_i T_i | data]
};

EStep e_step(double alpha0, double omega, double beta,
             const data::FailureTimeData& d) {
  const GammaFailureLaw law{alpha0};
  const double te = d.observation_end();
  const double er = omega * law.survival(te, beta);  // residual faults
  EStep e;
  e.expected_n = static_cast<double>(d.count()) + er;
  e.expected_sum = d.total_time();
  if (er > 0.0) {
    e.expected_sum +=
        er * law.truncated_mean(te, std::numeric_limits<double>::infinity(),
                                beta);
  }
  return e;
}

EStep e_step(double alpha0, double omega, double beta,
             const data::GroupedData& d) {
  const GammaFailureLaw law{alpha0};
  EStep e;
  e.expected_n = static_cast<double>(d.total_failures());
  for (std::size_t i = 0; i < d.intervals(); ++i) {
    const double x = static_cast<double>(d.counts()[i]);
    if (x > 0.0) {
      e.expected_sum +=
          x * law.truncated_mean(d.left_edge(i), d.right_edge(i), beta);
    }
  }
  const double sk = d.observation_end();
  const double er = omega * law.survival(sk, beta);
  e.expected_n += er;
  if (er > 0.0) {
    e.expected_sum +=
        er * law.truncated_mean(sk, std::numeric_limits<double>::infinity(),
                                beta);
  }
  return e;
}

template <typename Data>
FitResult fit_em_impl(double alpha0, const Data& d, const FitOptions& opt) {
  const std::size_t failures =
      [&] {
        if constexpr (std::is_same_v<Data, data::FailureTimeData>) {
          return d.count();
        } else {
          return d.total_failures();
        }
      }();
  if (failures == 0) {
    throw std::invalid_argument("fit_em: no failures observed");
  }
  auto [omega, beta] =
      opt.start.value_or(default_start(alpha0, failures, d.observation_end()));

  FitResult r;
  for (int it = 1; it <= opt.max_iterations; ++it) {
    const EStep e = e_step(alpha0, omega, beta, d);
    // M-step: complete-data MLEs (Poisson mean; gamma rate, shape fixed).
    const double omega_n = e.expected_n;
    const double beta_n = e.expected_n * alpha0 / e.expected_sum;
    const double delta = std::max(m::rel_diff(omega_n, omega),
                                  m::rel_diff(beta_n, beta));
    omega = omega_n;
    beta = beta_n;
    r.iterations = it;
    if (delta < opt.rel_tol) {
      r.converged = true;
      break;
    }
  }
  r.omega = omega;
  r.beta = beta;
  r.log_likelihood = log_likelihood_at(alpha0, omega, beta, d);
  if (opt.compute_covariance) {
    auto nll = [&](const std::vector<double>& p) {
      return -log_likelihood_at(alpha0, p[0], p[1], d);
    };
    const auto h = m::numeric_hessian(nll, {omega, beta});
    math::Matrix hess(2, 2);
    hess(0, 0) = h[0]; hess(0, 1) = h[1]; hess(1, 0) = h[2]; hess(1, 1) = h[3];
    try {
      r.covariance = math::inverse(hess);
    } catch (const std::domain_error&) {
      r.covariance.reset();
    }
  }
  return r;
}

template <typename Data>
FitResult fit_direct_impl(double alpha0, const Data& d,
                          const FitOptions& opt) {
  const std::size_t failures =
      [&] {
        if constexpr (std::is_same_v<Data, data::FailureTimeData>) {
          return d.count();
        } else {
          return d.total_failures();
        }
      }();
  if (failures == 0) {
    throw std::invalid_argument("fit_direct: no failures observed");
  }
  auto [omega0, beta0] =
      opt.start.value_or(default_start(alpha0, failures, d.observation_end()));

  auto nll = [&](const std::vector<double>& p) {
    const double omega = std::exp(p[0]);
    const double beta = std::exp(p[1]);
    const double ll = log_likelihood_at(alpha0, omega, beta, d);
    return std::isfinite(ll) ? -ll : 1e300;
  };
  m::NelderMeadOptions nm;
  nm.max_iter = opt.max_iterations;
  nm.restarts = 2;
  const auto sol = m::nelder_mead(nll, {std::log(omega0), std::log(beta0)}, nm);

  FitResult r;
  r.omega = std::exp(sol.x[0]);
  r.beta = std::exp(sol.x[1]);
  r.log_likelihood = -sol.f;
  r.iterations = sol.evaluations;
  r.converged = sol.converged;
  if (opt.compute_covariance) {
    auto nll_nat = [&](const std::vector<double>& p) {
      return -log_likelihood_at(alpha0, p[0], p[1], d);
    };
    const auto h = m::numeric_hessian(nll_nat, {r.omega, r.beta});
    math::Matrix hess(2, 2);
    hess(0, 0) = h[0]; hess(0, 1) = h[1]; hess(1, 0) = h[2]; hess(1, 1) = h[3];
    try {
      r.covariance = math::inverse(hess);
    } catch (const std::domain_error&) {
      r.covariance.reset();
    }
  }
  return r;
}

}  // namespace

FitResult fit_em(double alpha0, const data::FailureTimeData& d,
                 const FitOptions& opt) {
  return fit_em_impl(alpha0, d, opt);
}

FitResult fit_em(double alpha0, const data::GroupedData& d,
                 const FitOptions& opt) {
  return fit_em_impl(alpha0, d, opt);
}

FitResult fit_direct(double alpha0, const data::FailureTimeData& d,
                     const FitOptions& opt) {
  return fit_direct_impl(alpha0, d, opt);
}

FitResult fit_direct(double alpha0, const data::GroupedData& d,
                     const FitOptions& opt) {
  return fit_direct_impl(alpha0, d, opt);
}

std::pair<double, double> default_start(double alpha0, std::size_t failures,
                                        double horizon) {
  const double omega = 1.3 * static_cast<double>(failures);
  // Mean of Gamma(alpha0, beta) is alpha0/beta; aim it at 0.6 * horizon.
  const double beta = alpha0 / (0.6 * horizon);
  return {omega, beta};
}

}  // namespace vbsrm::nhpp
