#include "nhpp/trend.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace vbsrm::nhpp {

double laplace_trend(const data::FailureTimeData& d) {
  const std::size_t n = d.count();
  if (n < 2) throw std::invalid_argument("laplace_trend: need >= 2 failures");
  const double te = d.observation_end();
  const double mean_frac = d.total_time() / (static_cast<double>(n) * te);
  return (mean_frac - 0.5) * std::sqrt(12.0 * static_cast<double>(n));
}

double laplace_trend(const data::GroupedData& d) {
  const std::size_t m = d.total_failures();
  if (m < 2) throw std::invalid_argument("laplace_trend: need >= 2 failures");
  const double te = d.observation_end();
  double s = 0.0;
  for (std::size_t i = 0; i < d.intervals(); ++i) {
    const double mid = 0.5 * (d.left_edge(i) + d.right_edge(i));
    s += static_cast<double>(d.counts()[i]) * mid;
  }
  const double mean_frac = s / (static_cast<double>(m) * te);
  return (mean_frac - 0.5) * std::sqrt(12.0 * static_cast<double>(m));
}

stats::KsResult ks_fit_test(const GammaTypeModel& model,
                            const data::FailureTimeData& d) {
  const double lam_te = model.mean_value(d.observation_end());
  if (!(lam_te > 0.0)) {
    throw std::invalid_argument("ks_fit_test: degenerate model");
  }
  std::vector<double> u;
  u.reserve(d.count());
  for (double t : d.times()) u.push_back(model.mean_value(t) / lam_te);
  auto uniform_cdf = [](double x) {
    if (x <= 0.0) return 0.0;
    if (x >= 1.0) return 1.0;
    return x;
  };
  return stats::ks_test(u, uniform_cdf);
}

stats::ChiSquareResult chi_square_fit_test(const GammaTypeModel& model,
                                           const data::GroupedData& d,
                                           int fitted_params) {
  const double lam_te = model.mean_value(d.observation_end());
  const double total = static_cast<double>(d.total_failures());
  std::vector<double> obs, expd;
  for (std::size_t i = 0; i < d.intervals(); ++i) {
    obs.push_back(static_cast<double>(d.counts()[i]));
    const double p = (model.mean_value(d.right_edge(i)) -
                      model.mean_value(d.left_edge(i))) /
                     lam_te;
    expd.push_back(total * p);
  }
  return stats::chi_square_test(obs, expd, fitted_params);
}

}  // namespace vbsrm::nhpp
