// Sequential predictive-quality assessment of software reliability
// models (Abdel-Ghaly/Chan/Littlewood's u-plot and prequential
// likelihood; see Lyu, Handbook of Software Reliability Engineering,
// ch. 4).  These tools judge a model by how well its *one-step-ahead
// predictions* matched the failures that subsequently occurred —
// exactly what a project manager consumes.
//
// For each i > warmup the model is refitted (EM) to t_1..t_{i-1} and
// the i-th failure is scored:
//   u_i = F_hat_i(t_i) = 1 - R_hat(t_i | t_{i-1}),
// which is U(0,1) under perfect prediction, and the prequential
// log-likelihood adds log f_hat_i(t_i).
#pragma once

#include <vector>

#include "data/failure_data.hpp"
#include "stats/gof.hpp"

namespace vbsrm::nhpp {

struct SequentialAssessment {
  /// One-step-ahead probability-integral transforms u_i (size =
  /// failures - warmup), U(0,1) iff the predictions were calibrated.
  std::vector<double> u;
  /// Prequential log-likelihood sum_i log f_hat_i(t_i): higher is
  /// better; differences between models behave like log Bayes factors.
  double prequential_log_likelihood = 0.0;
  /// KS distance of the u_i against U(0,1) — the u-plot statistic.
  double u_plot_distance = 0.0;
  /// p-value of that KS distance.
  double u_plot_pvalue = 0.0;
  /// Number of predictions scored.
  std::size_t predictions = 0;
};

/// Run the one-step-ahead assessment for a gamma-type model with fixed
/// alpha0, refitting by EM before each prediction.  `warmup` failures
/// are used for the initial fit (must be >= 2).
SequentialAssessment assess_one_step_ahead(double alpha0,
                                           const data::FailureTimeData& d,
                                           std::size_t warmup = 5);

/// Compare a set of alpha0 values by prequential likelihood on the same
/// data; returns pairs (alpha0, prequential log-likelihood) sorted best
/// first.
std::vector<std::pair<double, double>> prequential_ranking(
    const std::vector<double>& alpha0s, const data::FailureTimeData& d,
    std::size_t warmup = 5);

struct GroupedAssessment {
  /// Prequential log-likelihood: sum over intervals i > warmup of
  /// log Poisson(x_i; Lambda_hat_i increment), each Lambda_hat fitted
  /// to the data through interval i-1.
  double prequential_log_likelihood = 0.0;
  /// Mid-p probability-integral transforms of the observed counts
  /// against the one-step-ahead Poisson predictive (calibrated
  /// predictions give roughly U(0,1) values despite discreteness).
  std::vector<double> mid_p;
  std::size_t predictions = 0;
};

/// One-interval-ahead assessment for grouped data (plug-in Poisson
/// predictive from the EM refit).  `warmup` intervals (containing at
/// least 2 failures) seed the first fit.
GroupedAssessment assess_one_step_ahead(double alpha0,
                                        const data::GroupedData& d,
                                        std::size_t warmup = 8);

}  // namespace vbsrm::nhpp
