// Infinite-failures NHPP models — the *other* category of software
// reliability models (paper Sec. 2 restricts itself to the finite
// category Lambda(t) = omega G(t); here Lambda is unbounded):
//
//   Musa-Okumoto logarithmic Poisson:  Lambda(t) = (1/theta) ln(1 + lambda0 theta t)
//   Crow-AMSAA / Duane power law:      Lambda(t) = a t^b
//
// They serve as category-contrast baselines: when data truly comes from
// a finite-failures process, these models misjudge long-run reliability
// (they predict failures forever), and vice versa.  The power law has
// closed-form MLEs; Musa-Okumoto is fitted numerically.
#pragma once

#include "data/failure_data.hpp"

namespace vbsrm::nhpp::infinite {

struct MusaOkumotoModel {
  double lambda0 = 1.0;  // initial failure intensity
  double theta = 1.0;    // intensity decay per expected failure

  double mean_value(double t) const;
  double intensity(double t) const;
  /// R(t+u | t) = exp(-(Lambda(t+u) - Lambda(t))).
  double reliability(double t, double u) const;
};

struct PowerLawModel {
  double a = 1.0;  // scale
  double b = 1.0;  // growth exponent; b < 1 means reliability growth

  double mean_value(double t) const;
  double intensity(double t) const;
  double reliability(double t, double u) const;
};

struct InfiniteFitResult {
  double log_likelihood = 0.0;
  double aic = 0.0;
  bool converged = false;
};

struct MusaOkumotoFit : InfiniteFitResult {
  MusaOkumotoModel model;
};

struct PowerLawFit : InfiniteFitResult {
  PowerLawModel model;
};

/// NHPP log-likelihood sum log lambda(t_i) - Lambda(t_e) for either model.
double log_likelihood(const MusaOkumotoModel& m,
                      const data::FailureTimeData& d);
double log_likelihood(const PowerLawModel& m, const data::FailureTimeData& d);

/// MLE; power law closed form, Musa-Okumoto numeric.
MusaOkumotoFit fit_musa_okumoto(const data::FailureTimeData& d);
PowerLawFit fit_power_law(const data::FailureTimeData& d);

}  // namespace vbsrm::nhpp::infinite
