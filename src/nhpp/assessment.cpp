#include "nhpp/assessment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/specfun.hpp"
#include "nhpp/fit.hpp"
#include "nhpp/model.hpp"

namespace vbsrm::nhpp {

SequentialAssessment assess_one_step_ahead(double alpha0,
                                           const data::FailureTimeData& d,
                                           std::size_t warmup) {
  if (warmup < 2) {
    throw std::invalid_argument("assess_one_step_ahead: warmup >= 2");
  }
  if (d.count() <= warmup) {
    throw std::invalid_argument(
        "assess_one_step_ahead: not enough failures beyond the warmup");
  }
  SequentialAssessment out;
  const auto& times = d.times();

  FitOptions opt;
  opt.compute_covariance = false;
  std::pair<double, double> warm_start{0.0, 0.0};

  for (std::size_t i = warmup; i < times.size(); ++i) {
    // Fit on the first i failures, censored at the i-th failure time
    // (the information available just before the next failure).
    const double t_prev = times[i - 1];
    std::vector<double> history(times.begin(),
                                times.begin() + static_cast<long>(i));
    const data::FailureTimeData past(std::move(history), t_prev);
    if (warm_start.first > 0.0) opt.start = warm_start;
    const auto fit = fit_em(alpha0, past, opt);
    warm_start = {fit.omega, fit.beta};

    const GammaTypeModel model(alpha0, fit.omega, fit.beta);
    const double t_next = times[i];
    // Predictive law of the next failure time T given t_prev:
    //   F_hat(t) = 1 - R(t | t_prev) = 1 - exp(-(Lambda(t)-Lambda(t_prev)))
    const double inc = model.mean_value(t_next) - model.mean_value(t_prev);
    const double u = -std::expm1(-inc);
    out.u.push_back(std::clamp(u, 0.0, 1.0));
    // Density of the next failure time: f(t) = lambda(t) e^{-inc}.
    const double log_f = std::log(std::max(model.intensity(t_next), 1e-300)) -
                         inc;
    out.prequential_log_likelihood += log_f;
  }

  out.predictions = out.u.size();
  auto uniform_cdf = [](double x) { return std::clamp(x, 0.0, 1.0); };
  const auto ks = stats::ks_test(out.u, uniform_cdf);
  out.u_plot_distance = ks.statistic;
  out.u_plot_pvalue = ks.p_value;
  return out;
}

GroupedAssessment assess_one_step_ahead(double alpha0,
                                        const data::GroupedData& d,
                                        std::size_t warmup) {
  if (warmup < 2 || warmup >= d.intervals()) {
    throw std::invalid_argument(
        "assess_one_step_ahead(grouped): need 2 <= warmup < intervals");
  }
  GroupedAssessment out;
  FitOptions opt;
  opt.compute_covariance = false;
  std::pair<double, double> warm_start{0.0, 0.0};

  for (std::size_t i = warmup; i < d.intervals(); ++i) {
    std::vector<double> bounds(d.boundaries().begin(),
                               d.boundaries().begin() + static_cast<long>(i));
    std::vector<std::size_t> counts(d.counts().begin(),
                                    d.counts().begin() + static_cast<long>(i));
    const data::GroupedData past(std::move(bounds), std::move(counts));
    if (past.total_failures() < 2) continue;  // not enough signal yet
    if (warm_start.first > 0.0) opt.start = warm_start;
    const auto fit = fit_em(alpha0, past, opt);
    warm_start = {fit.omega, fit.beta};

    const GammaTypeModel model(alpha0, fit.omega, fit.beta);
    const double mu = model.mean_value(d.right_edge(i)) -
                      model.mean_value(d.left_edge(i));
    const double x = static_cast<double>(d.counts()[i]);
    // Poisson log pmf.
    out.prequential_log_likelihood +=
        x * std::log(std::max(mu, 1e-300)) - mu -
        vbsrm::math::log_gamma(x + 1.0);
    // Mid-p PIT: P(X < x) + 0.5 P(X = x).
    double cdf_below = 0.0, pmf_at = std::exp(-mu);
    for (double k = 0.0; k < x; k += 1.0) {
      cdf_below += pmf_at;
      pmf_at *= mu / (k + 1.0);
    }
    out.mid_p.push_back(cdf_below + 0.5 * pmf_at);
    ++out.predictions;
  }
  return out;
}

std::vector<std::pair<double, double>> prequential_ranking(
    const std::vector<double>& alpha0s, const data::FailureTimeData& d,
    std::size_t warmup) {
  std::vector<std::pair<double, double>> out;
  for (double a : alpha0s) {
    const auto assess = assess_one_step_ahead(a, d, warmup);
    out.emplace_back(a, assess.prequential_log_likelihood);
  }
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    return x.second > y.second;
  });
  return out;
}

}  // namespace vbsrm::nhpp
