#include "nhpp/model.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "math/specfun.hpp"

namespace vbsrm::nhpp {

namespace m = vbsrm::math;

double GammaFailureLaw::cdf(double t, double beta) const {
  if (t <= 0.0) return 0.0;
  return m::gamma_p(alpha0, beta * t);
}

double GammaFailureLaw::pdf(double t, double beta) const {
  if (t <= 0.0) return 0.0;
  return std::exp(log_pdf(t, beta));
}

double GammaFailureLaw::log_pdf(double t, double beta) const {
  if (t <= 0.0) return -std::numeric_limits<double>::infinity();
  return alpha0 * std::log(beta) + (alpha0 - 1.0) * std::log(t) - beta * t -
         m::log_gamma(alpha0);
}

double GammaFailureLaw::survival(double t, double beta) const {
  if (t <= 0.0) return 1.0;
  return m::gamma_q(alpha0, beta * t);
}

double GammaFailureLaw::log_survival(double t, double beta) const {
  if (t <= 0.0) return 0.0;
  return m::log_gamma_q(alpha0, beta * t);
}

double GammaFailureLaw::interval_mass(double a, double b, double beta) const {
  if (!(b > a) || a < 0.0) {
    throw std::invalid_argument("interval_mass: need 0 <= a < b");
  }
  // Difference of survival functions keeps accuracy in the right tail;
  // difference of CDFs keeps it in the left tail.  Pick by location.
  if (beta * a > alpha0) {
    return m::gamma_q(alpha0, beta * a) -
           (std::isfinite(b) ? m::gamma_q(alpha0, beta * b) : 0.0);
  }
  const double fb = std::isfinite(b) ? m::gamma_p(alpha0, beta * b) : 1.0;
  return fb - m::gamma_p(alpha0, beta * a);
}

double GammaFailureLaw::log_interval_mass(double a, double b,
                                          double beta) const {
  const double mass = interval_mass(a, b, beta);
  if (mass > 1e-290) return std::log(mass);
  // Deep-tail fallback: log(Q(a') - Q(b')) via log-space subtraction.
  const double lqa = log_survival(a, beta);
  const double lqb = std::isfinite(b)
                         ? log_survival(b, beta)
                         : -std::numeric_limits<double>::infinity();
  if (lqb == -std::numeric_limits<double>::infinity()) return lqa;
  return lqa + m::log1m_exp(lqb - lqa);
}

double GammaFailureLaw::truncated_mean(double a, double b, double beta) const {
  // E[T; a < T <= b] = (alpha0/beta) * (G_{alpha0+1}(b) - G_{alpha0+1}(a)),
  // so the conditional mean is that over the alpha0 interval mass.
  GammaFailureLaw up{alpha0 + 1.0};
  const double num_log = up.log_interval_mass(a, b, beta);
  const double den_log = log_interval_mass(a, b, beta);
  return alpha0 / beta * std::exp(num_log - den_log);
}

namespace {
// Linear-space masses below this underflow double arithmetic soon;
// match the deep-tail threshold of log_interval_mass.
constexpr double kMassFloor = 1e-290;
}  // namespace

GroupedMassTable::GroupedMassTable(double alpha0,
                                   std::vector<double> boundaries,
                                   bool with_up_law)
    : law_{alpha0}, bounds_(std::move(boundaries)), with_up_(with_up_law) {
  if (!(alpha0 > 0.0)) {
    throw std::invalid_argument("GroupedMassTable: alpha0 must be > 0");
  }
  if (bounds_.empty()) {
    throw std::invalid_argument("GroupedMassTable: need >= 1 boundary");
  }
  double prev = 0.0;
  log_bounds_.reserve(bounds_.size());
  for (const double s : bounds_) {
    if (!(s > prev)) {
      throw std::invalid_argument(
          "GroupedMassTable: boundaries must be positive and increasing");
    }
    log_bounds_.push_back(std::log(s));
    prev = s;
  }
  lgamma_a_ = m::log_gamma(alpha0);
  lgamma_up_ = m::log_gamma(alpha0 + 1.0);
  if (alpha0 == std::floor(alpha0) && alpha0 >= 1.0 && alpha0 <= 32.0) {
    erlang_k_ = static_cast<int>(alpha0);
  }
  p_.resize(bounds_.size());
  q_.resize(bounds_.size());
  p_up_.resize(bounds_.size());
  q_up_.resize(bounds_.size());
}

void GroupedMassTable::evaluate(double beta) {
  if (!(beta > 0.0)) {
    throw std::invalid_argument("GroupedMassTable: beta must be > 0");
  }
  beta_ = beta;
  if (erlang_k_ > 0) {
    // Integral alpha0 = k: Q_k(x) = e^-x sum_{i<k} x^i/i!, all-positive
    // terms, so one exp yields full relative accuracy for both laws
    // (the alpha0+1 survival just adds the next term).  The complement
    // P = 1 - Q is only ulp-accurate when P is O(1); for small P the
    // lower tail series sum_{i>=k} e^-x x^i/i! restores relative
    // accuracy and converges fast precisely there (x < k).
    const int k = erlang_k_;
    for (std::size_t j = 0; j < bounds_.size(); ++j) {
      const double x = beta * bounds_[j];
      const double e = std::exp(-x);
      double term = e;  // e^-x x^i / i!, starting at i = 0
      double q = 0.0;
      for (int i = 0; i < k; ++i) {
        q += term;
        term *= x / (i + 1);
      }
      const double q_up = q + term;  // term now e^-x x^k / k!
      double p = 1.0 - q;
      double p_up = 1.0 - q_up;
      if (p < 0.5 && e > 0.0) {
        double rest = 0.0;
        double t2 = term * x / (k + 1);  // i = k + 1
        for (int i = k + 1; i < k + 512; ++i) {
          rest += t2;
          t2 *= x / (i + 1);
          if (t2 < (rest + term) * 1e-17) break;
        }
        p = term + rest;  // sum_{i>=k}
        p_up = rest;      // sum_{i>=k+1}
      }
      p_[j] = p;
      q_[j] = q;
      p_up_[j] = p_up;
      q_up_[j] = q_up;
    }
    return;
  }
  const double log_beta = std::log(beta);
  const double a = law_.alpha0;
  for (std::size_t j = 0; j < bounds_.size(); ++j) {
    const double x = beta * bounds_[j];
    const double log_x = log_beta + log_bounds_[j];
    const auto pq = m::gamma_pq_cached(a, x, log_x, lgamma_a_);
    p_[j] = pq.p;
    q_[j] = pq.q;
    if (with_up_) {
      const auto pq_up = m::gamma_pq_cached(a + 1.0, x, log_x, lgamma_up_);
      p_up_[j] = pq_up.p;
      q_up_[j] = pq_up.q;
    }
  }
}

double GroupedMassTable::interval_mass(std::size_t i) const {
  // Same branch as GammaFailureLaw::interval_mass: survival differences
  // in the right tail, CDF differences in the left.
  if (i > 0 && beta_ * bounds_[i - 1] > law_.alpha0) {
    return q_[i - 1] - q_[i];
  }
  return p_[i] - (i > 0 ? p_[i - 1] : 0.0);
}

double GroupedMassTable::interval_mass_up(std::size_t i) const {
  if (i > 0 && beta_ * bounds_[i - 1] > law_.alpha0 + 1.0) {
    return q_up_[i - 1] - q_up_[i];
  }
  return p_up_[i] - (i > 0 ? p_up_[i - 1] : 0.0);
}

double GroupedMassTable::truncated_mean(std::size_t i) const {
  const double mass = interval_mass(i);
  const double mass_up = interval_mass_up(i);
  if (mass > kMassFloor && mass_up > kMassFloor) {
    return law_.alpha0 / beta_ * (mass_up / mass);
  }
  return law_.truncated_mean(left_edge(i), bounds_[i], beta_);
}

double GroupedMassTable::tail_truncated_mean() const {
  const double mass = q_.back();
  const double mass_up = q_up_.back();
  if (mass > kMassFloor && mass_up > kMassFloor) {
    return law_.alpha0 / beta_ * (mass_up / mass);
  }
  return law_.truncated_mean(bounds_.back(),
                             std::numeric_limits<double>::infinity(), beta_);
}

double GroupedMassTable::log_interval_mass(std::size_t i) const {
  const double mass = interval_mass(i);
  if (mass > kMassFloor) return std::log(mass);
  return law_.log_interval_mass(left_edge(i), bounds_[i], beta_);
}

double GroupedMassTable::log_tail_survival() const {
  const double mass = q_.back();
  if (mass > kMassFloor) return std::log(mass);
  return m::log_gamma_q(law_.alpha0, beta_ * bounds_.back());
}

GammaTypeModel::GammaTypeModel(double alpha0, double omega, double beta)
    : law_{alpha0}, omega_(omega), beta_(beta) {
  if (!(alpha0 > 0.0) || !(omega > 0.0) || !(beta > 0.0)) {
    throw std::invalid_argument("GammaTypeModel: parameters must be > 0");
  }
}

double GammaTypeModel::mean_value(double t) const {
  return omega_ * law_.cdf(t, beta_);
}

double GammaTypeModel::intensity(double t) const {
  return omega_ * law_.pdf(t, beta_);
}

double GammaTypeModel::residual_faults(double t) const {
  return omega_ * law_.survival(t, beta_);
}

double GammaTypeModel::reliability(double t, double u) const {
  if (u < 0.0) throw std::invalid_argument("reliability: u must be >= 0");
  if (u == 0.0) return 1.0;
  const double inc = omega_ * law_.interval_mass(t, t + u, beta_);
  return std::exp(-inc);
}

std::string GammaTypeModel::name() const {
  std::ostringstream os;
  if (law_.alpha0 == 1.0) {
    os << "Goel-Okumoto";
  } else if (law_.alpha0 == 2.0) {
    os << "delayed S-shaped";
  } else {
    os << "gamma-type(alpha0=" << law_.alpha0 << ")";
  }
  os << "(omega=" << omega_ << ", beta=" << beta_ << ")";
  return os.str();
}

GammaTypeModel goel_okumoto(double omega, double beta) {
  return GammaTypeModel(1.0, omega, beta);
}

GammaTypeModel delayed_s_shaped(double omega, double beta) {
  return GammaTypeModel(2.0, omega, beta);
}

}  // namespace vbsrm::nhpp
