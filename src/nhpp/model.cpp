#include "nhpp/model.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "math/specfun.hpp"

namespace vbsrm::nhpp {

namespace m = vbsrm::math;

double GammaFailureLaw::cdf(double t, double beta) const {
  if (t <= 0.0) return 0.0;
  return m::gamma_p(alpha0, beta * t);
}

double GammaFailureLaw::pdf(double t, double beta) const {
  if (t <= 0.0) return 0.0;
  return std::exp(log_pdf(t, beta));
}

double GammaFailureLaw::log_pdf(double t, double beta) const {
  if (t <= 0.0) return -std::numeric_limits<double>::infinity();
  return alpha0 * std::log(beta) + (alpha0 - 1.0) * std::log(t) - beta * t -
         m::log_gamma(alpha0);
}

double GammaFailureLaw::survival(double t, double beta) const {
  if (t <= 0.0) return 1.0;
  return m::gamma_q(alpha0, beta * t);
}

double GammaFailureLaw::log_survival(double t, double beta) const {
  if (t <= 0.0) return 0.0;
  return m::log_gamma_q(alpha0, beta * t);
}

double GammaFailureLaw::interval_mass(double a, double b, double beta) const {
  if (!(b > a) || a < 0.0) {
    throw std::invalid_argument("interval_mass: need 0 <= a < b");
  }
  // Difference of survival functions keeps accuracy in the right tail;
  // difference of CDFs keeps it in the left tail.  Pick by location.
  if (beta * a > alpha0) {
    return m::gamma_q(alpha0, beta * a) -
           (std::isfinite(b) ? m::gamma_q(alpha0, beta * b) : 0.0);
  }
  const double fb = std::isfinite(b) ? m::gamma_p(alpha0, beta * b) : 1.0;
  return fb - m::gamma_p(alpha0, beta * a);
}

double GammaFailureLaw::log_interval_mass(double a, double b,
                                          double beta) const {
  const double mass = interval_mass(a, b, beta);
  if (mass > 1e-290) return std::log(mass);
  // Deep-tail fallback: log(Q(a') - Q(b')) via log-space subtraction.
  const double lqa = log_survival(a, beta);
  const double lqb = std::isfinite(b)
                         ? log_survival(b, beta)
                         : -std::numeric_limits<double>::infinity();
  if (lqb == -std::numeric_limits<double>::infinity()) return lqa;
  return lqa + m::log1m_exp(lqb - lqa);
}

double GammaFailureLaw::truncated_mean(double a, double b, double beta) const {
  // E[T; a < T <= b] = (alpha0/beta) * (G_{alpha0+1}(b) - G_{alpha0+1}(a)),
  // so the conditional mean is that over the alpha0 interval mass.
  GammaFailureLaw up{alpha0 + 1.0};
  const double num_log = up.log_interval_mass(a, b, beta);
  const double den_log = log_interval_mass(a, b, beta);
  return alpha0 / beta * std::exp(num_log - den_log);
}

GammaTypeModel::GammaTypeModel(double alpha0, double omega, double beta)
    : law_{alpha0}, omega_(omega), beta_(beta) {
  if (!(alpha0 > 0.0) || !(omega > 0.0) || !(beta > 0.0)) {
    throw std::invalid_argument("GammaTypeModel: parameters must be > 0");
  }
}

double GammaTypeModel::mean_value(double t) const {
  return omega_ * law_.cdf(t, beta_);
}

double GammaTypeModel::intensity(double t) const {
  return omega_ * law_.pdf(t, beta_);
}

double GammaTypeModel::residual_faults(double t) const {
  return omega_ * law_.survival(t, beta_);
}

double GammaTypeModel::reliability(double t, double u) const {
  if (u < 0.0) throw std::invalid_argument("reliability: u must be >= 0");
  if (u == 0.0) return 1.0;
  const double inc = omega_ * law_.interval_mass(t, t + u, beta_);
  return std::exp(-inc);
}

std::string GammaTypeModel::name() const {
  std::ostringstream os;
  if (law_.alpha0 == 1.0) {
    os << "Goel-Okumoto";
  } else if (law_.alpha0 == 2.0) {
    os << "delayed S-shaped";
  } else {
    os << "gamma-type(alpha0=" << law_.alpha0 << ")";
  }
  os << "(omega=" << omega_ << ", beta=" << beta_ << ")";
  return os.str();
}

GammaTypeModel goel_okumoto(double omega, double beta) {
  return GammaTypeModel(1.0, omega, beta);
}

GammaTypeModel delayed_s_shaped(double omega, double beta) {
  return GammaTypeModel(2.0, omega, beta);
}

}  // namespace vbsrm::nhpp
