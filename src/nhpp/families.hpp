// A zoo of finite-failures NHPP model families beyond the gamma type.
//
// Every family is a parametric failure-time distribution F(t; theta):
// the mean value function is Lambda(t) = omega * F(t; theta) (paper
// Sec. 2 — the class is closed under any proper F).  The gamma-type
// family of the paper (Goel-Okumoto, delayed S-shaped) lives in
// model.hpp with its conjugate machinery; the families here extend the
// library to the wider model set used in practice (Lyu's handbook):
// Weibull-type (Goel's generalized model), Rayleigh, Pareto (Littlewood),
// log-normal, log-logistic, and gamma with a *free* shape.
//
// Parameterization: estimation works on an unconstrained "working"
// vector w (optimizers like Nelder-Mead need R^k); each family maps w
// to its natural parameters internally (exp for positive quantities,
// identity for location parameters).  `describe` renders the natural
// values for reporting.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "data/failure_data.hpp"
#include "random/rng.hpp"

namespace vbsrm::nhpp::families {

class Family {
 public:
  using Params = std::span<const double>;

  Family(std::string name, std::vector<std::string> param_names,
         std::function<double(double, Params)> cdf,
         std::function<double(double, Params)> log_pdf,
         std::function<std::vector<double>(double)> default_start,
         std::function<std::vector<double>(Params)> natural);

  const std::string& name() const { return name_; }
  std::size_t param_count() const { return param_names_.size(); }
  const std::vector<std::string>& param_names() const { return param_names_; }

  /// F(t; w) with w the unconstrained working parameters.
  double cdf(double t, Params w) const { return cdf_(t, w); }
  double log_pdf(double t, Params w) const { return log_pdf_(t, w); }
  double pdf(double t, Params w) const;
  double survival(double t, Params w) const { return 1.0 - cdf(t, w); }
  /// F(b) - F(a), clamped to [0, 1].
  double interval_mass(double a, double b, Params w) const;

  /// Heuristic unconstrained start for data observed on (0, horizon].
  std::vector<double> default_start(double horizon) const {
    return start_(horizon);
  }
  /// Natural-space values of the working parameters (for reporting).
  std::vector<double> natural(Params w) const { return natural_(w); }
  std::string describe(Params w) const;

  /// Draw one failure time by inverse-cdf sampling (generic; used by
  /// simulation and tests).
  double sample(random::Rng& rng, Params w) const;

 private:
  std::string name_;
  std::vector<std::string> param_names_;
  std::function<double(double, Params)> cdf_;
  std::function<double(double, Params)> log_pdf_;
  std::function<std::vector<double>(double)> start_;
  std::function<std::vector<double>(Params)> natural_;
};

/// The registry.  References remain valid for the program lifetime.
const Family& exponential();   // F = 1 - e^{-bt}          (Goel-Okumoto)
const Family& rayleigh();      // F = 1 - e^{-(t/s)^2 / 2}
const Family& weibull();       // F = 1 - e^{-(bt)^k}      (generalized Goel)
const Family& gamma_free();    // F = P(k, bt), k free     (gamma-type, free shape)
const Family& lognormal();     // F = Phi((ln t - mu)/sigma)
const Family& pareto();        // F = 1 - (1 + t/s)^{-k}   (Littlewood)
const Family& loglogistic();   // F = 1 / (1 + (t/s)^{-k})

/// All registered families, in a stable order.
std::vector<const Family*> all_families();

/// Find by name (exact); nullptr if unknown.
const Family* find_family(const std::string& name);

/// MLE of (omega, theta) for an arbitrary family.
struct FamilyFit {
  const Family* family = nullptr;
  double omega = 0.0;
  std::vector<double> working;      // unconstrained parameters
  std::vector<double> natural;      // natural-space parameters
  double log_likelihood = 0.0;
  double aic = 0.0;
  bool converged = false;
};

FamilyFit fit_family(const Family& family, const data::FailureTimeData& d);
FamilyFit fit_family(const Family& family, const data::GroupedData& d);

/// Fit every registered family and return the results sorted by AIC
/// (best first).  Families whose optimization fails are skipped.
std::vector<FamilyFit> rank_families(const data::FailureTimeData& d);
std::vector<FamilyFit> rank_families(const data::GroupedData& d);

/// Log-likelihood of a fitted family (both data schemes), exposed for
/// tests and custom criteria.
double family_log_likelihood(const Family& family, double omega,
                             Family::Params w,
                             const data::FailureTimeData& d);
double family_log_likelihood(const Family& family, double omega,
                             Family::Params w, const data::GroupedData& d);

/// Simulate a finite-failures NHPP with the given family: N ~
/// Poisson(omega), times i.i.d. from F, keep those <= te.
data::FailureTimeData simulate_family(random::Rng& rng, const Family& family,
                                      double omega, Family::Params w,
                                      double te);

}  // namespace vbsrm::nhpp::families
