#include "nhpp/families.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "math/optimize.hpp"
#include "math/roots.hpp"
#include "math/specfun.hpp"
#include "random/distributions.hpp"

namespace vbsrm::nhpp::families {

namespace m = vbsrm::math;

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

Family::Family(std::string name, std::vector<std::string> param_names,
               std::function<double(double, Params)> cdf,
               std::function<double(double, Params)> log_pdf,
               std::function<std::vector<double>(double)> default_start,
               std::function<std::vector<double>(Params)> natural)
    : name_(std::move(name)),
      param_names_(std::move(param_names)),
      cdf_(std::move(cdf)),
      log_pdf_(std::move(log_pdf)),
      start_(std::move(default_start)),
      natural_(std::move(natural)) {}

double Family::pdf(double t, Params w) const {
  const double lp = log_pdf(t, w);
  return std::isfinite(lp) ? std::exp(lp) : 0.0;
}

double Family::interval_mass(double a, double b, Params w) const {
  if (!(b > a) || a < 0.0) {
    throw std::invalid_argument("interval_mass: need 0 <= a < b");
  }
  const double fb = std::isfinite(b) ? cdf(b, w) : 1.0;
  return std::clamp(fb - cdf(a, w), 0.0, 1.0);
}

std::string Family::describe(Params w) const {
  std::ostringstream os;
  os << name_ << "(";
  const auto nat = natural(w);
  for (std::size_t i = 0; i < nat.size(); ++i) {
    if (i) os << ", ";
    os << param_names_[i] << "=" << nat[i];
  }
  os << ")";
  return os.str();
}

double Family::sample(random::Rng& rng, Params w) const {
  const double u = rng.next_open();
  auto f = [&](double t) { return cdf(t, w) - u; };
  // Bracket the quantile geometrically.
  double hi = 1.0;
  int guard = 0;
  while (f(hi) < 0.0 && guard++ < 400) hi *= 1.9;
  const auto r = m::brent(f, 0.0, hi, 1e-12, 300);
  return std::max(r.x, std::numeric_limits<double>::min());
}

// ---------------------------------------------------------------------------
// Family definitions.  w holds unconstrained values; positives go
// through exp().

const Family& exponential() {
  static const Family f(
      "exponential", {"rate"},
      [](double t, Family::Params w) {
        if (t <= 0.0) return 0.0;
        return -std::expm1(-std::exp(w[0]) * t);
      },
      [](double t, Family::Params w) {
        if (t <= 0.0) return kNegInf;
        const double b = std::exp(w[0]);
        return std::log(b) - b * t;
      },
      [](double horizon) {
        return std::vector<double>{std::log(1.0 / (0.6 * horizon))};
      },
      [](Family::Params w) { return std::vector<double>{std::exp(w[0])}; });
  return f;
}

const Family& rayleigh() {
  static const Family f(
      "rayleigh", {"scale"},
      [](double t, Family::Params w) {
        if (t <= 0.0) return 0.0;
        const double z = t / std::exp(w[0]);
        return -std::expm1(-0.5 * z * z);
      },
      [](double t, Family::Params w) {
        if (t <= 0.0) return kNegInf;
        const double s = std::exp(w[0]);
        const double z = t / s;
        return std::log(t) - 2.0 * std::log(s) - 0.5 * z * z;
      },
      [](double horizon) {
        return std::vector<double>{std::log(0.5 * horizon)};
      },
      [](Family::Params w) { return std::vector<double>{std::exp(w[0])}; });
  return f;
}

const Family& weibull() {
  static const Family f(
      "weibull", {"rate", "shape"},
      [](double t, Family::Params w) {
        if (t <= 0.0) return 0.0;
        const double b = std::exp(w[0]), k = std::exp(w[1]);
        return -std::expm1(-std::pow(b * t, k));
      },
      [](double t, Family::Params w) {
        if (t <= 0.0) return kNegInf;
        const double b = std::exp(w[0]), k = std::exp(w[1]);
        const double z = b * t;
        return std::log(k) + std::log(b) + (k - 1.0) * std::log(z) -
               std::pow(z, k);
      },
      [](double horizon) {
        return std::vector<double>{std::log(1.0 / (0.6 * horizon)), 0.0};
      },
      [](Family::Params w) {
        return std::vector<double>{std::exp(w[0]), std::exp(w[1])};
      });
  return f;
}

const Family& gamma_free() {
  static const Family f(
      "gamma", {"rate", "shape"},
      [](double t, Family::Params w) {
        if (t <= 0.0) return 0.0;
        return m::gamma_p(std::exp(w[1]), std::exp(w[0]) * t);
      },
      [](double t, Family::Params w) {
        if (t <= 0.0) return kNegInf;
        const double b = std::exp(w[0]), k = std::exp(w[1]);
        return k * std::log(b) + (k - 1.0) * std::log(t) - b * t -
               m::log_gamma(k);
      },
      [](double horizon) {
        return std::vector<double>{std::log(1.0 / (0.6 * horizon)), 0.0};
      },
      [](Family::Params w) {
        return std::vector<double>{std::exp(w[0]), std::exp(w[1])};
      });
  return f;
}

const Family& lognormal() {
  static const Family f(
      "lognormal", {"mu", "sigma"},
      [](double t, Family::Params w) {
        if (t <= 0.0) return 0.0;
        return m::normal_cdf((std::log(t) - w[0]) / std::exp(w[1]));
      },
      [](double t, Family::Params w) {
        if (t <= 0.0) return kNegInf;
        const double s = std::exp(w[1]);
        const double z = (std::log(t) - w[0]) / s;
        return -std::log(t) - std::log(s) - 0.5 * std::log(2.0 * M_PI) -
               0.5 * z * z;
      },
      [](double horizon) {
        return std::vector<double>{std::log(0.4 * horizon),
                                   std::log(1.0)};
      },
      [](Family::Params w) {
        return std::vector<double>{w[0], std::exp(w[1])};
      });
  return f;
}

const Family& pareto() {
  static const Family f(
      "pareto", {"scale", "shape"},
      [](double t, Family::Params w) {
        if (t <= 0.0) return 0.0;
        const double s = std::exp(w[0]), k = std::exp(w[1]);
        return -std::expm1(-k * std::log1p(t / s));
      },
      [](double t, Family::Params w) {
        if (t <= 0.0) return kNegInf;
        const double s = std::exp(w[0]), k = std::exp(w[1]);
        return std::log(k) - std::log(s) - (k + 1.0) * std::log1p(t / s);
      },
      [](double horizon) {
        return std::vector<double>{std::log(0.3 * horizon), std::log(1.5)};
      },
      [](Family::Params w) {
        return std::vector<double>{std::exp(w[0]), std::exp(w[1])};
      });
  return f;
}

const Family& loglogistic() {
  static const Family f(
      "loglogistic", {"scale", "shape"},
      [](double t, Family::Params w) {
        if (t <= 0.0) return 0.0;
        const double s = std::exp(w[0]), k = std::exp(w[1]);
        return 1.0 / (1.0 + std::pow(t / s, -k));
      },
      [](double t, Family::Params w) {
        if (t <= 0.0) return kNegInf;
        const double s = std::exp(w[0]), k = std::exp(w[1]);
        const double lz = std::log(t / s);
        // f(t) = (k/s)(t/s)^{k-1} / (1 + (t/s)^k)^2
        return std::log(k) - std::log(s) + (k - 1.0) * lz -
               2.0 * m::log_add_exp(0.0, k * lz);
      },
      [](double horizon) {
        return std::vector<double>{std::log(0.4 * horizon), std::log(2.0)};
      },
      [](Family::Params w) {
        return std::vector<double>{std::exp(w[0]), std::exp(w[1])};
      });
  return f;
}

std::vector<const Family*> all_families() {
  return {&exponential(), &rayleigh(),  &weibull(),     &gamma_free(),
          &lognormal(),   &pareto(),    &loglogistic()};
}

const Family* find_family(const std::string& name) {
  for (const Family* f : all_families()) {
    if (f->name() == name) return f;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Generic likelihood and MLE.

double family_log_likelihood(const Family& family, double omega,
                             Family::Params w,
                             const data::FailureTimeData& d) {
  if (!(omega > 0.0)) return kNegInf;
  double ll = 0.0;
  for (double t : d.times()) ll += family.log_pdf(t, w);
  ll += static_cast<double>(d.count()) * std::log(omega);
  ll -= omega * family.cdf(d.observation_end(), w);
  return ll;
}

double family_log_likelihood(const Family& family, double omega,
                             Family::Params w, const data::GroupedData& d) {
  if (!(omega > 0.0)) return kNegInf;
  double ll = 0.0;
  for (std::size_t i = 0; i < d.intervals(); ++i) {
    const double x = static_cast<double>(d.counts()[i]);
    if (x > 0.0) {
      const double mass =
          family.interval_mass(d.left_edge(i), d.right_edge(i), w);
      if (!(mass > 0.0)) return kNegInf;
      ll += x * std::log(mass);
    }
    ll -= m::log_gamma(x + 1.0);
  }
  ll += static_cast<double>(d.total_failures()) * std::log(omega);
  ll -= omega * family.cdf(d.observation_end(), w);
  return ll;
}

namespace {

template <typename Data>
FamilyFit fit_family_impl(const Family& family, const Data& d,
                          std::size_t failures) {
  if (failures == 0) {
    throw std::invalid_argument("fit_family: no failures observed");
  }
  FamilyFit fit;
  fit.family = &family;

  std::vector<double> x0 = family.default_start(d.observation_end());
  x0.insert(x0.begin(), std::log(1.3 * static_cast<double>(failures)));

  auto nll = [&](const std::vector<double>& p) {
    const double omega = std::exp(p[0]);
    const std::span<const double> w(p.data() + 1, p.size() - 1);
    const double ll = family_log_likelihood(family, omega, w, d);
    return std::isfinite(ll) ? -ll : 1e300;
  };
  m::NelderMeadOptions nm;
  nm.max_iter = 20000;
  nm.restarts = 2;
  const auto sol = m::nelder_mead(nll, std::move(x0), nm);

  fit.omega = std::exp(sol.x[0]);
  fit.working.assign(sol.x.begin() + 1, sol.x.end());
  fit.natural = family.natural(fit.working);
  fit.log_likelihood = -sol.f;
  fit.aic = 2.0 * static_cast<double>(1 + family.param_count()) -
            2.0 * fit.log_likelihood;
  fit.converged = sol.converged && sol.f < 1e299;
  return fit;
}

template <typename Data>
std::vector<FamilyFit> rank_families_impl(const Data& d) {
  std::vector<FamilyFit> fits;
  for (const Family* f : all_families()) {
    try {
      auto fit = fit_family(*f, d);
      if (fit.converged && std::isfinite(fit.aic)) {
        fits.push_back(std::move(fit));
      }
    } catch (const std::exception&) {
      // A family that cannot be fitted to this data set is skipped.
    }
  }
  std::sort(fits.begin(), fits.end(),
            [](const FamilyFit& a, const FamilyFit& b) {
              return a.aic < b.aic;
            });
  return fits;
}

}  // namespace

FamilyFit fit_family(const Family& family, const data::FailureTimeData& d) {
  return fit_family_impl(family, d, d.count());
}

FamilyFit fit_family(const Family& family, const data::GroupedData& d) {
  return fit_family_impl(family, d, d.total_failures());
}

std::vector<FamilyFit> rank_families(const data::FailureTimeData& d) {
  return rank_families_impl(d);
}

std::vector<FamilyFit> rank_families(const data::GroupedData& d) {
  return rank_families_impl(d);
}

data::FailureTimeData simulate_family(random::Rng& rng, const Family& family,
                                      double omega, Family::Params w,
                                      double te) {
  if (!(omega > 0.0) || !(te > 0.0)) {
    throw std::invalid_argument("simulate_family: bad omega/te");
  }
  const auto n = random::sample_poisson(rng, omega);
  std::vector<double> times;
  for (std::uint64_t i = 0; i < n; ++i) {
    const double y = family.sample(rng, w);
    if (y <= te) times.push_back(y);
  }
  std::sort(times.begin(), times.end());
  return data::FailureTimeData(std::move(times), te);
}

}  // namespace vbsrm::nhpp::families
