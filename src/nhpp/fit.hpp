// Point estimation of gamma-type NHPP models: direct maximum likelihood
// (Nelder-Mead on (log omega, log beta)) and the EM iteration of
// Okamura, Watanabe & Dohi (ISSRE 2003), which treats the undetected
// faults as missing data and has closed-form M-steps for this family.
// Both data schemes are supported.
#pragma once

#include <optional>

#include "data/failure_data.hpp"
#include "math/linalg.hpp"
#include "nhpp/model.hpp"

namespace vbsrm::nhpp {

struct FitResult {
  double omega = 0.0;
  double beta = 0.0;
  double log_likelihood = 0.0;
  int iterations = 0;
  bool converged = false;

  /// Asymptotic covariance of (omega, beta): inverse observed Fisher
  /// information at the optimum (empty if the Hessian was not PD).
  std::optional<math::Matrix> covariance;

  GammaTypeModel model(double alpha0) const {
    return GammaTypeModel(alpha0, omega, beta);
  }
};

struct FitOptions {
  double rel_tol = 1e-10;   // parameter change tolerance
  int max_iterations = 10000;
  bool compute_covariance = true;
  /// Optional starting point; a heuristic is used otherwise.
  std::optional<std::pair<double, double>> start;
};

/// MLE via the EM algorithm (recommended: monotone likelihood ascent,
/// no tuning).
FitResult fit_em(double alpha0, const data::FailureTimeData& d,
                 const FitOptions& opt = {});
FitResult fit_em(double alpha0, const data::GroupedData& d,
                 const FitOptions& opt = {});

/// MLE via Nelder-Mead on (log omega, log beta); used to cross-check EM
/// and for models where EM is not available.
FitResult fit_direct(double alpha0, const data::FailureTimeData& d,
                     const FitOptions& opt = {});
FitResult fit_direct(double alpha0, const data::GroupedData& d,
                     const FitOptions& opt = {});

/// Heuristic starting point: omega ~ 1.3x observed failures, beta so
/// that the failure law's mean sits at ~60% of the horizon.
std::pair<double, double> default_start(double alpha0, std::size_t failures,
                                        double horizon);

}  // namespace vbsrm::nhpp
