#include "nhpp/prediction.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/roots.hpp"

namespace vbsrm::nhpp {

double reliability(const GammaTypeModel& model, double t, double u) {
  return model.reliability(t, u);
}

double expected_failures(const GammaTypeModel& model, double t, double u) {
  if (u == 0.0) return 0.0;
  return model.omega() * model.law().interval_mass(t, t + u, model.beta());
}

double next_failure_cdf(const GammaTypeModel& model, double t, double u) {
  return 1.0 - model.reliability(t, u);
}

double next_failure_quantile(const GammaTypeModel& model, double t, double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("next_failure_quantile: p in (0,1)");
  }
  // The limiting failure probability is 1 - exp(-residual_faults(t)).
  const double p_ever = 1.0 - std::exp(-model.residual_faults(t));
  if (p >= p_ever) return std::numeric_limits<double>::infinity();
  auto f = [&](double u) { return next_failure_cdf(model, t, u) - p; };
  double hi = std::max(1.0, t);
  int guard = 0;
  while (f(hi) < 0.0 && guard++ < 200) hi *= 2.0;
  const auto r = math::brent(f, 0.0, hi, 1e-12, 300);
  return r.x;
}

double test_time_for_reliability(const GammaTypeModel& model, double t,
                                 double mission, double target,
                                 double max_wait) {
  if (!(target > 0.0) || !(target < 1.0)) {
    throw std::invalid_argument("test_time_for_reliability: target in (0,1)");
  }
  auto rel_after = [&](double w) {
    return model.reliability(t + w, mission);
  };
  if (rel_after(0.0) >= target) return 0.0;
  if (rel_after(max_wait) < target) {
    return std::numeric_limits<double>::infinity();
  }
  auto f = [&](double w) { return rel_after(w) - target; };
  const auto r = math::brent(f, 0.0, max_wait, 1e-10, 300);
  return r.x;
}

}  // namespace vbsrm::nhpp
