// Log-likelihood of gamma-type NHPP models under both observation
// schemes (paper Eqs. 4 and 5), plus sufficient-statistic helpers shared
// by the MLE, EM, MAP and Bayesian estimators.
#pragma once

#include "data/failure_data.hpp"
#include "nhpp/model.hpp"

namespace vbsrm::nhpp {

/// Eq. (4):  sum_i log g(t_i) + m log omega - omega G(t_e).
double log_likelihood(const GammaTypeModel& model,
                      const data::FailureTimeData& d);

/// Eq. (5):  sum_i x_i log(G(s_i)-G(s_{i-1})) + (sum x_i) log omega
///           - sum_i log x_i! - omega G(s_k).
double log_likelihood(const GammaTypeModel& model, const data::GroupedData& d);

/// Log-likelihood as a function of (omega, beta) for fixed alpha0 —
/// the form optimizers consume.  Returns -inf off the domain.
double log_likelihood_at(double alpha0, double omega, double beta,
                         const data::FailureTimeData& d);
double log_likelihood_at(double alpha0, double omega, double beta,
                         const data::GroupedData& d);

/// Akaike / Bayesian information criteria for a fitted model (2 free
/// parameters: omega and beta).
double aic(double max_log_likelihood, int params = 2);
double bic(double max_log_likelihood, std::size_t n_observations,
           int params = 2);

}  // namespace vbsrm::nhpp
