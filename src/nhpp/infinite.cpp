#include "nhpp/infinite.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/optimize.hpp"

namespace vbsrm::nhpp::infinite {

namespace m = vbsrm::math;

double MusaOkumotoModel::mean_value(double t) const {
  if (t <= 0.0) return 0.0;
  return std::log1p(lambda0 * theta * t) / theta;
}

double MusaOkumotoModel::intensity(double t) const {
  return lambda0 / (1.0 + lambda0 * theta * std::max(t, 0.0));
}

double MusaOkumotoModel::reliability(double t, double u) const {
  if (u < 0.0) throw std::invalid_argument("reliability: u >= 0");
  return std::exp(-(mean_value(t + u) - mean_value(t)));
}

double PowerLawModel::mean_value(double t) const {
  if (t <= 0.0) return 0.0;
  return a * std::pow(t, b);
}

double PowerLawModel::intensity(double t) const {
  if (t <= 0.0) return 0.0;
  return a * b * std::pow(t, b - 1.0);
}

double PowerLawModel::reliability(double t, double u) const {
  if (u < 0.0) throw std::invalid_argument("reliability: u >= 0");
  return std::exp(-(mean_value(t + u) - mean_value(t)));
}

double log_likelihood(const MusaOkumotoModel& mo,
                      const data::FailureTimeData& d) {
  if (!(mo.lambda0 > 0.0) || !(mo.theta > 0.0)) {
    return -std::numeric_limits<double>::infinity();
  }
  double ll = 0.0;
  for (double t : d.times()) ll += std::log(mo.intensity(t));
  return ll - mo.mean_value(d.observation_end());
}

double log_likelihood(const PowerLawModel& pl,
                      const data::FailureTimeData& d) {
  if (!(pl.a > 0.0) || !(pl.b > 0.0)) {
    return -std::numeric_limits<double>::infinity();
  }
  double ll = 0.0;
  for (double t : d.times()) ll += std::log(pl.intensity(t));
  return ll - pl.mean_value(d.observation_end());
}

MusaOkumotoFit fit_musa_okumoto(const data::FailureTimeData& d) {
  if (d.count() < 2) {
    throw std::invalid_argument("fit_musa_okumoto: need >= 2 failures");
  }
  const double te = d.observation_end();
  const double m0 = static_cast<double>(d.count());
  auto nll = [&](const std::vector<double>& p) {
    const MusaOkumotoModel mo{std::exp(p[0]), std::exp(p[1])};
    const double ll = log_likelihood(mo, d);
    return std::isfinite(ll) ? -ll : 1e300;
  };
  // Start: initial intensity ~ early empirical rate; theta so that
  // Lambda(te) ~ observed count.
  const double lam0 = 2.0 * m0 / te;
  const double th0 = 1.0 / m0;
  m::NelderMeadOptions nm;
  nm.restarts = 2;
  const auto sol = m::nelder_mead(nll, {std::log(lam0), std::log(th0)}, nm);
  MusaOkumotoFit fit;
  fit.model = {std::exp(sol.x[0]), std::exp(sol.x[1])};
  fit.log_likelihood = -sol.f;
  fit.aic = 4.0 - 2.0 * fit.log_likelihood;
  fit.converged = sol.converged;
  return fit;
}

PowerLawFit fit_power_law(const data::FailureTimeData& d) {
  if (d.count() < 2) {
    throw std::invalid_argument("fit_power_law: need >= 2 failures");
  }
  // Closed-form (Crow 1974): b = m / sum ln(te / t_i), a = m / te^b.
  const double te = d.observation_end();
  const double m0 = static_cast<double>(d.count());
  double s = 0.0;
  for (double t : d.times()) s += std::log(te / t);
  if (!(s > 0.0)) {
    throw std::domain_error("fit_power_law: degenerate times");
  }
  PowerLawFit fit;
  fit.model.b = m0 / s;
  fit.model.a = m0 / std::pow(te, fit.model.b);
  fit.log_likelihood = log_likelihood(fit.model, d);
  fit.aic = 4.0 - 2.0 * fit.log_likelihood;
  fit.converged = true;
  return fit;
}

}  // namespace vbsrm::nhpp::infinite
