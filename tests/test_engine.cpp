// Engine layer: registry round-trips, adapter fidelity (engine results
// must bit-match the direct estimator calls they wrap), and BatchRunner
// determinism (parallel == serial, MCMC included, fixed seeds).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bayes/gibbs.hpp"
#include "bayes/laplace.hpp"
#include "bayes/nint.hpp"
#include "core/vb2.hpp"
#include "data/datasets.hpp"
#include "engine/batch.hpp"
#include "engine/registry.hpp"

namespace {

using namespace vbsrm;

bayes::PriorPair info_priors_dt() {
  return {bayes::GammaPrior::from_mean_sd(50.0, 15.8),
          bayes::GammaPrior::from_mean_sd(1.0e-5, 3.2e-6)};
}

bayes::PriorPair info_priors_dg() {
  return {bayes::GammaPrior::from_mean_sd(50.0, 15.8),
          bayes::GammaPrior::from_mean_sd(3.3e-2, 1.1e-2)};
}

engine::EstimatorRequest system17_request() {
  return engine::EstimatorRequest(
      1.0, data::datasets::system17_failure_times(), info_priors_dt());
}

// --- registry -------------------------------------------------------------

TEST(EngineRegistry, RoundTripsAllFivePaperMethods) {
  const auto req = system17_request();
  for (const char* name : {"vb2", "vb1", "nint", "laplace", "mcmc"}) {
    SCOPED_TRACE(name);
    EXPECT_TRUE(engine::is_registered(name));
    const auto est = engine::make(name, req);
    ASSERT_NE(est, nullptr);
    EXPECT_EQ(est->method(), name);
    // Every method must answer the paper's three questions.
    const auto s = est->summarize();
    EXPECT_GT(s.mean_omega, 0.0);
    const auto ci = est->interval_omega(0.99);
    EXPECT_LT(ci.lower, ci.upper);
    EXPECT_GE(est->diagnostics().wall_time_ms, 0.0);
  }
}

TEST(EngineRegistry, LookupIsCaseInsensitive) {
  EXPECT_TRUE(engine::is_registered("VB2"));
  EXPECT_TRUE(engine::is_registered("Laplace"));
  const auto est = engine::make("MCMC", [] {
    auto r = system17_request();
    r.mcmc.base.samples = 50;
    r.mcmc.base.burn_in = 50;
    r.mcmc.base.thin = 1;
    return r;
  }());
  EXPECT_EQ(est->method(), "mcmc");
}

TEST(EngineRegistry, UnknownNameThrowsListingKnownMethods) {
  const auto req = system17_request();
  try {
    engine::make("no-such-method", req);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-method"), std::string::npos);
    EXPECT_NE(msg.find("vb2"), std::string::npos);
  }
}

TEST(EngineRegistry, MethodNamesContainTheFiveBuiltins) {
  const auto names = engine::method_names();
  for (const char* name : {"laplace", "mcmc", "nint", "vb1", "vb2"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
}

TEST(EngineRegistry, CustomRegistrationIsOneCallAway) {
  EXPECT_FALSE(engine::register_method("vb2", engine::EstimatorFactory{}));
  const bool fresh = engine::register_method(
      "test-alias-vb2", [](const engine::EstimatorRequest& r) {
        return engine::make("vb2", r);
      });
  EXPECT_TRUE(fresh);
  EXPECT_FALSE(engine::register_method("test-alias-vb2",
                                       [](const engine::EstimatorRequest& r) {
                                         return engine::make("vb1", r);
                                       }));
  const auto est = engine::make("test-alias-vb2", system17_request());
  EXPECT_EQ(est->method(), "vb2");
}

// --- adapter fidelity: engine == direct calls, bitwise -------------------

TEST(EngineAdapters, Vb2BitMatchesDirectEstimatorOnSystem17) {
  const auto req = system17_request();
  const auto est = engine::make("vb2", req);

  const core::Vb2Estimator direct(
      1.0, data::datasets::system17_failure_times(), info_priors_dt());
  const auto want = direct.posterior().summary();
  const auto got = est->summarize();
  EXPECT_EQ(got.mean_omega, want.mean_omega);
  EXPECT_EQ(got.mean_beta, want.mean_beta);
  EXPECT_EQ(got.var_omega, want.var_omega);
  EXPECT_EQ(got.var_beta, want.var_beta);
  EXPECT_EQ(got.cov, want.cov);

  const auto want_io = direct.posterior().interval_omega(0.99);
  const auto got_io = est->interval_omega(0.99);
  EXPECT_EQ(got_io.lower, want_io.lower);
  EXPECT_EQ(got_io.upper, want_io.upper);

  const auto want_r = direct.posterior().reliability(1000.0, 0.99);
  const auto got_r = est->reliability(1000.0, 0.99);
  EXPECT_EQ(got_r.point, want_r.point);
  EXPECT_EQ(got_r.lower, want_r.lower);
  EXPECT_EQ(got_r.upper, want_r.upper);

  EXPECT_EQ(est->diagnostics().n_max_used, direct.diagnostics().n_max_used);
  ASSERT_NE(est->mixture(), nullptr);
}

TEST(EngineAdapters, LaplaceBitMatchesDirectEstimatorOnSystem17) {
  const auto req = system17_request();
  const auto est = engine::make("laplace", req);

  const bayes::LogPosterior post(1.0, data::datasets::system17_failure_times(),
                                 info_priors_dt());
  const bayes::LaplaceEstimator direct(post);
  const auto want = direct.summary();
  const auto got = est->summarize();
  EXPECT_EQ(got.mean_omega, want.mean_omega);
  EXPECT_EQ(got.mean_beta, want.mean_beta);
  EXPECT_EQ(got.var_omega, want.var_omega);
  EXPECT_EQ(got.var_beta, want.var_beta);
  EXPECT_EQ(got.cov, want.cov);

  const auto want_ib = direct.interval_beta(0.99);
  const auto got_ib = est->interval_beta(0.99);
  EXPECT_EQ(got_ib.lower, want_ib.lower);
  EXPECT_EQ(got_ib.upper, want_ib.upper);
  EXPECT_EQ(est->mixture(), nullptr);
}

TEST(EngineAdapters, NintBoxSeedingMatchesManualVb2Pipeline) {
  const auto req = system17_request();
  const auto est = engine::make("nint", req);

  // The hand-wired pipeline every call site used to repeat.
  const core::Vb2Estimator vb2(1.0, data::datasets::system17_failure_times(),
                               info_priors_dt());
  const bayes::LogPosterior post(1.0, data::datasets::system17_failure_times(),
                                 info_priors_dt());
  const auto box = bayes::Box::from_quantiles(
      vb2.posterior().quantile_omega(0.005),
      vb2.posterior().quantile_omega(0.995),
      vb2.posterior().quantile_beta(0.005),
      vb2.posterior().quantile_beta(0.995));
  const bayes::NintEstimator direct(post, box);

  EXPECT_EQ(est->summarize().mean_omega, direct.summary().mean_omega);
  EXPECT_EQ(est->summarize().cov, direct.summary().cov);
  const auto want_io = direct.interval_omega(0.99);
  const auto got_io = est->interval_omega(0.99);
  EXPECT_EQ(got_io.lower, want_io.lower);
  EXPECT_EQ(got_io.upper, want_io.upper);
}

TEST(EngineAdapters, McmcRespectsRequestSeedAndReportsVariates) {
  auto req = system17_request();
  req.mcmc.base.seed = 4242;
  req.mcmc.base.burn_in = 500;
  req.mcmc.base.thin = 2;
  req.mcmc.base.samples = 1000;
  const auto est = engine::make("mcmc", req);

  const auto direct = bayes::gibbs_failure_times(
      1.0, data::datasets::system17_failure_times(), info_priors_dt(),
      req.mcmc.base);
  EXPECT_EQ(est->summarize().mean_omega, direct.summary().mean_omega);
  EXPECT_EQ(est->summarize().var_beta, direct.summary().var_beta);
  EXPECT_EQ(est->diagnostics().chain_samples, direct.size());
  EXPECT_EQ(est->diagnostics().variates, direct.variates_generated());
}

// --- batch runner ---------------------------------------------------------

engine::BatchSpec small_grid_spec() {
  engine::BatchSpec spec;
  spec.methods = {"vb2", "vb1", "nint", "laplace", "mcmc"};

  auto dt = engine::EstimatorRequest(
      1.0, data::datasets::system17_failure_times(), info_priors_dt());
  auto dg = engine::EstimatorRequest(1.0, data::datasets::system17_grouped(),
                                     info_priors_dg());
  for (auto* r : {&dt, &dg}) {
    r->mcmc.base.burn_in = 500;
    r->mcmc.base.thin = 2;
    r->mcmc.base.samples = 1000;
  }
  spec.requests = {dt, dg};
  spec.levels = {0.9, 0.99};
  spec.reliability_windows = {1000.0};
  spec.mcmc_seed_base = 20070707;
  return spec;
}

void expect_reports_identical(const std::vector<engine::EstimationReport>& a,
                              const std::vector<engine::EstimationReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].method, b[i].method);
    EXPECT_EQ(a[i].request_index, b[i].request_index);
    EXPECT_EQ(a[i].level, b[i].level);
    EXPECT_EQ(a[i].ok, b[i].ok);
    EXPECT_EQ(a[i].error, b[i].error);
    EXPECT_EQ(a[i].summary.mean_omega, b[i].summary.mean_omega);
    EXPECT_EQ(a[i].summary.mean_beta, b[i].summary.mean_beta);
    EXPECT_EQ(a[i].summary.var_omega, b[i].summary.var_omega);
    EXPECT_EQ(a[i].summary.var_beta, b[i].summary.var_beta);
    EXPECT_EQ(a[i].summary.cov, b[i].summary.cov);
    EXPECT_EQ(a[i].omega_interval.lower, b[i].omega_interval.lower);
    EXPECT_EQ(a[i].omega_interval.upper, b[i].omega_interval.upper);
    EXPECT_EQ(a[i].beta_interval.lower, b[i].beta_interval.lower);
    EXPECT_EQ(a[i].beta_interval.upper, b[i].beta_interval.upper);
    ASSERT_EQ(a[i].reliability.size(), b[i].reliability.size());
    for (std::size_t k = 0; k < a[i].reliability.size(); ++k) {
      EXPECT_EQ(a[i].reliability[k].point, b[i].reliability[k].point);
      EXPECT_EQ(a[i].reliability[k].lower, b[i].reliability[k].lower);
      EXPECT_EQ(a[i].reliability[k].upper, b[i].reliability[k].upper);
    }
    // Diagnostics match too, wall time excluded (it is the one
    // legitimately nondeterministic field).
    EXPECT_EQ(a[i].diagnostics.iterations, b[i].diagnostics.iterations);
    EXPECT_EQ(a[i].diagnostics.n_max_used, b[i].diagnostics.n_max_used);
    EXPECT_EQ(a[i].diagnostics.chain_samples, b[i].diagnostics.chain_samples);
    EXPECT_EQ(a[i].diagnostics.variates, b[i].diagnostics.variates);
  }
}

TEST(BatchRunner, ParallelRunIsIdenticalToSerialRunMcmcIncluded) {
  const auto spec = small_grid_spec();
  const auto serial = engine::BatchRunner(1).run(spec);
  const auto parallel = engine::BatchRunner(4).run(spec);

  // 5 methods x 2 requests x 2 levels.
  ASSERT_EQ(serial.size(), 20u);
  for (const auto& r : serial) EXPECT_TRUE(r.ok) << r.method << ": " << r.error;
  expect_reports_identical(serial, parallel);
}

TEST(BatchRunner, TwoConsecutiveParallelRunsAreIdentical) {
  const auto spec = small_grid_spec();
  const engine::BatchRunner runner(4);
  expect_reports_identical(runner.run(spec), runner.run(spec));
}

TEST(BatchRunner, ReportsComeBackInGridOrder) {
  const auto spec = small_grid_spec();
  const auto reports = engine::BatchRunner(4).run(spec);
  std::size_t i = 0;
  for (const auto& method : spec.methods) {
    for (std::size_t ri = 0; ri < spec.requests.size(); ++ri) {
      for (const double level : spec.levels) {
        ASSERT_LT(i, reports.size());
        EXPECT_EQ(reports[i].method, method);
        EXPECT_EQ(reports[i].request_index, ri);
        EXPECT_EQ(reports[i].level, level);
        ++i;
      }
    }
  }
}

TEST(BatchRunner, PerCellSeedsAreDistinctAndDeterministic) {
  EXPECT_EQ(engine::derive_cell_seed(1, 0), engine::derive_cell_seed(1, 0));
  EXPECT_NE(engine::derive_cell_seed(1, 0), engine::derive_cell_seed(1, 1));
  EXPECT_NE(engine::derive_cell_seed(1, 0), engine::derive_cell_seed(2, 0));
}

TEST(BatchRunner, FailedCellsReportTheErrorInsteadOfThrowing) {
  engine::BatchSpec spec;
  spec.methods = {"no-such-method", "vb2"};
  spec.requests = {system17_request()};
  spec.levels = {0.99};
  const auto reports = engine::BatchRunner(2).run(spec);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_FALSE(reports[0].ok);
  EXPECT_NE(reports[0].error.find("no-such-method"), std::string::npos);
  EXPECT_TRUE(reports[1].ok);
}

}  // namespace
