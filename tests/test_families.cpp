// The NHPP model-family zoo: distributional correctness of every
// registered family, generic MLE recovery, and AIC ranking.
#include <gtest/gtest.h>

#include <cmath>

#include "data/datasets.hpp"
#include "nhpp/families.hpp"
#include "nhpp/fit.hpp"
#include "nhpp/likelihood.hpp"
#include "random/rng.hpp"
#include "stats/gof.hpp"

namespace f = vbsrm::nhpp::families;
namespace d = vbsrm::data;

namespace {

// Every family, with a representative working-parameter vector whose
// scale suits t in (0, ~10).
struct Case {
  const f::Family* family;
  std::vector<double> w;
};

std::vector<Case> representative_cases() {
  return {
      {&f::exponential(), {std::log(0.5)}},
      {&f::rayleigh(), {std::log(2.0)}},
      {&f::weibull(), {std::log(0.4), std::log(1.7)}},
      {&f::gamma_free(), {std::log(0.8), std::log(2.5)}},
      {&f::lognormal(), {std::log(1.5), std::log(0.6)}},
      {&f::pareto(), {std::log(2.0), std::log(2.5)}},
      {&f::loglogistic(), {std::log(1.8), std::log(2.2)}},
  };
}

class FamilySweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  Case c_ = representative_cases()[GetParam()];
};

TEST_P(FamilySweep, CdfIsValidDistribution) {
  const auto& [fam, w] = c_;
  EXPECT_NEAR(fam->cdf(0.0, w), 0.0, 1e-12);
  EXPECT_NEAR(fam->cdf(-1.0, w), 0.0, 1e-12);
  double prev = 0.0;
  for (double t = 0.05; t < 60.0; t *= 1.3) {
    const double p = fam->cdf(t, w);
    EXPECT_GE(p, prev - 1e-13) << fam->name() << " t=" << t;
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_GT(fam->cdf(1e5, w), 0.99) << fam->name();
}

TEST_P(FamilySweep, PdfIsDerivativeOfCdf) {
  const auto& [fam, w] = c_;
  for (double t : {0.3, 1.0, 2.5, 6.0}) {
    const double h = 1e-6 * t;
    const double numeric = (fam->cdf(t + h, w) - fam->cdf(t - h, w)) / (2 * h);
    EXPECT_NEAR(fam->pdf(t, w), numeric,
                1e-5 * std::max(1.0, numeric))
        << fam->name() << " t=" << t;
  }
}

TEST_P(FamilySweep, SampleMatchesCdfByKs) {
  const auto& [fam, w] = c_;
  vbsrm::random::Rng rng(1000 + GetParam());
  std::vector<double> x;
  for (int i = 0; i < 2000; ++i) x.push_back(fam->sample(rng, w));
  const auto ks = vbsrm::stats::ks_test(
      x, [&](double t) { return fam->cdf(t, w); });
  EXPECT_GT(ks.p_value, 1e-3) << fam->name();
}

TEST_P(FamilySweep, IntervalMassPartitions) {
  const auto& [fam, w] = c_;
  const double total =
      fam->interval_mass(0.0, 1.0, w) + fam->interval_mass(1.0, 4.0, w) +
      fam->interval_mass(4.0, std::numeric_limits<double>::infinity(), w);
  EXPECT_NEAR(total, 1.0, 1e-10) << fam->name();
}

TEST_P(FamilySweep, MleRecoversSimulationTruth) {
  const auto& [fam, w] = c_;
  vbsrm::random::Rng rng(2000 + GetParam());
  const double omega = 400.0;
  // Horizon at the 95% quantile of the family so most faults are seen.
  double te = 1.0;
  while (fam->cdf(te, w) < 0.95) te *= 1.4;
  const auto sim = f::simulate_family(rng, *fam, omega, w, te);
  ASSERT_GT(sim.count(), 200u);
  const auto fit = f::fit_family(*fam, sim);
  EXPECT_TRUE(fit.converged) << fam->name();
  EXPECT_NEAR(fit.omega, omega, 0.15 * omega) << fam->name();
  // Log-likelihood at the fit must beat the truth's (it is the MLE).
  EXPECT_GE(fit.log_likelihood + 1e-6,
            f::family_log_likelihood(*fam, omega, w, sim))
      << fam->name();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilySweep,
                         ::testing::Range<std::size_t>(0, 7));

TEST(Families, RegistryLookup) {
  EXPECT_EQ(f::all_families().size(), 7u);
  EXPECT_EQ(f::find_family("weibull"), &f::weibull());
  EXPECT_EQ(f::find_family("no-such-family"), nullptr);
}

TEST(Families, DescribeRendersNaturalParams) {
  const auto s = f::weibull().describe(std::vector<double>{0.0, 0.0});
  EXPECT_NE(s.find("weibull"), std::string::npos);
  EXPECT_NE(s.find("rate=1"), std::string::npos);
  EXPECT_NE(s.find("shape=1"), std::string::npos);
}

TEST(Families, ExponentialMatchesGammaTypeLikelihood) {
  // The zoo's exponential at rate b must give the same log-likelihood
  // as the gamma-type machinery with alpha0 = 1.
  const auto dt = d::datasets::system17_failure_times();
  const double beta = 1.26e-5;
  const std::vector<double> w{std::log(beta)};
  EXPECT_NEAR(f::family_log_likelihood(f::exponential(), 44.0, w, dt),
              vbsrm::nhpp::log_likelihood_at(1.0, 44.0, beta, dt), 1e-8);
}

TEST(Families, GammaFreeMatchesFixedShapeAtSamePoint) {
  const auto dt = d::datasets::system17_failure_times();
  const std::vector<double> w{std::log(1.9e-5), std::log(2.0)};
  EXPECT_NEAR(f::family_log_likelihood(f::gamma_free(), 44.0, w, dt),
              vbsrm::nhpp::log_likelihood_at(2.0, 44.0, 1.9e-5, dt), 1e-7);
}

TEST(Families, RankingPrefersGeneratingFamily) {
  vbsrm::random::Rng rng(77);
  const std::vector<double> w{std::log(1.5), std::log(0.5)};  // lognormal
  double te = 1.0;
  while (f::lognormal().cdf(te, w) < 0.97) te *= 1.4;
  const auto sim = f::simulate_family(rng, f::lognormal(), 500.0, w, te);
  const auto ranking = f::rank_families(sim);
  ASSERT_GE(ranking.size(), 5u);
  // The generating family must be at or very near the top.
  std::size_t pos = ranking.size();
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i].family == &f::lognormal()) pos = i;
  }
  EXPECT_LE(pos, 1u);
  // AIC sorted ascending.
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_LE(ranking[i - 1].aic, ranking[i].aic);
  }
}

TEST(Families, RankingWorksOnGroupedData) {
  const auto dg = d::datasets::system17_grouped();
  const auto ranking = f::rank_families(dg);
  ASSERT_GE(ranking.size(), 4u);
  // The grouped stand-in is DSS-generated: a hump-capable family
  // (gamma with shape ~2, weibull shape > 1, ...) must beat the
  // exponential.
  double aic_exp = 0.0, aic_best = ranking.front().aic;
  for (const auto& fit : ranking) {
    if (fit.family == &f::exponential()) aic_exp = fit.aic;
  }
  EXPECT_GT(aic_exp, aic_best);
}

TEST(Families, FitRejectsEmptyData) {
  d::FailureTimeData empty({}, 10.0);
  EXPECT_THROW(f::fit_family(f::weibull(), empty), std::invalid_argument);
}

TEST(Families, SimulateRejectsBadArgs) {
  vbsrm::random::Rng rng(1);
  const std::vector<double> w{0.0};
  EXPECT_THROW(f::simulate_family(rng, f::exponential(), -1.0, w, 10.0),
               std::invalid_argument);
}

}  // namespace
