// Gamma-type NHPP models: closed-form cross-checks for the two named
// members (Goel-Okumoto, delayed S-shaped) and the generic law.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "nhpp/model.hpp"

namespace n = vbsrm::nhpp;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(GoelOkumoto, MeanValueClosedForm) {
  const auto go = n::goel_okumoto(50.0, 2e-3);
  for (double t : {0.0, 100.0, 500.0, 5000.0}) {
    EXPECT_NEAR(go.mean_value(t), 50.0 * (1.0 - std::exp(-2e-3 * t)), 1e-10)
        << "t=" << t;
  }
  EXPECT_NEAR(go.intensity(100.0), 50.0 * 2e-3 * std::exp(-0.2), 1e-10);
}

TEST(DelayedSShaped, MeanValueClosedForm) {
  const auto dss = n::delayed_s_shaped(30.0, 1e-2);
  for (double t : {0.0, 50.0, 200.0, 1000.0}) {
    const double bt = 1e-2 * t;
    EXPECT_NEAR(dss.mean_value(t), 30.0 * (1.0 - (1.0 + bt) * std::exp(-bt)),
                1e-9)
        << "t=" << t;
  }
}

TEST(DelayedSShaped, IntensityIsHumpShaped) {
  const auto dss = n::delayed_s_shaped(30.0, 1e-2);
  // lambda(t) = omega b^2 t e^{-bt}: peaks at t = 1/b = 100.
  EXPECT_LT(dss.intensity(10.0), dss.intensity(100.0));
  EXPECT_GT(dss.intensity(100.0), dss.intensity(400.0));
}

TEST(GammaTypeModel, RejectsBadParameters) {
  EXPECT_THROW(n::GammaTypeModel(0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(n::GammaTypeModel(1.0, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(n::GammaTypeModel(1.0, 1.0, 0.0), std::invalid_argument);
}

TEST(GammaTypeModel, ResidualFaultsComplement) {
  const auto m = n::GammaTypeModel(2.5, 40.0, 1e-3);
  for (double t : {0.0, 500.0, 5000.0}) {
    EXPECT_NEAR(m.mean_value(t) + m.residual_faults(t), 40.0, 1e-9);
  }
}

TEST(Reliability, MatchesEquationThree) {
  const auto go = n::goel_okumoto(44.0, 1.26e-5);
  const double te = 160000.0, u = 1000.0;
  const double expected = std::exp(-(go.mean_value(te + u) -
                                     go.mean_value(te)));
  EXPECT_NEAR(go.reliability(te, u), expected, 1e-12);
  EXPECT_DOUBLE_EQ(go.reliability(te, 0.0), 1.0);
  EXPECT_THROW(go.reliability(te, -1.0), std::invalid_argument);
}

TEST(Reliability, DecreasingInHorizonWidth) {
  const auto go = n::goel_okumoto(44.0, 1.26e-5);
  double prev = 1.0;
  for (double u : {100.0, 1000.0, 10000.0, 100000.0}) {
    const double r = go.reliability(160000.0, u);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(GammaFailureLaw, CdfPdfConsistency) {
  const n::GammaFailureLaw law{2.0};
  const double beta = 0.5;
  // Numeric derivative of the CDF equals the pdf.
  for (double t : {0.5, 2.0, 6.0}) {
    const double h = 1e-6;
    const double num = (law.cdf(t + h, beta) - law.cdf(t - h, beta)) / (2 * h);
    EXPECT_NEAR(num, law.pdf(t, beta), 1e-6) << "t=" << t;
  }
}

TEST(GammaFailureLaw, SurvivalComplementsAndLogForm) {
  const n::GammaFailureLaw law{1.0};
  EXPECT_NEAR(law.cdf(3.0, 1.0) + law.survival(3.0, 1.0), 1.0, 1e-14);
  EXPECT_NEAR(law.log_survival(3.0, 1.0), -3.0, 1e-12);  // exponential
  EXPECT_DOUBLE_EQ(law.survival(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(law.cdf(-1.0, 1.0), 0.0);
}

TEST(GammaFailureLaw, IntervalMassPartitions) {
  const n::GammaFailureLaw law{3.0};
  const double beta = 0.8;
  const double total = law.interval_mass(0.0, 2.0, beta) +
                       law.interval_mass(2.0, 7.0, beta) +
                       law.interval_mass(7.0, kInf, beta);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_THROW(law.interval_mass(3.0, 3.0, beta), std::invalid_argument);
  EXPECT_THROW(law.interval_mass(-1.0, 3.0, beta), std::invalid_argument);
}

TEST(GammaFailureLaw, LogIntervalMassDeepTail) {
  // Interval far in the exponential tail: direct mass underflows but the
  // log form must survive.  For shape 1: log(e^{-a} - e^{-b}).
  const n::GammaFailureLaw law{1.0};
  const double lm = law.log_interval_mass(800.0, 810.0, 1.0);
  const double expect = -800.0 + std::log1p(-std::exp(-10.0));
  EXPECT_NEAR(lm, expect, 1e-9);
}

TEST(GammaFailureLaw, TruncatedMeanExponentialMemoryless) {
  const n::GammaFailureLaw law{1.0};
  // E[T | T > a] = a + 1/beta for the exponential.
  EXPECT_NEAR(law.truncated_mean(5.0, kInf, 2.0), 5.0 + 0.5, 1e-10);
  EXPECT_NEAR(law.truncated_mean(0.0, kInf, 2.0), 0.5, 1e-12);
}

TEST(GammaFailureLaw, TruncatedMeanInsideInterval) {
  const n::GammaFailureLaw law{2.0};
  const double m = law.truncated_mean(1.0, 3.0, 1.0);
  EXPECT_GT(m, 1.0);
  EXPECT_LT(m, 3.0);
}

TEST(GammaFailureLaw, TruncatedMeanDeepTailStable) {
  // Conditioning region with ~e^{-200} mass: conditional mean must stay
  // finite and just beyond the cut (hazard ~ beta for the exponential).
  const n::GammaFailureLaw law{1.0};
  const double m = law.truncated_mean(200.0, kInf, 1.0);
  EXPECT_NEAR(m, 201.0, 1e-6);
}

TEST(ModelName, DescriptiveStrings) {
  EXPECT_NE(n::goel_okumoto(1.0, 1.0).name().find("Goel-Okumoto"),
            std::string::npos);
  EXPECT_NE(n::delayed_s_shaped(1.0, 1.0).name().find("S-shaped"),
            std::string::npos);
  EXPECT_NE(n::GammaTypeModel(3.5, 1.0, 1.0).name().find("alpha0=3.5"),
            std::string::npos);
}

// Property: for every alpha0, the truncated mean over a partition
// reassembles the unconditional mean alpha0/beta.
class TruncatedMeanSweep : public ::testing::TestWithParam<double> {};

TEST_P(TruncatedMeanSweep, PartitionReassemblesMean) {
  const double alpha0 = GetParam();
  const n::GammaFailureLaw law{alpha0};
  const double beta = 0.7;
  const double cuts[] = {0.0, 1.0, 3.0, 8.0, kInf};
  double mean = 0.0;
  for (int i = 0; i + 1 < 5; ++i) {
    const double mass = law.interval_mass(cuts[i], cuts[i + 1], beta);
    mean += mass * law.truncated_mean(cuts[i], cuts[i + 1], beta);
  }
  EXPECT_NEAR(mean, alpha0 / beta, 1e-9) << "alpha0=" << alpha0;
}

INSTANTIATE_TEST_SUITE_P(Alphas, TruncatedMeanSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 3.7, 10.0));

}  // namespace
