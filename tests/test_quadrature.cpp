// Quadrature: polynomial exactness of Gauss-Legendre, adaptive Simpson
// on smooth and peaked integrands, semi-infinite transforms, and the
// 2-D product grid used by NINT.
#include <gtest/gtest.h>

#include <cmath>

#include "math/quadrature.hpp"
#include "math/specfun.hpp"

namespace m = vbsrm::math;

namespace {

TEST(GaussLegendre, WeightsSumToTwo) {
  for (int n : {1, 2, 3, 5, 8, 16, 24, 64}) {
    const m::GaussLegendre gl(n);
    double s = 0.0;
    for (double w : gl.weights()) s += w;
    EXPECT_NEAR(s, 2.0, 1e-13) << "n=" << n;
  }
}

TEST(GaussLegendre, NodesSymmetricAndSorted) {
  const m::GaussLegendre gl(9);
  const auto& x = gl.nodes();
  for (std::size_t i = 1; i < x.size(); ++i) EXPECT_LT(x[i - 1], x[i]);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], -x[x.size() - 1 - i], 1e-14);
  }
  EXPECT_EQ(x[4], 0.0);  // exact center for odd rules
}

TEST(GaussLegendre, ExactForPolynomialsUpToDegree2nMinus1) {
  const m::GaussLegendre gl(5);  // exact through degree 9
  for (int k = 0; k <= 9; ++k) {
    const double got = gl.integrate([k](double x) { return std::pow(x, k); },
                                    -1.0, 1.0);
    const double want = (k % 2 == 1) ? 0.0 : 2.0 / (k + 1);
    EXPECT_NEAR(got, want, 1e-13) << "k=" << k;
  }
  // Degree 10 must NOT be exact (sanity that the rule order is right).
  const double got10 = gl.integrate([](double x) { return std::pow(x, 10); },
                                    -1.0, 1.0);
  EXPECT_GT(std::abs(got10 - 2.0 / 11.0), 1e-8);
}

TEST(GaussLegendre, MappedInterval) {
  const m::GaussLegendre gl(16);
  const double got = gl.integrate([](double x) { return std::sin(x); }, 0.0,
                                  M_PI);
  EXPECT_NEAR(got, 2.0, 1e-12);
}

TEST(GaussLegendre, CompositeConvergesOnOscillatory) {
  const m::GaussLegendre gl(8);
  const double got = gl.integrate_composite(
      [](double x) { return std::cos(20.0 * x); }, 0.0, 1.0, 32);
  EXPECT_NEAR(got, std::sin(20.0) / 20.0, 1e-10);
}

TEST(GaussLegendre, RejectsBadArgs) {
  EXPECT_THROW(m::GaussLegendre(0), std::invalid_argument);
  const m::GaussLegendre gl(4);
  EXPECT_THROW(gl.integrate_composite([](double) { return 1.0; }, 0, 1, 0),
               std::invalid_argument);
}

TEST(AdaptiveSimpson, SmoothIntegrand) {
  const double got =
      m::adaptive_simpson([](double x) { return std::exp(-x * x); }, -6.0,
                          6.0, 1e-12, 1e-12);
  EXPECT_NEAR(got, std::sqrt(M_PI), 1e-10);
}

TEST(AdaptiveSimpson, SharplyPeakedIntegrand) {
  // Narrow Gaussian at 0.3 with sd 0.01; total mass ~1.
  auto f = [](double x) {
    const double z = (x - 0.3) / 0.01;
    return std::exp(-0.5 * z * z) / (0.01 * std::sqrt(2.0 * M_PI));
  };
  const double got = m::adaptive_simpson(f, 0.0, 1.0, 1e-12, 1e-12);
  EXPECT_NEAR(got, 1.0, 1e-9);
}

TEST(SemiInfinite, ExponentialTails) {
  // int_0^inf e^{-x} dx = 1.
  EXPECT_NEAR(m::integrate_semi_infinite(
                  [](double x) { return std::exp(-x); }, 0.0, 48, 24),
              1.0, 1e-10);
  // int_2^inf x e^{-x} dx = 3 e^{-2}.
  EXPECT_NEAR(m::integrate_semi_infinite(
                  [](double x) { return x * std::exp(-x); }, 2.0, 48, 24),
              3.0 * std::exp(-2.0), 1e-10);
}

TEST(SemiInfinite, GammaDensityNormalizes) {
  const double a = 9.77, rate = 9.77e5;
  auto pdf = [&](double x) {
    return std::exp(a * std::log(rate) + (a - 1.0) * std::log(x) - rate * x -
                    m::log_gamma(a));
  };
  EXPECT_NEAR(m::integrate_semi_infinite(pdf, 0.0, 64, 24, a / rate), 1.0, 1e-8);
}

TEST(ProductGrid, SeparableIntegrand) {
  const auto g = m::make_product_grid(0.0, 1.0, 0.0, 2.0, 8, 8);
  const double got =
      m::integrate_2d(g, [](double x, double y) { return x * y; });
  EXPECT_NEAR(got, 0.5 * 2.0, 1e-12);
}

TEST(ProductGrid, BivariateGaussianMass) {
  // N((0.5, 0.5), 0.1^2 I) over the unit square: mass is the product of
  // the two one-axis masses P(-5 < Z < 5)^2 (the 5-sigma tails are cut).
  const auto g = m::make_product_grid(0.0, 1.0, 0.0, 1.0, 32, 10);
  auto f = [](double x, double y) {
    const double zx = (x - 0.5) / 0.1, zy = (y - 0.5) / 0.1;
    return std::exp(-0.5 * (zx * zx + zy * zy)) / (2.0 * M_PI * 0.01);
  };
  const double one_axis = 1.0 - std::erfc(5.0 / std::sqrt(2.0));
  EXPECT_NEAR(m::integrate_2d(g, f), one_axis * one_axis, 1e-9);
}

TEST(ProductGrid, NodesAscendWithPositiveWeights) {
  const auto g = m::make_product_grid(1.0, 3.0, 10.0, 20.0, 4, 6);
  ASSERT_EQ(g.x.size(), 24u);
  ASSERT_EQ(g.y.size(), 24u);
  for (std::size_t i = 1; i < g.x.size(); ++i) EXPECT_GT(g.x[i], g.x[i - 1]);
  for (double w : g.wx) EXPECT_GT(w, 0.0);
  for (double w : g.wy) EXPECT_GT(w, 0.0);
}

// Parameterized: composite GL converges at high order on gamma-like
// integrands for a range of shapes (the NINT workhorse case).
class GammaMassSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaMassSweep, CompositeGLIntegratesToOne) {
  const double a = GetParam();
  const m::GaussLegendre gl(12);
  // Integrate the Gamma(a, 1) density over ~[0, a + 40 sqrt(a) + 40].
  auto pdf = [&](double x) {
    return std::exp((a - 1.0) * std::log(x) - x - m::log_gamma(a));
  };
  const double hi = a + 40.0 * std::sqrt(a) + 40.0;
  EXPECT_NEAR(gl.integrate_composite(pdf, 1e-12, hi, 64), 1.0, 1e-9)
      << "a=" << a;
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaMassSweep,
                         ::testing::Values(1.0, 2.0, 10.0, 48.0, 200.0));

}  // namespace
