// Small dense linear algebra.
#include <gtest/gtest.h>

#include <cmath>

#include "math/linalg.hpp"

namespace m = vbsrm::math;

namespace {

TEST(Matrix, IdentityAndIndexing) {
  auto i3 = m::Matrix::identity(3);
  EXPECT_EQ(i3.rows(), 3u);
  EXPECT_EQ(i3(0, 0), 1.0);
  EXPECT_EQ(i3(0, 1), 0.0);
}

TEST(Matrix, MultiplyKnownProduct) {
  auto a = m::Matrix::from_rows({{1, 2}, {3, 4}});
  auto b = m::Matrix::from_rows({{5, 6}, {7, 8}});
  auto c = a * b;
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matrix, TransposeAndShapeMismatch) {
  auto a = m::Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  auto t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_THROW(a + t, std::invalid_argument);
  EXPECT_THROW(a * a, std::invalid_argument);
}

TEST(Cholesky, ReconstructsSPDMatrix) {
  auto a = m::Matrix::from_rows({{4, 2, 0.5}, {2, 5, 1}, {0.5, 1, 3}});
  auto l = m::cholesky(a);
  auto llt = l * l.transpose();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(llt(i, j), a(i, j), 1e-12);
    }
  }
  // Lower triangular.
  EXPECT_EQ(l(0, 1), 0.0);
  EXPECT_EQ(l(0, 2), 0.0);
}

TEST(Cholesky, RejectsNonSPD) {
  auto a = m::Matrix::from_rows({{1, 2}, {2, 1}});  // indefinite
  EXPECT_THROW(m::cholesky(a), std::domain_error);
}

TEST(Solve, MatchesKnownSolution) {
  auto a = m::Matrix::from_rows({{2, 1}, {1, 3}});
  const auto x = m::solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, PivotingHandlesZeroDiagonal) {
  auto a = m::Matrix::from_rows({{0, 1}, {1, 0}});
  const auto x = m::solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(Solve, ThrowsOnSingular) {
  auto a = m::Matrix::from_rows({{1, 2}, {2, 4}});
  EXPECT_THROW(m::solve(a, {1.0, 2.0}), std::domain_error);
}

TEST(Inverse, TimesOriginalIsIdentity) {
  auto a = m::Matrix::from_rows({{3, 1, 2}, {1, 4, 1}, {2, 1, 5}});
  auto inv = m::inverse(a);
  auto prod = a * inv;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Determinant, KnownValuesAndSingular) {
  auto a = m::Matrix::from_rows({{2, 0}, {0, 3}});
  EXPECT_NEAR(m::determinant(a), 6.0, 1e-13);
  auto b = m::Matrix::from_rows({{1, 2}, {2, 4}});
  EXPECT_EQ(m::determinant(b), 0.0);
  // Permutation sign.
  auto p = m::Matrix::from_rows({{0, 1}, {1, 0}});
  EXPECT_NEAR(m::determinant(p), -1.0, 1e-14);
}

TEST(Sym2x2Eigen, MatchesCharacteristicRoots) {
  auto a = m::Matrix::from_rows({{2, 1}, {1, 2}});
  const auto [lo, hi] = m::sym2x2_eigenvalues(a);
  EXPECT_NEAR(lo, 1.0, 1e-12);
  EXPECT_NEAR(hi, 3.0, 1e-12);
}

TEST(Sym2x2Eigen, PositiveDefiniteCovarianceCheck) {
  // A Laplace covariance-like matrix with strong negative correlation.
  auto a = m::Matrix::from_rows({{56.2, -8.3e-6}, {-8.3e-6, 6.3e-12}});
  const auto [lo, hi] = m::sym2x2_eigenvalues(a);
  EXPECT_GT(lo, 0.0);
  EXPECT_GT(hi, lo);
}

}  // namespace
