// Special-function accuracy: values checked against high-precision
// references (Mathematica/Wolfram values quoted to >= 12 digits) and
// against internal identities.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "math/specfun.hpp"

namespace m = vbsrm::math;

namespace {

constexpr double kTight = 1e-12;

TEST(LogGamma, MatchesKnownValues) {
  EXPECT_NEAR(m::log_gamma(1.0), 0.0, kTight);
  EXPECT_NEAR(m::log_gamma(2.0), 0.0, kTight);
  EXPECT_NEAR(m::log_gamma(0.5), 0.5723649429247001, 1e-13);
  EXPECT_NEAR(m::log_gamma(5.0), 3.1780538303479458, 1e-13);
  EXPECT_NEAR(m::log_gamma(10.5), 13.940625219403763, 1e-12);
  EXPECT_NEAR(m::log_gamma(171.0), 706.5730622457874, 1e-9);
}

TEST(LogGamma, AgreesWithStdLgamma) {
  for (double z : {0.1, 0.3, 0.7, 1.5, 3.25, 12.0, 100.0, 1234.5}) {
    EXPECT_NEAR(m::log_gamma(z), std::lgamma(z),
                1e-12 * std::max(1.0, std::abs(std::lgamma(z))))
        << "z=" << z;
  }
}

TEST(LogGamma, RecurrenceIdentity) {
  // log Gamma(z+1) = log Gamma(z) + log z.
  for (double z = 0.2; z < 50.0; z *= 1.7) {
    EXPECT_NEAR(m::log_gamma(z + 1.0), m::log_gamma(z) + std::log(z),
                1e-11 * std::max(1.0, std::abs(m::log_gamma(z))))
        << "z=" << z;
  }
}

TEST(LogGamma, InvalidInputs) {
  EXPECT_TRUE(std::isnan(m::log_gamma(0.0)));
  EXPECT_TRUE(std::isnan(m::log_gamma(-1.5)));
}

TEST(Digamma, MatchesKnownValues) {
  // psi(1) = -gamma_E
  EXPECT_NEAR(m::digamma(1.0), -0.5772156649015329, 1e-13);
  EXPECT_NEAR(m::digamma(0.5), -1.9635100260214235, 1e-12);
  EXPECT_NEAR(m::digamma(2.0), 0.4227843350984671, 1e-13);
  EXPECT_NEAR(m::digamma(10.0), 2.2517525890667211, 1e-12);
  EXPECT_NEAR(m::digamma(100.0), 4.600161852738087, 1e-12);
}

TEST(Digamma, RecurrenceIdentity) {
  // psi(x+1) = psi(x) + 1/x.
  for (double x = 0.05; x < 200.0; x *= 2.3) {
    EXPECT_NEAR(m::digamma(x + 1.0), m::digamma(x) + 1.0 / x, 1e-11)
        << "x=" << x;
  }
}

TEST(Digamma, IsDerivativeOfLogGamma) {
  for (double x : {0.7, 1.5, 4.0, 25.0}) {
    const double h = 1e-6 * x;
    const double numeric =
        (m::log_gamma(x + h) - m::log_gamma(x - h)) / (2.0 * h);
    EXPECT_NEAR(m::digamma(x), numeric, 1e-7) << "x=" << x;
  }
}

TEST(Trigamma, MatchesKnownValues) {
  // psi'(1) = pi^2/6.
  EXPECT_NEAR(m::trigamma(1.0), M_PI * M_PI / 6.0, 1e-12);
  // psi'(0.5) = pi^2/2.
  EXPECT_NEAR(m::trigamma(0.5), M_PI * M_PI / 2.0, 1e-11);
  EXPECT_NEAR(m::trigamma(10.0), 0.10516633568168575, 1e-13);
}

TEST(Trigamma, RecurrenceIdentity) {
  for (double x = 0.1; x < 100.0; x *= 2.1) {
    EXPECT_NEAR(m::trigamma(x + 1.0), m::trigamma(x) - 1.0 / (x * x), 1e-11)
        << "x=" << x;
  }
}

TEST(GammaP, MatchesKnownValues) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(m::gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-14);
  }
  // P(0.5, x) = erf(sqrt(x)).
  for (double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(m::gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-13);
  }
  // Wolfram: GammaRegularized[3, 0, 2.5] = 0.45618688...
  EXPECT_NEAR(m::gamma_p(3.0, 2.5), 0.4561868841166060, 1e-12);
  EXPECT_NEAR(m::gamma_p(10.0, 10.0), 0.5420702855281478, 1e-12);
}

TEST(GammaQ, ComplementsGammaP) {
  for (double a : {0.3, 1.0, 2.0, 7.5, 40.0}) {
    for (double x : {0.01, 0.5, 1.0, 5.0, 25.0, 90.0}) {
      EXPECT_NEAR(m::gamma_p(a, x) + m::gamma_q(a, x), 1.0, 1e-13)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaQ, DeepTailLogAccuracy) {
  // Q(1, x) = e^{-x}: log form must stay exact far beyond underflow.
  EXPECT_NEAR(m::log_gamma_q(1.0, 800.0), -800.0, 1e-9);
  EXPECT_NEAR(m::log_gamma_q(1.0, 5000.0), -5000.0, 1e-8);
  // Q(2, x) = (1+x) e^{-x}.
  const double x = 300.0;
  EXPECT_NEAR(m::log_gamma_q(2.0, x), -x + std::log1p(x), 1e-9);
}

TEST(GammaP, BoundaryBehaviour) {
  EXPECT_EQ(m::gamma_p(2.0, 0.0), 0.0);
  EXPECT_EQ(m::gamma_q(2.0, 0.0), 1.0);
  EXPECT_TRUE(std::isnan(m::gamma_p(-1.0, 1.0)));
  EXPECT_TRUE(std::isnan(m::gamma_p(2.0, -0.5)));
}

TEST(GammaP, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x < 30.0; x += 0.37) {
    const double p = m::gamma_p(4.2, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(InvGammaP, RoundTripsAcrossShapes) {
  for (double a : {0.4, 1.0, 2.0, 9.77, 48.0, 500.0}) {
    for (double p : {1e-8, 0.005, 0.1, 0.5, 0.9, 0.995, 1.0 - 1e-8}) {
      const double x = m::inv_gamma_p(a, p);
      EXPECT_NEAR(m::gamma_p(a, x), p, 1e-10)
          << "a=" << a << " p=" << p << " x=" << x;
    }
  }
}

TEST(InvGammaP, Boundaries) {
  EXPECT_EQ(m::inv_gamma_p(3.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(m::inv_gamma_p(3.0, 1.0)));
  EXPECT_TRUE(std::isnan(m::inv_gamma_p(3.0, -0.1)));
}

TEST(NormalCdf, SymmetryAndKnownValues) {
  EXPECT_NEAR(m::normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(m::normal_cdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(m::normal_cdf(-1.0) + m::normal_cdf(1.0), 1.0, 1e-14);
}

TEST(NormalQuantile, RoundTrips) {
  for (double p : {1e-10, 1e-5, 0.005, 0.025, 0.5, 0.975, 0.995, 1 - 1e-6}) {
    EXPECT_NEAR(m::normal_cdf(m::normal_quantile(p)), p,
                1e-12 * std::max(p, 1e-3))
        << "p=" << p;
  }
  EXPECT_NEAR(m::normal_quantile(0.975), 1.959963984540054, 1e-9);
}

TEST(LogSumExp, HandlesExtremeRanges) {
  const std::vector<double> v{-1000.0, -1000.0};
  EXPECT_NEAR(m::log_sum_exp(v), -1000.0 + std::log(2.0), 1e-12);
  const std::vector<double> w{0.0, -800.0};
  EXPECT_NEAR(m::log_sum_exp(w), 0.0, 1e-12);
  EXPECT_TRUE(std::isinf(m::log_sum_exp(std::vector<double>{})));
}

TEST(NormalizeLogWeights, SumsToOne) {
  std::vector<double> v{-700.0, -701.0, -705.0, -800.0};
  m::normalize_log_weights(v);
  double s = 0.0;
  for (double x : v) s += x;
  EXPECT_NEAR(s, 1.0, 1e-12);
  EXPECT_GT(v[0], v[1]);
  EXPECT_GT(v[1], v[2]);
}

TEST(Log1mExp, StableAtBothEnds) {
  // log(1 - e^{-1e-12}) ~ log(1e-12).
  EXPECT_NEAR(m::log1m_exp(-1e-12), std::log(1e-12), 1e-3);
  // log(1 - e^{-50}) ~ -e^{-50}.
  EXPECT_NEAR(m::log1m_exp(-50.0), -std::exp(-50.0), 1e-25);
  EXPECT_TRUE(std::isinf(m::log1m_exp(0.0)));
}

TEST(LogAddExp, MatchesDirectWhenSafe) {
  EXPECT_NEAR(m::log_add_exp(1.0, 2.0),
              std::log(std::exp(1.0) + std::exp(2.0)), 1e-13);
  EXPECT_NEAR(m::log_add_exp(-1e6, 0.0), 0.0, 1e-13);
}

// Property sweep: P(a, .) is a valid CDF in x for many shapes.
class GammaPShapeSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaPShapeSweep, ValidCdf) {
  const double a = GetParam();
  double prev = 0.0;
  for (double x = 0.0; x <= 8.0 * a + 20.0; x += 0.25 * (a + 1.0)) {
    const double p = m::gamma_p(a, x);
    EXPECT_GE(p, prev - 1e-14);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_GT(m::gamma_p(a, 40.0 * (a + 2.0)), 0.999);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaPShapeSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 5.0, 9.77,
                                           38.0, 150.0, 1000.0));

// Property sweep: inverse round trip across (shape, p) grid.
class InvGammaSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(InvGammaSweep, RoundTrip) {
  const auto [a, p] = GetParam();
  const double x = m::inv_gamma_p(a, p);
  EXPECT_NEAR(m::gamma_p(a, x), p, 5e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InvGammaSweep,
    ::testing::Combine(::testing::Values(0.5, 1.0, 3.3, 11.0, 77.0),
                       ::testing::Values(0.001, 0.005, 0.025, 0.5, 0.975,
                                         0.995, 0.999)));

TEST(GammaPQ, PairMatchesSeparateEvaluations) {
  // The pair kernel shares one series/CF evaluation between P and Q; on
  // its native side of the x = a+1 split it reproduces gamma_p/gamma_q
  // exactly, and the complement is accurate to absolute ~1e-16 (full
  // relative accuracy wherever the complement is O(1)).
  for (double a : {0.5, 1.0, 2.0, 3.3, 11.0, 77.0, 500.0}) {
    for (double ratio : {0.05, 0.5, 0.9, 1.0, 1.1, 2.0, 5.0}) {
      const double x = a * ratio;
      const auto pq = m::gamma_pq(a, x);
      // The scalar calls go through log space, whose own relative error
      // grows with the exponent magnitude |a log x - x - lgamma(a)|
      // (~eps * magnitude, e.g. ~6e-13 at a = 500); the bound below is
      // that scalar-path error, not the pair kernel's.
      EXPECT_NEAR(pq.p, m::gamma_p(a, x), 1e-12) << "a=" << a << " x=" << x;
      EXPECT_NEAR(pq.q, m::gamma_q(a, x), 1e-12) << "a=" << a << " x=" << x;
      // The pair is a complement by construction (one rounding).
      EXPECT_DOUBLE_EQ(pq.p + pq.q, 1.0);
      // The natively computed member keeps full relative accuracy.
      if (x < a + 1.0) {
        EXPECT_NEAR(pq.p, m::gamma_p(a, x), 1e-11 * std::max(pq.p, 1e-300));
      } else {
        EXPECT_NEAR(pq.q, m::gamma_q(a, x), 1e-11 * std::max(pq.q, 1e-300));
      }
    }
  }
}

TEST(GammaPQ, CachedFormMatchesPlainForm) {
  for (double a : {1.0, 2.7, 40.0}) {
    for (double x : {0.3, 5.0, 42.0, 300.0}) {
      const auto plain = m::gamma_pq(a, x);
      const auto cached =
          m::gamma_pq_cached(a, x, std::log(x), m::log_gamma(a));
      EXPECT_EQ(plain.p, cached.p);
      EXPECT_EQ(plain.q, cached.q);
    }
  }
}

TEST(GammaPQ, EdgeCases) {
  const auto zero = m::gamma_pq(2.0, 0.0);
  EXPECT_EQ(zero.p, 0.0);
  EXPECT_EQ(zero.q, 1.0);
  const auto bad = m::gamma_pq(-1.0, 2.0);
  EXPECT_TRUE(std::isnan(bad.p));
  EXPECT_TRUE(std::isnan(bad.q));
  // Deep right tail: P saturates at 1, Q underflows linearly but stays
  // nonnegative.
  const auto tail = m::gamma_pq(1.0, 700.0);
  EXPECT_EQ(tail.p, 1.0);
  EXPECT_GE(tail.q, 0.0);
}

}  // namespace
