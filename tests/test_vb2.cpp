// VB2 — the paper's contribution.  Validation strategy:
//   * the GO/failure-time closed form for xi matches the generic
//     fixed-point solver (paper Sec. 5.2's "explicitly solvable" case);
//   * the fixed point is the stationary point of the per-N variational
//     objective (so the iteration really maximizes F[Pv]);
//   * the adaptive n_max loop satisfies the paper's Step-4 criterion;
//   * the resulting posterior matches conjugate oracles in degenerate
//     regimes and carries the omega-beta correlation VB1 cannot.
#include <gtest/gtest.h>

#include <cmath>

#include "core/vb2.hpp"
#include "data/datasets.hpp"
#include "data/simulate.hpp"
#include "random/rng.hpp"

namespace c = vbsrm::core;
namespace b = vbsrm::bayes;
namespace d = vbsrm::data;

namespace {

b::PriorPair info_priors_dt() {
  return {b::GammaPrior::from_mean_sd(50.0, 15.8),
          b::GammaPrior::from_mean_sd(1e-5, 3.2e-6)};
}

b::PriorPair info_priors_dg() {
  return {b::GammaPrior::from_mean_sd(50.0, 15.8),
          b::GammaPrior::from_mean_sd(3.3e-2, 1.1e-2)};
}

TEST(Vb2, ClosedFormMatchesFixedPointSolver) {
  const auto dt = d::datasets::system17_failure_times();
  c::Vb2Options closed, iterative;
  iterative.use_closed_form = false;
  const c::Vb2Estimator a(1.0, dt, info_priors_dt(), closed);
  const c::Vb2Estimator b2(1.0, dt, info_priors_dt(), iterative);
  const auto sa = a.posterior().summary();
  const auto sb = b2.posterior().summary();
  EXPECT_NEAR(sa.mean_omega, sb.mean_omega, 1e-8 * sa.mean_omega);
  EXPECT_NEAR(sa.var_omega, sb.var_omega, 1e-6 * sa.var_omega);
  EXPECT_NEAR(sa.mean_beta, sb.mean_beta, 1e-8 * sa.mean_beta);
}

TEST(Vb2, ClosedFormXiFormula) {
  // xi_N = (m_b + m) / (phi_b + sum t_i + (N - m) t_e)   [GO, D_T].
  const auto dt = d::datasets::system17_failure_times();
  const auto priors = info_priors_dt();
  const c::Vb2Estimator vb(1.0, dt, priors);
  for (std::uint64_t n : {38ull, 45ull, 80ull}) {
    const auto [zeta, xi] = vb.solve_component(n);
    const double expect =
        (priors.beta.shape + 38.0) /
        (priors.beta.rate + dt.total_time() +
         (static_cast<double>(n) - 38.0) * dt.observation_end());
    EXPECT_NEAR(xi, expect, 1e-12 * expect) << "n=" << n;
    // And zeta is consistent: xi == (m_b + N alpha0)/(phi_b + zeta).
    EXPECT_NEAR(xi, (priors.beta.shape + static_cast<double>(n)) /
                        (priors.beta.rate + zeta),
                1e-10 * xi);
  }
}

TEST(Vb2, FixedPointIsStationaryPointOfObjective) {
  // dF_N/dxi = 0 at the solved fixed point (failure-time and grouped).
  const auto dt = d::datasets::system17_failure_times();
  const c::Vb2Estimator vb(1.0, dt, info_priors_dt());
  for (std::uint64_t n : {40ull, 60ull}) {
    const auto [zeta, xi] = vb.solve_component(n);
    (void)zeta;
    const double h = 1e-5 * xi;
    const double up = vb.component_objective(n, xi + h);
    const double dn = vb.component_objective(n, xi - h);
    const double at = vb.component_objective(n, xi);
    EXPECT_GT(at, up - 1e-9) << "n=" << n;
    EXPECT_GT(at, dn - 1e-9) << "n=" << n;
    // Central difference ~ 0 relative to the curvature scale.
    EXPECT_NEAR((up - dn) / (2.0 * h) * xi, 0.0, 1e-4) << "n=" << n;
  }
}

TEST(Vb2, FixedPointStationaryForGroupedData) {
  const auto dg = d::datasets::system17_grouped();
  const c::Vb2Estimator vb(1.0, dg, info_priors_dg());
  const std::uint64_t n = 50;
  const auto [zeta, xi] = vb.solve_component(n);
  (void)zeta;
  const double h = 1e-5 * xi;
  const double slope = (vb.component_objective(n, xi + h) -
                        vb.component_objective(n, xi - h)) /
                       (2.0 * h);
  EXPECT_NEAR(slope * xi, 0.0, 1e-4);
}

TEST(Vb2, AdaptiveNmaxSatisfiesStepFourCriterion) {
  const auto dt = d::datasets::system17_failure_times();
  c::Vb2Options opt;
  opt.n_max = 50;  // deliberately too small: must double up
  opt.epsilon = 5e-15;
  const c::Vb2Estimator vb(1.0, dt, info_priors_dt(), opt);
  EXPECT_LT(vb.diagnostics().prob_at_n_max, 5e-15);
  EXPECT_GT(vb.diagnostics().n_max_used, 50u);
  EXPECT_GE(vb.diagnostics().n_max_doublings, 1u);
}

TEST(Vb2, FixedNmaxReportsTailMass) {
  const auto dt = d::datasets::system17_failure_times();
  c::Vb2Options opt;
  opt.n_max = 100;
  opt.adapt_n_max = false;
  const c::Vb2Estimator vb(1.0, dt, info_priors_dt(), opt);
  EXPECT_EQ(vb.diagnostics().n_max_used, 100u);
  EXPECT_GT(vb.diagnostics().prob_at_n_max, 0.0);
}

TEST(Vb2, PosteriorOfNConcentratesAboveObservedCount) {
  const auto dt = d::datasets::system17_failure_times();
  const c::Vb2Estimator vb(1.0, dt, info_priors_dt());
  const double mean_n = vb.posterior().mean_total_faults();
  EXPECT_GT(mean_n, 38.0);
  EXPECT_LT(mean_n, 80.0);
  // No mass below the observed count.
  EXPECT_DOUBLE_EQ(vb.posterior().prob_total_faults(37), 0.0);
}

TEST(Vb2, CapturesNegativeOmegaBetaCorrelation) {
  const auto dt = d::datasets::system17_failure_times();
  const c::Vb2Estimator vb(1.0, dt, info_priors_dt());
  EXPECT_LT(vb.posterior().summary().cov, 0.0);
}

TEST(Vb2, ConjugateOracleWithoutCensoring) {
  // All failure mass observed (horizon >> scale): N == m almost surely,
  // so the mixture collapses and omega | data ~ Gamma(m_w + m, phi_w+1),
  // beta | data ~ Gamma(m_b + m alpha0, phi_b + sum t) exactly.
  d::FailureTimeData ft({0.5, 1.2, 1.9, 2.6, 3.1, 4.0, 5.2, 6.0}, 400.0);
  const b::PriorPair priors{b::GammaPrior{2.0, 0.1}, b::GammaPrior{3.0, 2.0}};
  const c::Vb2Estimator vb(1.0, ft, priors);
  const auto s = vb.posterior().summary();
  EXPECT_NEAR(s.mean_omega, 10.0 / 1.1, 1e-4);
  EXPECT_NEAR(s.var_omega, 10.0 / 1.21, 1e-3);
  EXPECT_NEAR(s.mean_beta, 11.0 / (2.0 + ft.total_time()), 1e-8);
  EXPECT_NEAR(s.cov, 0.0, 1e-8);
  EXPECT_NEAR(vb.posterior().mean_total_faults(), 8.0, 1e-4);
}

TEST(Vb2, NewtonSolverMatchesSuccessiveSubstitution) {
  const auto dg = d::datasets::system17_grouped();
  c::Vb2Options ss, nw;
  nw.use_newton = true;
  const c::Vb2Estimator a(1.0, dg, info_priors_dg(), ss);
  const c::Vb2Estimator b2(1.0, dg, info_priors_dg(), nw);
  EXPECT_NEAR(a.posterior().summary().mean_omega,
              b2.posterior().summary().mean_omega, 1e-6 * 50);
  EXPECT_NEAR(a.posterior().summary().mean_beta,
              b2.posterior().summary().mean_beta, 1e-8);
}

TEST(Vb2, GroupedAndTimeDataAgreeOnFineBins) {
  const auto dt = d::datasets::system17_failure_times();
  std::vector<double> bounds;
  for (int i = 1; i <= 320; ++i) bounds.push_back(500.0 * i);
  const auto dg = dt.to_grouped(bounds);
  const c::Vb2Estimator vt(1.0, dt, info_priors_dt());
  const c::Vb2Estimator vg(1.0, dg, info_priors_dt());
  const auto st = vt.posterior().summary();
  const auto sg = vg.posterior().summary();
  EXPECT_NEAR(sg.mean_omega, st.mean_omega, 0.02 * st.mean_omega);
  EXPECT_NEAR(sg.mean_beta, st.mean_beta, 0.02 * st.mean_beta);
  EXPECT_NEAR(sg.var_omega, st.var_omega, 0.06 * st.var_omega);
}

TEST(Vb2, DelayedSShapedRecoversSimulationTruth) {
  vbsrm::random::Rng rng(19);
  const auto ft = d::simulate_gamma_nhpp(rng, 120.0, 2.0, 2.5e-3, 2000.0);
  const c::Vb2Estimator vb(2.0, ft, b::PriorPair::flat());
  const auto s = vb.posterior().summary();
  EXPECT_NEAR(s.mean_omega, 120.0, 35.0);
  EXPECT_NEAR(s.mean_beta, 2.5e-3, 8e-4);
}

TEST(Vb2, FlatPriorsWork) {
  const auto dt = d::datasets::system17_failure_times();
  const c::Vb2Estimator vb(1.0, dt, b::PriorPair::flat());
  const auto s = vb.posterior().summary();
  EXPECT_GT(s.mean_omega, 38.0);
  EXPECT_LT(s.mean_omega, 70.0);
  EXPECT_GT(s.var_omega, 0.0);
}

TEST(Vb2, RejectsBadAlpha) {
  const auto dt = d::datasets::system17_failure_times();
  EXPECT_THROW(c::Vb2Estimator(0.0, dt, b::PriorPair::flat()),
               std::invalid_argument);
}

// Property sweep: for a grid of prior strengths the posterior mean of
// omega must move monotonically from the data-driven value towards the
// prior mean as the prior tightens.
class Vb2PriorPullSweep : public ::testing::TestWithParam<double> {};

TEST_P(Vb2PriorPullSweep, PriorTighteningPullsTowardPriorMean) {
  const double sd_scale = GetParam();
  const auto dt = d::datasets::system17_failure_times();
  const double prior_mean = 80.0;  // far above the ~44 the data implies
  const b::PriorPair loose{
      b::GammaPrior::from_mean_sd(prior_mean, prior_mean * sd_scale),
      b::GammaPrior::from_mean_sd(1e-5, 3.2e-6)};
  const b::PriorPair tight{
      b::GammaPrior::from_mean_sd(prior_mean, prior_mean * sd_scale * 0.25),
      b::GammaPrior::from_mean_sd(1e-5, 3.2e-6)};
  const c::Vb2Estimator vl(1.0, dt, loose);
  const c::Vb2Estimator vt(1.0, dt, tight);
  EXPECT_GT(vt.posterior().summary().mean_omega,
            vl.posterior().summary().mean_omega);
}

INSTANTIATE_TEST_SUITE_P(SdScales, Vb2PriorPullSweep,
                         ::testing::Values(0.5, 1.0, 2.0));

}  // namespace
