// Laplace approximation: MAP location, Gaussian-exactness oracle, and
// the paper's documented defects (symmetry, out-of-range reliability
// bounds).
#include <gtest/gtest.h>

#include <cmath>

#include "bayes/laplace.hpp"
#include "bayes/nint.hpp"
#include "data/datasets.hpp"
#include "math/optimize.hpp"

namespace b = vbsrm::bayes;
namespace d = vbsrm::data;

namespace {

b::PriorPair info_priors_dt() {
  return {b::GammaPrior::from_mean_sd(50.0, 15.8),
          b::GammaPrior::from_mean_sd(1e-5, 3.2e-6)};
}

TEST(Laplace, MapIsStationaryPoint) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_priors_dt());
  b::LaplaceEstimator lap(post);
  const double o = lap.map_omega(), be = lap.map_beta();
  // Gradient of the log posterior vanishes at the MAP.
  auto f = [&](const std::vector<double>& p) { return post(p[0], p[1]); };
  const auto g = vbsrm::math::numeric_gradient(f, {o, be});
  // Scale gradients by the parameter magnitudes (beta ~ 1e-5).
  EXPECT_NEAR(g[0] * o, 0.0, 1e-3);
  EXPECT_NEAR(g[1] * be, 0.0, 1e-3);
}

TEST(Laplace, MapBelowPosteriorMeanForRightSkewedTarget) {
  // The paper's explanation of LAPL's bias: mode < mean when the
  // posterior is right-skewed.
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_priors_dt());
  b::LaplaceEstimator lap(post);
  b::NintEstimator nint(post, {15.0, 110.0, 2e-6, 3e-5});
  EXPECT_LT(lap.summary().mean_omega, nint.summary().mean_omega);
}

TEST(Laplace, CovarianceCapturesNegativeCorrelation) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_priors_dt());
  b::LaplaceEstimator lap(post);
  const auto s = lap.summary();
  EXPECT_GT(s.var_omega, 0.0);
  EXPECT_GT(s.var_beta, 0.0);
  EXPECT_LT(s.cov, 0.0);  // unlike VB1, LAPL does model the correlation
}

TEST(Laplace, IntervalsAreSymmetricAroundMap) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_priors_dt());
  b::LaplaceEstimator lap(post);
  const auto io = lap.interval_omega(0.99);
  EXPECT_NEAR(0.5 * (io.lower + io.upper), lap.map_omega(), 1e-9);
  const auto ib = lap.interval_beta(0.95);
  EXPECT_NEAR(0.5 * (ib.lower + ib.upper), lap.map_beta(), 1e-12);
  EXPECT_LT(io.lower, io.upper);
}

TEST(Laplace, WiderLevelGivesWiderInterval) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_priors_dt());
  b::LaplaceEstimator lap(post);
  const auto i95 = lap.interval_omega(0.95);
  const auto i99 = lap.interval_omega(0.99);
  EXPECT_LT(i99.lower, i95.lower);
  EXPECT_GT(i99.upper, i95.upper);
}

TEST(Laplace, ExactOnGaussianTarget) {
  // Build a synthetic "posterior" that *is* Gaussian by using a huge
  // conjugate-prior-dominated case: prior shape so large the likelihood
  // barely matters and the gamma prior is locally Gaussian.
  const auto dt = d::datasets::system17_failure_times();
  const b::PriorPair tight{b::GammaPrior::from_mean_sd(50.0, 0.05),
                           b::GammaPrior::from_mean_sd(1e-5, 1e-8)};
  b::LogPosterior post(1.0, dt, tight);
  b::LaplaceEstimator lap(post);
  // MAP must sit essentially at the prior mode; for Gamma(k, r) the mode
  // is (k-1)/r, which for sd << mean is ~ mean.
  EXPECT_NEAR(lap.map_omega(), 50.0, 0.2);
  EXPECT_NEAR(lap.map_beta(), 1e-5, 5e-8);
  EXPECT_NEAR(std::sqrt(lap.covariance()(0, 0)), 0.05, 0.01);
}

TEST(Laplace, ReliabilityPointIsPlugIn) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_priors_dt());
  b::LaplaceEstimator lap(post);
  const double u = 1000.0;
  const vbsrm::nhpp::GammaFailureLaw law{1.0};
  const double h =
      law.interval_mass(160000.0, 161000.0, lap.map_beta());
  const auto r = lap.reliability(u, 0.99);
  EXPECT_NEAR(r.point, std::exp(-lap.map_omega() * h), 1e-12);
  EXPECT_LT(r.lower, r.point);
  EXPECT_GT(r.upper, r.point);
}

TEST(Laplace, ReliabilityUpperBoundCanExceedOne) {
  // The paper's Table 4 shows LAPL reliability upper bounds > 1 when
  // the point estimate sits near 1 and the parameter uncertainty is
  // large relative to 1 - R.  A small sample with flat priors gives the
  // needed relative uncertainty (sd(omega)/omega ~ 1/sqrt(m)).
  d::FailureTimeData small({50.0, 130.0, 260.0, 420.0, 700.0, 1100.0,
                            1700.0, 2600.0},
                           3000.0);
  b::LogPosterior post(1.0, small, b::PriorPair::flat());
  b::LaplaceEstimator lap(post);
  const auto r = lap.reliability(5.0, 0.99);  // R very close to 1
  EXPECT_GT(r.point, 0.95);
  EXPECT_TRUE(b::LaplaceEstimator::reliability_estimate_out_of_range(r));
  EXPECT_GT(r.upper, 1.0);
}

TEST(Laplace, GroupedDataWorks) {
  const auto dg = d::datasets::system17_grouped();
  const b::PriorPair info{b::GammaPrior::from_mean_sd(50.0, 15.8),
                          b::GammaPrior::from_mean_sd(3.3e-2, 1.1e-2)};
  b::LogPosterior post(1.0, dg, info);
  b::LaplaceEstimator lap(post);
  EXPECT_GT(lap.map_omega(), 30.0);
  EXPECT_LT(lap.map_omega(), 70.0);
  EXPECT_GT(lap.map_beta(), 1e-2);
  EXPECT_LT(lap.map_beta(), 5e-2);
}

}  // namespace
