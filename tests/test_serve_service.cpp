// serve::Service driven in-process: routing, the estimate/batch
// pipelines, cache-hit byte-identity, backpressure (queue-full 503),
// deadline expiry (504), and concurrent-client determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bayes/prior.hpp"
#include "data/failure_data.hpp"
#include "engine/registry.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"

using namespace vbsrm;
namespace json = serve::json;

namespace {

std::uint64_t bits_of(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// --- a registerable test method with a controllable fit duration ----------

std::atomic<int> g_slow_ms{0};

class FakeEstimator : public engine::Estimator {
 public:
  std::string_view method() const override { return "slowtest"; }
  bayes::PosteriorSummary summarize() const override {
    bayes::PosteriorSummary s;
    s.mean_omega = 30.0;
    s.mean_beta = 0.02;
    s.var_omega = 4.0;
    s.var_beta = 1e-4;
    s.cov = 0.01;
    return s;
  }
  bayes::CredibleInterval interval_omega(double level) const override {
    return {20.0, 40.0, level};
  }
  bayes::CredibleInterval interval_beta(double level) const override {
    return {0.01, 0.03, level};
  }
  bayes::ReliabilityEstimate reliability(double, double level) const override {
    return {0.9, 0.8, 0.95, level};
  }
};

void ensure_slowtest_registered() {
  static const bool once = [] {
    engine::register_method("slowtest", [](const engine::EstimatorRequest&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(g_slow_ms.load()));
      return std::make_unique<FakeEstimator>();
    });
    return true;
  }();
  (void)once;
}

// --- request helpers -------------------------------------------------------

serve::Request get(const std::string& target) {
  return serve::Request{"GET", target, "", 0.0};
}

serve::Request post(const std::string& target, const std::string& body,
                    double deadline_ms = 0.0) {
  return serve::Request{"POST", target, body, deadline_ms};
}

std::string estimate_body(const std::string& method,
                          const std::string& times = "[5,12,25,40,60]") {
  return "{\"method\":\"" + method +
         "\",\"alpha0\":1.0,"
         "\"data\":{\"type\":\"failure_times\",\"times\":" +
         times +
         ",\"observation_end\":100},"
         "\"priors\":{\"omega\":{\"mean\":20,\"sd\":10},"
         "\"beta\":{\"mean\":0.01,\"sd\":0.005}},"
         "\"level\":0.99,\"reliability_windows\":[10]}";
}

const std::string* header(const serve::Response& r, std::string_view name) {
  for (const auto& [k, v] : r.headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

serve::ServiceOptions small_options() {
  serve::ServiceOptions opt;
  opt.workers = 2;
  opt.queue_capacity = 16;
  opt.cache_capacity = 32;
  return opt;
}

TEST(ServeService, RoutingBasics) {
  serve::Service svc(small_options());

  EXPECT_EQ(svc.handle(get("/healthz")).status, 200);
  EXPECT_NE(svc.handle(get("/healthz")).body.find("ok"), std::string::npos);
  EXPECT_EQ(svc.handle(post("/healthz", "")).status, 405);
  EXPECT_EQ(svc.handle(get("/v1/estimate")).status, 405);
  EXPECT_EQ(svc.handle(get("/no/such/route")).status, 404);
  // Query strings are ignored for routing.
  EXPECT_EQ(svc.handle(get("/healthz?verbose=1")).status, 200);

  const serve::MetricsSnapshot m = svc.metrics_snapshot();
  EXPECT_EQ(m.requests_total, 6u);
  EXPECT_EQ(m.healthz_requests, 4u);  // includes the 405 and the query hit
  EXPECT_EQ(m.unmatched_requests, 1u);
  EXPECT_EQ(m.latency_count, 6u);  // every request lands in the histogram
}

TEST(ServeService, OversizedBodyIs413) {
  serve::ServiceOptions opt = small_options();
  opt.max_body_bytes = 16;
  serve::Service svc(opt);
  EXPECT_EQ(svc.handle(post("/v1/estimate", std::string(64, 'x'))).status,
            413);
}

TEST(ServeService, MethodsRouteMatchesRegistry) {
  ensure_slowtest_registered();
  serve::Service svc(small_options());
  const serve::Response r = svc.handle(get("/v1/methods"));
  ASSERT_EQ(r.status, 200);

  const json::Value doc = json::parse(r.body);
  const json::Value* names = doc.find("methods");
  ASSERT_NE(names, nullptr);
  std::vector<std::string> served;
  for (const json::Value& n : names->items()) served.push_back(n.as_string());
  EXPECT_EQ(served, engine::registered_methods());
}

TEST(ServeService, EstimateMatchesDirectFitBitForBit) {
  serve::Service svc(small_options());
  const serve::Response r =
      svc.handle(post("/v1/estimate", estimate_body("vb2")));
  ASSERT_EQ(r.status, 200) << r.body;

  // The same fit, made directly against the engine.
  const data::FailureTimeData dt({5, 12, 25, 40, 60}, 100.0);
  const bayes::PriorPair priors{bayes::GammaPrior::from_mean_sd(20.0, 10.0),
                                bayes::GammaPrior::from_mean_sd(0.01, 0.005)};
  const engine::EstimatorRequest req(1.0, dt, priors);
  const auto est = engine::make("vb2", req);

  const json::Value doc = json::parse(r.body);
  const json::Value* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  const auto s = est->summarize();
  EXPECT_EQ(bits_of(summary->find("mean_omega")->as_number()),
            bits_of(s.mean_omega));
  EXPECT_EQ(bits_of(summary->find("mean_beta")->as_number()),
            bits_of(s.mean_beta));
  EXPECT_EQ(bits_of(summary->find("var_omega")->as_number()),
            bits_of(s.var_omega));
  EXPECT_EQ(bits_of(summary->find("var_beta")->as_number()),
            bits_of(s.var_beta));
  EXPECT_EQ(bits_of(summary->find("cov")->as_number()), bits_of(s.cov));

  const json::Value* intervals = doc.find("intervals");
  ASSERT_NE(intervals, nullptr);
  const auto io = est->interval_omega(0.99);
  const auto ib = est->interval_beta(0.99);
  EXPECT_EQ(
      bits_of(intervals->find("omega")->find("lower")->as_number()),
      bits_of(io.lower));
  EXPECT_EQ(
      bits_of(intervals->find("omega")->find("upper")->as_number()),
      bits_of(io.upper));
  EXPECT_EQ(bits_of(intervals->find("beta")->find("lower")->as_number()),
            bits_of(ib.lower));
  EXPECT_EQ(bits_of(intervals->find("beta")->find("upper")->as_number()),
            bits_of(ib.upper));

  const json::Value* rel = doc.find("reliability");
  ASSERT_NE(rel, nullptr);
  ASSERT_EQ(rel->size(), 1u);
  const auto re = est->reliability(10.0, 0.99);
  const json::Value& entry = rel->items()[0];
  EXPECT_EQ(bits_of(entry.find("window")->as_number()), bits_of(10.0));
  EXPECT_EQ(bits_of(entry.find("point")->as_number()), bits_of(re.point));
  EXPECT_EQ(bits_of(entry.find("lower")->as_number()), bits_of(re.lower));
  EXPECT_EQ(bits_of(entry.find("upper")->as_number()), bits_of(re.upper));
}

TEST(ServeService, CacheHitIsByteIdentical) {
  serve::Service svc(small_options());
  const std::string body = estimate_body("vb2");

  const serve::Response first = svc.handle(post("/v1/estimate", body));
  ASSERT_EQ(first.status, 200) << first.body;
  ASSERT_NE(header(first, "X-Cache"), nullptr);
  EXPECT_EQ(*header(first, "X-Cache"), "miss");

  const serve::Response second = svc.handle(post("/v1/estimate", body));
  ASSERT_EQ(second.status, 200);
  ASSERT_NE(header(second, "X-Cache"), nullptr);
  EXPECT_EQ(*header(second, "X-Cache"), "hit");
  EXPECT_EQ(second.body, first.body);

  const serve::MetricsSnapshot m = svc.metrics_snapshot();
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.cache_misses, 1u);
  EXPECT_EQ(m.cache_entries, 1u);
}

TEST(ServeService, CanonicalKeyMaterializesDefaults) {
  serve::Service svc(small_options());
  // Minimal body: everything defaulted.
  const std::string minimal =
      R"({"data":{"type":"failure_times","times":[1,2,3],)"
      R"("observation_end":10}})";
  // Same request with every default spelled out (and the method name
  // upper-cased — lookup is case-insensitive).
  const std::string explicit_body =
      R"({"method":"VB2","alpha0":1.0,"level":0.99,)"
      R"("data":{"type":"failure_times","times":[1,2,3],)"
      R"("observation_end":10},)"
      R"("priors":{"omega":{"shape":1,"rate":0},)"
      R"("beta":{"shape":1,"rate":0}},"reliability_windows":[]})";
  EXPECT_EQ(svc.canonical_estimate_key(minimal),
            svc.canonical_estimate_key(explicit_body));

  // Anything that changes the fit changes the key.
  const std::string other_level =
      R"({"level":0.95,"data":{"type":"failure_times","times":[1,2,3],)"
      R"("observation_end":10}})";
  EXPECT_NE(svc.canonical_estimate_key(minimal),
            svc.canonical_estimate_key(other_level));
}

TEST(ServeService, BadRequestsGet400) {
  serve::Service svc(small_options());
  const auto estimate = [&](const std::string& body) {
    return svc.handle(post("/v1/estimate", body));
  };

  EXPECT_EQ(estimate("this is not json").status, 400);
  EXPECT_EQ(estimate("[1,2,3]").status, 400);  // not an object
  EXPECT_EQ(estimate("{}").status, 400);       // data missing

  const serve::Response unknown =
      estimate(estimate_body("no-such-method"));
  EXPECT_EQ(unknown.status, 400);
  EXPECT_NE(unknown.body.find("registered"), std::string::npos)
      << unknown.body;

  // Invalid data: a failure time beyond the observation window.
  EXPECT_EQ(estimate(estimate_body("vb2", "[5,12,250]")).status, 400);
  // Invalid level.
  const std::string bad_level =
      R"({"level":1.5,"data":{"type":"failure_times","times":[1],)"
      R"("observation_end":10}})";
  EXPECT_EQ(estimate(bad_level).status, 400);
  // Grouped data with a negative count.
  const std::string bad_count =
      R"({"data":{"type":"grouped","boundaries":[1,2],"counts":[3,-1]}})";
  EXPECT_EQ(estimate(bad_count).status, 400);

  const serve::MetricsSnapshot m = svc.metrics_snapshot();
  EXPECT_EQ(m.responses_4xx, 7u);
  EXPECT_EQ(m.responses_5xx, 0u);
}

TEST(ServeService, QueueFullAnswers503WithRetryAfter) {
  ensure_slowtest_registered();
  g_slow_ms = 300;
  serve::ServiceOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 1;
  opt.cache_capacity = 0;  // every request must reach the queue
  serve::Service svc(opt);

  constexpr int kClients = 8;
  std::vector<serve::Response> responses(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        // Distinct datasets so no two requests share a cache key.
        const std::string times = "[" + std::to_string(i + 1) + "]";
        responses[static_cast<std::size_t>(i)] =
            svc.handle(post("/v1/estimate", estimate_body("slowtest", times)));
      });
    }
    for (std::thread& t : clients) t.join();
  }
  g_slow_ms = 0;

  int ok = 0, rejected = 0;
  for (const serve::Response& r : responses) {
    if (r.status == 200) {
      ++ok;
    } else {
      ASSERT_EQ(r.status, 503) << r.body;
      ++rejected;
      const std::string* retry = header(r, "Retry-After");
      ASSERT_NE(retry, nullptr);
      EXPECT_GE(std::stoi(*retry), 1);
    }
  }
  // One running + one queued can be admitted at a time; with 8 near-
  // simultaneous clients at least one lands in each bucket.
  EXPECT_GE(ok, 1);
  EXPECT_GE(rejected, 1);
  EXPECT_GE(svc.metrics_snapshot().queue_full_503, 1u);
}

TEST(ServeService, DeadlineExpiryAnswers504) {
  ensure_slowtest_registered();
  g_slow_ms = 500;
  serve::ServiceOptions opt;
  opt.workers = 1;
  opt.cache_capacity = 0;
  serve::Service svc(opt);

  const serve::Response r =
      svc.handle(post("/v1/estimate", estimate_body("slowtest"), 50.0));
  g_slow_ms = 0;
  EXPECT_EQ(r.status, 504);
  EXPECT_NE(r.body.find("deadline"), std::string::npos);
  EXPECT_EQ(svc.metrics_snapshot().deadline_504, 1u);
}

TEST(ServeService, ShutdownDrainsAndRejectsNewWork) {
  serve::Service svc(small_options());
  svc.shutdown();
  const serve::Response r =
      svc.handle(post("/v1/estimate", estimate_body("vb2")));
  EXPECT_EQ(r.status, 503);
  ASSERT_NE(header(r, "Retry-After"), nullptr);
  // Idempotent.
  svc.shutdown();
}

TEST(ServeService, ConcurrentClientsGetByteIdenticalBodies) {
  serve::ServiceOptions opt = small_options();
  opt.workers = 4;
  serve::Service svc(opt);
  const std::string body = estimate_body("vb2");

  constexpr int kClients = 6;  // >= 4 concurrent, mixed hits and misses
  std::vector<serve::Response> responses(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        responses[static_cast<std::size_t>(i)] =
            svc.handle(post("/v1/estimate", body));
      });
    }
    for (std::thread& t : clients) t.join();
  }
  for (const serve::Response& r : responses) {
    ASSERT_EQ(r.status, 200) << r.body;
    EXPECT_EQ(r.body, responses[0].body);
  }
}

TEST(ServeService, BatchRouteRunsTheGrid) {
  serve::Service svc(small_options());
  const std::string body =
      R"({"methods":["vb2","VB1"],"levels":[0.9,0.99],)"
      R"("data":{"type":"failure_times","times":[5,12,25,40,60],)"
      R"("observation_end":100},"reliability_windows":[10]})";
  // Generous explicit deadline: the grid does real VB fits, and this test
  // is about ordering/content, not deadline enforcement — a loaded ctest -j
  // run must not 504 it.
  const serve::Response r = svc.handle(post("/v1/batch", body, 300000.0));
  ASSERT_EQ(r.status, 200) << r.body;

  const json::Value doc = json::parse(r.body);
  const json::Value* reports = doc.find("reports");
  ASSERT_NE(reports, nullptr);
  ASSERT_EQ(reports->size(), 4u);  // 2 methods x 1 request x 2 levels

  // Deterministic order: methods-major, levels-minor.
  const char* want_method[] = {"vb2", "vb2", "vb1", "vb1"};
  const double want_level[] = {0.9, 0.99, 0.9, 0.99};
  for (std::size_t i = 0; i < 4; ++i) {
    const json::Value& rep = reports->items()[i];
    EXPECT_EQ(rep.find("method")->as_string(), want_method[i]);
    EXPECT_EQ(rep.find("level")->as_number(), want_level[i]);
    ASSERT_TRUE(rep.find("ok")->as_bool()) << r.body;
    EXPECT_NE(rep.find("summary"), nullptr);
    ASSERT_NE(rep.find("reliability"), nullptr);
    EXPECT_EQ(rep.find("reliability")->size(), 1u);
  }

  // Unknown method in the grid is rejected up front.
  const std::string bad =
      R"({"methods":["nope"],"data":{"type":"failure_times",)"
      R"("times":[1],"observation_end":10}})";
  EXPECT_EQ(svc.handle(post("/v1/batch", bad)).status, 400);
}

}  // namespace
