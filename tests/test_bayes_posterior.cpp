// Priors and the factorized unnormalized log posterior.
#include <gtest/gtest.h>

#include <cmath>

#include "bayes/posterior.hpp"
#include "bayes/prior.hpp"
#include "data/datasets.hpp"
#include "nhpp/likelihood.hpp"

namespace b = vbsrm::bayes;
namespace d = vbsrm::data;
namespace n = vbsrm::nhpp;

namespace {

TEST(GammaPrior, FromMeanSdMatchesMoments) {
  const auto p = b::GammaPrior::from_mean_sd(50.0, 15.8);
  EXPECT_NEAR(p.mean(), 50.0, 1e-10);
  EXPECT_NEAR(p.sd(), 15.8, 1e-10);
  // Paper's Info prior on omega: shape ~ (50/15.8)^2 ~ 10.01.
  EXPECT_NEAR(p.shape, 10.0140, 1e-3);
}

TEST(GammaPrior, LogDensityNormalizes) {
  const auto p = b::GammaPrior::from_mean_sd(2.0, 1.0);
  // Integrate exp(log_density) over a wide range by Riemann sum.
  double mass = 0.0;
  const double dx = 1e-3;
  for (double x = dx / 2; x < 40.0; x += dx) {
    mass += std::exp(p.log_density(x)) * dx;
  }
  EXPECT_NEAR(mass, 1.0, 1e-4);
}

TEST(GammaPrior, FlatBehaviour) {
  const auto f = b::GammaPrior::flat();
  EXPECT_TRUE(f.is_flat());
  EXPECT_DOUBLE_EQ(f.log_density(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f.log_density(1e9), 0.0);
  EXPECT_TRUE(std::isinf(f.log_density(-1.0)));
  EXPECT_TRUE(std::isinf(f.mean()));
  EXPECT_NE(f.describe().find("flat"), std::string::npos);
}

TEST(GammaPrior, RejectsBadMeanSd) {
  EXPECT_THROW(b::GammaPrior::from_mean_sd(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(b::GammaPrior::from_mean_sd(1.0, -1.0), std::invalid_argument);
}

TEST(LogPosterior, FlatPriorEqualsLogLikelihoodUpToConstant) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, b::PriorPair::flat());
  for (double omega : {30.0, 44.0, 60.0}) {
    for (double beta : {8e-6, 1.26e-5, 2e-5}) {
      EXPECT_NEAR(post(omega, beta),
                  n::log_likelihood_at(1.0, omega, beta, dt), 1e-9);
    }
  }
}

TEST(LogPosterior, InfoPriorAddsLogPriorDensities) {
  const auto dt = d::datasets::system17_failure_times();
  const b::PriorPair info{b::GammaPrior::from_mean_sd(50.0, 15.8),
                          b::GammaPrior::from_mean_sd(1e-5, 3.2e-6)};
  b::LogPosterior post(1.0, dt, info);
  const double omega = 44.0, beta = 1.2e-5;
  EXPECT_NEAR(post(omega, beta),
              n::log_likelihood_at(1.0, omega, beta, dt) +
                  info.omega.log_density(omega) + info.beta.log_density(beta),
              1e-9);
}

TEST(LogPosterior, FactorizationReassembles) {
  const auto dg = d::datasets::system17_grouped();
  const b::PriorPair info{b::GammaPrior::from_mean_sd(50.0, 15.8),
                          b::GammaPrior::from_mean_sd(3.3e-2, 1.1e-2)};
  b::LogPosterior post(1.0, dg, info);
  const double omega = 48.0, beta = 2.6e-2;
  const double assembled = info.omega.log_density(omega) +
                           info.beta.log_density(beta) +
                           post.beta_term(beta) +
                           static_cast<double>(post.failures()) *
                               std::log(omega) -
                           omega * post.exposure(beta);
  EXPECT_NEAR(post(omega, beta), assembled, 1e-10);
}

TEST(LogPosterior, GroupedMatchesLikelihoodUpToCountConstants) {
  // Eq. (5) has -sum log x_i! terms that the factorized posterior drops;
  // the difference must be constant in (omega, beta).
  const auto dg = d::datasets::system17_grouped();
  b::LogPosterior post(1.0, dg, b::PriorPair::flat());
  const double d1 = post(40.0, 2e-2) - n::log_likelihood_at(1.0, 40.0, 2e-2, dg);
  const double d2 = post(60.0, 4e-2) - n::log_likelihood_at(1.0, 60.0, 4e-2, dg);
  EXPECT_NEAR(d1, d2, 1e-9);
}

TEST(LogPosterior, OffDomainIsMinusInfinity) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, b::PriorPair::flat());
  EXPECT_TRUE(std::isinf(post(0.0, 1e-5)));
  EXPECT_TRUE(std::isinf(post(10.0, -1e-5)));
}

TEST(LogPosterior, ExposureIsFailureLawCdf) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(2.0, dt, b::PriorPair::flat());
  const vbsrm::nhpp::GammaFailureLaw law{2.0};
  EXPECT_NEAR(post.exposure(1e-5), law.cdf(dt.observation_end(), 1e-5),
              1e-14);
  EXPECT_EQ(post.failures(), 38u);
  EXPECT_DOUBLE_EQ(post.horizon(), 160000.0);
}

}  // namespace
