// Prediction utilities and trend / goodness-of-fit tests.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "data/datasets.hpp"
#include "nhpp/fit.hpp"
#include "nhpp/prediction.hpp"
#include "nhpp/trend.hpp"

namespace n = vbsrm::nhpp;
namespace d = vbsrm::data;

namespace {

TEST(Prediction, ExpectedFailuresMatchesMeanValueIncrement) {
  const auto go = n::goel_okumoto(44.0, 1.26e-5);
  const double t = 160000.0, u = 10000.0;
  EXPECT_NEAR(n::expected_failures(go, t, u),
              go.mean_value(t + u) - go.mean_value(t), 1e-10);
  EXPECT_DOUBLE_EQ(n::expected_failures(go, t, 0.0), 0.0);
}

TEST(Prediction, NextFailureCdfComplementsReliability) {
  const auto go = n::goel_okumoto(44.0, 1.26e-5);
  EXPECT_NEAR(n::next_failure_cdf(go, 1e5, 5e3) +
                  n::reliability(go, 1e5, 5e3),
              1.0, 1e-12);
}

TEST(Prediction, NextFailureQuantileRoundTrips) {
  const auto go = n::goel_okumoto(44.0, 1.26e-5);
  const double t = 100000.0;
  const double u = n::next_failure_quantile(go, t, 0.3);
  ASSERT_TRUE(std::isfinite(u));
  EXPECT_NEAR(n::next_failure_cdf(go, t, u), 0.3, 1e-8);
}

TEST(Prediction, NextFailureQuantileInfiniteWhenProcessDiesOut) {
  // Tiny residual-fault mass: high quantiles unreachable.
  const auto go = n::goel_okumoto(5.0, 1.0);
  const double t = 20.0;  // residual ~ 5 e^{-20}: P(ever) ~ 1e-8
  EXPECT_TRUE(std::isinf(n::next_failure_quantile(go, t, 0.5)));
}

TEST(Prediction, TestTimeForReliabilityMonotone) {
  const auto go = n::goel_okumoto(44.0, 1.26e-5);
  const double t = 160000.0, mission = 10000.0;
  const double r_now = n::reliability(go, t, mission);
  // A target below current reliability needs no extra testing.
  EXPECT_DOUBLE_EQ(
      n::test_time_for_reliability(go, t, mission, 0.9 * r_now, 1e7), 0.0);
  // A strictly higher target needs positive wait, and R holds there.
  const double target = std::min(0.999, r_now + 0.5 * (1.0 - r_now));
  const double w = n::test_time_for_reliability(go, t, mission, target, 1e9);
  ASSERT_TRUE(std::isfinite(w));
  EXPECT_GT(w, 0.0);
  EXPECT_NEAR(go.reliability(t + w, mission), target, 1e-6);
}

TEST(Prediction, TestTimeForReliabilityUnreachable) {
  const auto go = n::goel_okumoto(44.0, 1.26e-5);
  // Residual faults never fully vanish within the max wait.
  EXPECT_TRUE(std::isinf(
      n::test_time_for_reliability(go, 1000.0, 1e6, 0.999999999, 2000.0)));
  EXPECT_THROW(n::test_time_for_reliability(go, 0.0, 1.0, 1.5, 10.0),
               std::invalid_argument);
}

TEST(LaplaceTrend, DetectsReliabilityGrowth) {
  // System 17 stand-in exhibits reliability growth: factor well below 0.
  const auto dt = d::datasets::system17_failure_times();
  EXPECT_LT(n::laplace_trend(dt), -2.0);
}

TEST(LaplaceTrend, NearZeroForHomogeneousProcess) {
  // Evenly spread failures: no trend.
  std::vector<double> times;
  for (int i = 1; i <= 40; ++i) times.push_back(25.0 * i - 12.5);
  d::FailureTimeData ft(std::move(times), 1000.0);
  EXPECT_NEAR(n::laplace_trend(ft), 0.0, 0.5);
}

TEST(LaplaceTrend, GroupedAgreesWithTimeVersionOnFineBins) {
  const auto dt = d::datasets::system17_failure_times();
  std::vector<double> bounds;
  for (int i = 1; i <= 640; ++i) bounds.push_back(250.0 * i);
  const auto dg = dt.to_grouped(bounds);
  EXPECT_NEAR(n::laplace_trend(dg), n::laplace_trend(dt), 0.05);
}

TEST(LaplaceTrend, RequiresEnoughFailures) {
  d::FailureTimeData one({5.0}, 10.0);
  EXPECT_THROW(n::laplace_trend(one), std::invalid_argument);
}

TEST(KsFit, AcceptsWellFittingModel) {
  const auto dt = d::datasets::system17_failure_times();
  const auto fit = n::fit_em(1.0, dt);
  const auto ks = n::ks_fit_test(fit.model(1.0), dt);
  EXPECT_GT(ks.p_value, 0.05);  // D_T is designed to fit GO well
}

TEST(KsFit, RejectsBadlyMisspecifiedModel) {
  const auto dt = d::datasets::system17_failure_times();
  // A GO model with beta 20x too large concentrates all mass early.
  const auto bad = n::goel_okumoto(44.0, 2.5e-4);
  const auto ks = n::ks_fit_test(bad, dt);
  EXPECT_LT(ks.p_value, 1e-4);
}

TEST(ChiSquareFit, GroupedDataFitsGoOnlyModerately) {
  const auto dg = d::datasets::system17_grouped();
  const auto fit = n::fit_em(1.0, dg);
  const auto go = n::chi_square_fit_test(fit.model(1.0), dg);
  const auto fit2 = n::fit_em(2.0, dg);
  const auto dss = n::chi_square_fit_test(fit2.model(2.0), dg);
  // The stand-in D_G is generated from a DSS shape: the DSS fit
  // statistic (per dof) must beat GO's.
  EXPECT_LT(dss.statistic / dss.dof, go.statistic / go.dof);
}

}  // namespace
