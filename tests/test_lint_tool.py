#!/usr/bin/env python3
"""Unit tests for tools/lint/vbsrm_lint.py: every detector fires on a
minimal positive example, stays quiet on the idiomatic negative, comments
and strings never trigger, and the allowlist suppresses exactly what it
names."""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINT = REPO / "tools" / "lint" / "vbsrm_lint.py"
sys.path.insert(0, str(LINT.parent))

import vbsrm_lint  # noqa: E402


def run_lint(tree: dict, allowlist: str | None = None, extra_args=()):
    """Materialize {relpath: content} under a temp src/ dir and lint it."""
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "src"
        for rel, content in tree.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)
        args = ["--root", str(root), "--project-root", tmp, "--json"]
        if allowlist is None:
            args.append("--no-allowlist")
        else:
            al = Path(tmp) / "allowlist.txt"
            al.write_text(allowlist)
            args += ["--allowlist", str(al)]
        args += list(extra_args)
        proc = subprocess.run(
            [sys.executable, str(LINT), *args],
            capture_output=True, text=True)
        doc = json.loads(proc.stdout) if proc.stdout.strip() else {}
        return proc.returncode, doc.get("findings", [])


def rules_of(findings):
    return sorted({f["rule"] for f in findings})


GUARDED = "#pragma once\n"


class DetectorTests(unittest.TestCase):
    def test_clean_file_passes(self):
        rc, findings = run_lint({
            "core/ok.cpp": '#include "math/specfun.hpp"\n'
                           "double f(double z) { return vbsrm::math::log_gamma(z); }\n"
        })
        self.assertEqual(rc, 0)
        self.assertEqual(findings, [])

    def test_specfun_wrapper(self):
        rc, findings = run_lint({
            "core/bad.cpp": "#include <cmath>\n"
                            "double f(double z) { return std::lgamma(z); }\n"
                            "double g(double z) { return tgamma(z); }\n"
        })
        self.assertEqual(rc, 1)
        self.assertIn("specfun-wrapper", rules_of(findings))
        self.assertEqual(
            len([f for f in findings if f["rule"] == "specfun-wrapper"]), 2)

    def test_specfun_wrapper_ignores_log_gamma(self):
        rc, findings = run_lint({
            "core/ok.cpp": "double f(double z) { return math::log_gamma(z); }\n"
        })
        self.assertEqual(rc, 0, findings)

    def test_random_wrapper(self):
        rc, findings = run_lint({
            "core/bad.cpp": "#include <random>\n"
                            "int f() { std::random_device rd; return rd(); }\n",
            "core/bad2.cpp": "#include <random>\n"
                             "std::mt19937 gen(42);\n",
        })
        self.assertEqual(rc, 1)
        self.assertEqual(rules_of(findings), ["random-wrapper"])

    def test_wall_clock_seed(self):
        rc, findings = run_lint({
            "core/bad.cpp": "#include <ctime>\n"
                            "long f() { return time(NULL); }\n"
                            "long g() { return time(nullptr); }\n"
        })
        self.assertEqual(rc, 1)
        self.assertIn("wall-clock-seed", rules_of(findings))

    def test_wall_clock_allows_named_functions(self):
        rc, findings = run_lint({
            "core/ok.cpp": "double f() { return wall_time(); }\n"
                           "double g() { return d.observation_time(x); }\n"
        })
        self.assertEqual(rc, 0, findings)

    def test_naked_exp_of_log_weight(self):
        rc, findings = run_lint({
            "core/bad.cpp": "double f(double log_w) {\n"
                            "  return exp(log_w) + std::exp(log_weights[0]);\n"
                            "}\n"
        })
        self.assertEqual(rc, 1)
        self.assertEqual(
            len([f for f in findings if f["rule"] == "naked-exp-log-weight"]),
            2)

    def test_exp_of_plain_argument_is_fine(self):
        rc, findings = run_lint({
            "core/ok.cpp": "double f(double x) { return std::exp(x); }\n"
        })
        self.assertEqual(rc, 0, findings)

    def test_include_guard(self):
        rc, findings = run_lint({
            "core/bad.hpp": "int f();\n",
            "core/pragma.hpp": "#pragma once\nint g();\n",
            "core/classic.hpp": "#ifndef VBSRM_CORE_CLASSIC_HPP\n"
                                "#define VBSRM_CORE_CLASSIC_HPP\n"
                                "int h();\n#endif\n",
        })
        self.assertEqual(rc, 1)
        guard = [f for f in findings if f["rule"] == "include-guard"]
        self.assertEqual([f["path"] for f in guard], ["src/core/bad.hpp"])

    def test_stdout_in_library(self):
        rc, findings = run_lint({
            "core/bad.cpp": "#include <cstdio>\n#include <iostream>\n"
                            "void f() { std::cout << 1; }\n"
                            'void g() { std::printf("x"); }\n'
                            'void h() { fprintf(stderr, "x"); }\n'
        })
        self.assertEqual(rc, 1)
        self.assertEqual(
            len([f for f in findings if f["rule"] == "stdout-in-library"]), 3)

    def test_snprintf_is_fine(self):
        rc, findings = run_lint({
            "core/ok.cpp": "#include <cstdio>\n"
                           "void f(char* b) { std::snprintf(b, 4, \"x\"); }\n"
        })
        self.assertEqual(rc, 0, findings)

    def test_catch_by_value(self):
        rc, findings = run_lint({
            "core/bad.cpp": "void f() {\n"
                            "  try { g(); } catch (std::exception e) {}\n"
                            "}\n"
        })
        self.assertEqual(rc, 1)
        self.assertIn("catch-by-value", rules_of(findings))

    def test_catch_by_reference_and_ellipsis_are_fine(self):
        rc, findings = run_lint({
            "core/ok.cpp": "void f() {\n"
                           "  try { g(); } catch (const std::exception& e) {}\n"
                           "  try { g(); } catch (...) {}\n"
                           "}\n"
        })
        self.assertEqual(rc, 0, findings)

    def test_comments_and_strings_never_trigger(self):
        rc, findings = run_lint({
            "core/ok.cpp": "// std::lgamma(z) is replaced by log_gamma\n"
                           "/* std::cout << time(NULL) */\n"
                           'const char* s = "std::rand() time(NULL)";\n'
        })
        self.assertEqual(rc, 0, findings)


class AllowlistTests(unittest.TestCase):
    BAD = {"serve/main.cpp": '#include <cstdio>\nint main() { std::printf("x"); }\n'}

    def test_entry_suppresses_named_rule(self):
        rc, findings = run_lint(
            self.BAD, allowlist="stdout-in-library src/serve/main.cpp\n")
        self.assertEqual(rc, 0, findings)

    def test_entry_is_rule_specific(self):
        rc, findings = run_lint(
            self.BAD, allowlist="catch-by-value src/serve/main.cpp\n")
        self.assertEqual(rc, 1)

    def test_entry_is_path_specific(self):
        rc, findings = run_lint(
            self.BAD, allowlist="stdout-in-library src/serve/other.cpp\n")
        self.assertEqual(rc, 1)

    def test_wildcard_rule(self):
        rc, findings = run_lint(
            self.BAD, allowlist="* src/serve/main.cpp\n")
        self.assertEqual(rc, 0, findings)

    def test_comments_and_blanks_ignored(self):
        rc, findings = run_lint(
            self.BAD,
            allowlist="# explanation\n\n"
                      "stdout-in-library src/serve/main.cpp  # CLI\n")
        self.assertEqual(rc, 0, findings)

    def test_unknown_rule_id_is_an_error(self):
        rc, _ = run_lint(self.BAD, allowlist="no-such-rule src/serve/main.cpp\n")
        self.assertEqual(rc, 2)


class StripperTests(unittest.TestCase):
    def test_preserves_line_structure(self):
        text = "a\n/* b\nc */ d // e\nf \"g\nh\"\n"
        stripped = vbsrm_lint.strip_comments_and_strings(text)
        self.assertEqual(stripped.count("\n"), text.count("\n"))

    def test_escaped_quote_in_string(self):
        stripped = vbsrm_lint.strip_comments_and_strings(
            'x = "a\\"b"; std::cout << x;')
        self.assertIn("std::cout", stripped)
        self.assertNotIn("a\\\"b", stripped)


class RepoTreeTest(unittest.TestCase):
    def test_real_src_is_clean_under_checked_in_allowlist(self):
        proc = subprocess.run(
            [sys.executable, str(LINT), "--root", str(REPO / "src"),
             "--project-root", str(REPO)],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
