// Descriptive statistics, quantiles, diagnostics, histograms, GOF tests.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "math/specfun.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/diagnostics.hpp"
#include "stats/gof.hpp"
#include "stats/histogram.hpp"
#include "stats/quantiles.hpp"

namespace s = vbsrm::stats;
namespace r = vbsrm::random;

namespace {

TEST(Descriptive, MeanVarCovKnown) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_DOUBLE_EQ(s::mean(x), 3.0);
  EXPECT_DOUBLE_EQ(s::variance(x), 2.5);
  EXPECT_DOUBLE_EQ(s::covariance(x, y), 5.0);
}

TEST(Descriptive, SkewnessSigns) {
  const std::vector<double> right{1, 1, 1, 2, 10};
  const std::vector<double> sym{-2, -1, 0, 1, 2};
  EXPECT_GT(s::skewness(right), 0.5);
  EXPECT_NEAR(s::skewness(sym), 0.0, 1e-12);
}

TEST(Descriptive, WeightedMomentsReduceToUnweighted) {
  const std::vector<double> x{1, 5, 9};
  const std::vector<double> w{1, 1, 1};
  EXPECT_DOUBLE_EQ(s::weighted_mean(x, w), 5.0);
  EXPECT_NEAR(s::weighted_variance(x, w), s::central_moment(x, 2), 1e-14);
}

TEST(Descriptive, WeightedMeanWeights) {
  const std::vector<double> x{0.0, 10.0};
  const std::vector<double> w{3.0, 1.0};
  EXPECT_DOUBLE_EQ(s::weighted_mean(x, w), 2.5);
}

TEST(Descriptive, ErrorsOnDegenerateInput) {
  EXPECT_THROW(s::mean(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(s::variance(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(s::covariance(std::vector<double>{1.0, 2.0},
                             std::vector<double>{1.0}),
               std::invalid_argument);
  const std::vector<double> x{1.0};
  const std::vector<double> bad{-1.0};
  EXPECT_THROW(s::weighted_mean(x, bad), std::invalid_argument);
}

TEST(Descriptive, SummaryFields) {
  const std::vector<double> x{3, 1, 4, 1, 5};
  const auto sm = s::summarize(x);
  EXPECT_EQ(sm.n, 5u);
  EXPECT_DOUBLE_EQ(sm.min, 1.0);
  EXPECT_DOUBLE_EQ(sm.max, 5.0);
  EXPECT_NEAR(sm.sd * sm.sd, sm.variance, 1e-14);
}

TEST(Quantiles, OrderStatisticRuleMatchesPaper) {
  // The paper: lower bound of 95% CI from 20000 samples = 500th smallest.
  std::vector<double> x(20000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i + 1);  // values 1..20000
  }
  EXPECT_DOUBLE_EQ(s::order_statistic_quantile(x, 0.025), 500.0);
  EXPECT_DOUBLE_EQ(s::order_statistic_quantile(x, 0.975), 19500.0);
  EXPECT_DOUBLE_EQ(s::order_statistic_quantile(x, 1.0), 20000.0);
}

TEST(Quantiles, Type7Interpolates) {
  const std::vector<double> x{0.0, 10.0};
  EXPECT_DOUBLE_EQ(s::quantile_type7(x, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(s::quantile_type7(x, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(s::quantile_type7(x, 1.0), 10.0);
}

TEST(Quantiles, BatchedMatchesSingle) {
  const std::vector<double> x{5, 3, 8, 1, 9, 2, 7};
  const std::vector<double> ps{0.1, 0.5, 0.9};
  const auto q = s::quantiles(x, ps);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(q[i], s::order_statistic_quantile(x, ps[i]));
  }
}

TEST(Quantiles, Ecdf) {
  const std::vector<double> x{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(s::ecdf(x, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(s::ecdf(x, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(s::ecdf(x, 4.0), 1.0);
}

TEST(Diagnostics, AutocorrelationOfIidIsNearZero) {
  r::Rng g(61);
  std::vector<double> x;
  for (int i = 0; i < 20000; ++i) x.push_back(r::sample_normal(g));
  const auto rho = s::autocorrelation(x, 5);
  EXPECT_DOUBLE_EQ(rho[0], 1.0);
  for (int k = 1; k <= 5; ++k) EXPECT_NEAR(rho[k], 0.0, 0.03);
}

TEST(Diagnostics, AutocorrelationOfAR1) {
  // AR(1) with phi = 0.8: rho(k) ~ 0.8^k.
  r::Rng g(62);
  std::vector<double> x{0.0};
  for (int i = 1; i < 50000; ++i) {
    x.push_back(0.8 * x.back() + r::sample_normal(g));
  }
  const auto rho = s::autocorrelation(x, 3);
  EXPECT_NEAR(rho[1], 0.8, 0.03);
  EXPECT_NEAR(rho[2], 0.64, 0.04);
}

TEST(Diagnostics, EssSmallerForCorrelatedChain) {
  r::Rng g(63);
  std::vector<double> iid, ar;
  double prev = 0.0;
  for (int i = 0; i < 20000; ++i) {
    iid.push_back(r::sample_normal(g));
    prev = 0.9 * prev + r::sample_normal(g);
    ar.push_back(prev);
  }
  EXPECT_GT(s::effective_sample_size(iid), 15000.0);
  EXPECT_LT(s::effective_sample_size(ar), 4000.0);
}

TEST(Diagnostics, GewekeNearZeroForStationary) {
  r::Rng g(64);
  std::vector<double> x;
  for (int i = 0; i < 20000; ++i) x.push_back(r::sample_normal(g));
  EXPECT_LT(std::abs(s::geweke_z(x)), 3.0);
}

TEST(Diagnostics, GewekeFlagsDrift) {
  std::vector<double> x;
  r::Rng g(65);
  for (int i = 0; i < 20000; ++i) {
    x.push_back(r::sample_normal(g) + 3e-4 * i);
  }
  EXPECT_GT(std::abs(s::geweke_z(x)), 4.0);
}

TEST(Diagnostics, SplitRhatNearOneWhenMixed) {
  r::Rng g(66);
  std::vector<double> x;
  for (int i = 0; i < 8000; ++i) x.push_back(r::sample_normal(g));
  EXPECT_NEAR(s::split_rhat(x), 1.0, 0.02);
}

TEST(Histogram1D, CountsAndDensityNormalize) {
  s::Histogram1D h(0.0, 10.0, 10);
  for (int i = 0; i < 1000; ++i) h.add(0.01 * i);  // fills [0,10)
  EXPECT_EQ(h.total(), 1000u);
  double mass = 0.0;
  for (int b = 0; b < h.bins(); ++b) mass += h.density(b) * 1.0;
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(Histogram1D, DropsOutOfRange) {
  s::Histogram1D h(0.0, 1.0, 4);
  h.add(-0.5);
  h.add(1.5);
  h.add(0.5);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Histogram2D, CsvAndDensity) {
  s::Histogram2D h(0.0, 1.0, 2, 0.0, 1.0, 2);
  h.add(0.25, 0.25);
  h.add(0.75, 0.75);
  h.add(0.75, 0.80);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(1, 1), 2u);
  const auto csv = h.to_csv();
  EXPECT_NE(csv.find("x,y,density"), std::string::npos);
}

TEST(AsciiContour, RendersNonEmpty) {
  std::vector<std::vector<double>> grid(10, std::vector<double>(20, 0.0));
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 20; ++j) {
      const double dx = (i - 5.0) / 2.0, dy = (j - 10.0) / 4.0;
      grid[i][j] = std::exp(-0.5 * (dx * dx + dy * dy));
    }
  }
  const auto art = s::ascii_contour(grid);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 10);
  EXPECT_NE(art.find('@'), std::string::npos);
}

TEST(KsTest, AcceptsCorrectNull) {
  r::Rng g(71);
  std::vector<double> x;
  for (int i = 0; i < 2000; ++i) x.push_back(g.next_double());
  const auto ks = s::ks_test(x, [](double t) {
    return std::clamp(t, 0.0, 1.0);
  });
  EXPECT_GT(ks.p_value, 0.001);
  EXPECT_LT(ks.statistic, 0.05);
}

TEST(KsTest, RejectsWrongNull) {
  r::Rng g(72);
  std::vector<double> x;
  for (int i = 0; i < 2000; ++i) x.push_back(r::sample_exponential(g, 1.0));
  // Claim: standard normal.  Must reject decisively.
  const auto ks = s::ks_test(x, [](double t) {
    return vbsrm::math::normal_cdf(t);
  });
  EXPECT_LT(ks.p_value, 1e-6);
}

TEST(ChiSquare, AcceptsMatchedCounts) {
  const std::vector<double> obs{48, 52, 95, 105};
  const std::vector<double> expd{50, 50, 100, 100};
  const auto c = s::chi_square_test(obs, expd);
  EXPECT_GT(c.p_value, 0.5);
}

TEST(ChiSquare, RejectsMismatchedCounts) {
  const std::vector<double> obs{10, 90, 150, 50};
  const std::vector<double> expd{75, 75, 75, 75};
  const auto c = s::chi_square_test(obs, expd);
  EXPECT_LT(c.p_value, 1e-6);
}

TEST(ChiSquare, PoolsSmallBins) {
  // Many tiny-expectation bins must be pooled, not inflate the statistic.
  std::vector<double> obs(20, 1.0), expd(20, 1.0);
  const auto c = s::chi_square_test(obs, expd, 0, 5.0);
  EXPECT_LE(c.dof, 4);
  EXPECT_GT(c.p_value, 0.5);
}

TEST(ChiSquareSf, MatchesKnownValues) {
  // P(chi2_1 > 3.841) ~ 0.05.
  EXPECT_NEAR(s::chi_square_sf(3.841458820694124, 1), 0.05, 1e-6);
  EXPECT_NEAR(s::chi_square_sf(0.0, 3), 1.0, 1e-12);
}

}  // namespace
