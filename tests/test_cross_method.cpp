// Cross-method integration tests: the paper's central empirical claims,
// asserted end-to-end on the System 17 stand-ins.
//
//   (1) NINT ~ MCMC ~ VB2 on moments, credible intervals and
//       reliability (Info cases, both data schemes);
//   (2) LAPL means are left-shifted; VB1 variances collapse;
//   (3) VB2 is much cheaper than MCMC at the paper's configurations;
//   (4) the D_G-NoInfo case destabilizes every method (huge variance).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "bayes/gibbs.hpp"
#include "bayes/laplace.hpp"
#include "bayes/nint.hpp"
#include "core/vb1.hpp"
#include "core/vb2.hpp"
#include "data/datasets.hpp"

namespace b = vbsrm::bayes;
namespace c = vbsrm::core;
namespace d = vbsrm::data;

namespace {

b::PriorPair info_dt() {
  return {b::GammaPrior::from_mean_sd(50.0, 15.8),
          b::GammaPrior::from_mean_sd(1e-5, 3.2e-6)};
}

b::PriorPair info_dg() {
  return {b::GammaPrior::from_mean_sd(50.0, 15.8),
          b::GammaPrior::from_mean_sd(3.3e-2, 1.1e-2)};
}

b::Box vb2_guided_box(const c::Vb2Estimator& vb) {
  return b::Box::from_quantiles(vb.posterior().quantile_omega(0.005),
                                vb.posterior().quantile_omega(0.995),
                                vb.posterior().quantile_beta(0.005),
                                vb.posterior().quantile_beta(0.995));
}

class FailureTimeInfoCase : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dt_ = new d::FailureTimeData(d::datasets::system17_failure_times());
    vb2_ = new c::Vb2Estimator(1.0, *dt_, info_dt());
    post_ = new b::LogPosterior(1.0, *dt_, info_dt());
    nint_ = new b::NintEstimator(*post_, vb2_guided_box(*vb2_));
    b::McmcOptions mc;
    mc.seed = 2024;
    chain_ = new b::ChainResult(
        b::gibbs_failure_times(1.0, *dt_, info_dt(), mc));
  }
  static void TearDownTestSuite() {
    delete chain_; delete nint_; delete post_; delete vb2_; delete dt_;
    chain_ = nullptr; nint_ = nullptr; post_ = nullptr; vb2_ = nullptr;
    dt_ = nullptr;
  }

  static d::FailureTimeData* dt_;
  static c::Vb2Estimator* vb2_;
  static b::LogPosterior* post_;
  static b::NintEstimator* nint_;
  static b::ChainResult* chain_;
};

d::FailureTimeData* FailureTimeInfoCase::dt_ = nullptr;
c::Vb2Estimator* FailureTimeInfoCase::vb2_ = nullptr;
b::LogPosterior* FailureTimeInfoCase::post_ = nullptr;
b::NintEstimator* FailureTimeInfoCase::nint_ = nullptr;
b::ChainResult* FailureTimeInfoCase::chain_ = nullptr;

TEST_F(FailureTimeInfoCase, Vb2MomentsWithinTwoPercentOfNint) {
  const auto sn = nint_->summary();
  const auto sv = vb2_->posterior().summary();
  EXPECT_NEAR(sv.mean_omega, sn.mean_omega, 0.02 * sn.mean_omega);
  EXPECT_NEAR(sv.mean_beta, sn.mean_beta, 0.02 * sn.mean_beta);
  EXPECT_NEAR(sv.var_omega, sn.var_omega, 0.05 * sn.var_omega);
  EXPECT_NEAR(sv.var_beta, sn.var_beta, 0.10 * sn.var_beta);
  EXPECT_NEAR(sv.cov, sn.cov, 0.10 * std::abs(sn.cov));
}

TEST_F(FailureTimeInfoCase, McmcMomentsWithinTwoPercentOfNint) {
  const auto sn = nint_->summary();
  const auto sm = chain_->summary();
  EXPECT_NEAR(sm.mean_omega, sn.mean_omega, 0.02 * sn.mean_omega);
  EXPECT_NEAR(sm.mean_beta, sn.mean_beta, 0.02 * sn.mean_beta);
  EXPECT_NEAR(sm.var_omega, sn.var_omega, 0.06 * sn.var_omega);
  EXPECT_NEAR(sm.cov, sn.cov, 0.10 * std::abs(sn.cov));
}

TEST_F(FailureTimeInfoCase, LaplaceMeanIsLeftShifted) {
  const b::LaplaceEstimator lap(*post_);
  const auto sn = nint_->summary();
  EXPECT_LT(lap.summary().mean_omega, sn.mean_omega);
  // But not absurdly so (paper: few percent).
  EXPECT_GT(lap.summary().mean_omega, 0.9 * sn.mean_omega);
}

TEST_F(FailureTimeInfoCase, Vb1VarianceCollapsesVsNint) {
  const c::Vb1Estimator vb1(1.0, *dt_, info_dt());
  const auto s1 = vb1.posterior().summary();
  const auto sn = nint_->summary();
  EXPECT_LT(s1.var_omega, 0.85 * sn.var_omega);
  EXPECT_LT(s1.var_beta, 0.65 * sn.var_beta);
  EXPECT_DOUBLE_EQ(s1.cov, 0.0);
}

TEST_F(FailureTimeInfoCase, NinetyNinePercentIntervalsAgree) {
  const auto no = nint_->interval_omega(0.99);
  const auto vo = vb2_->posterior().interval_omega(0.99);
  const auto mo = chain_->interval_omega(0.99);
  EXPECT_NEAR(vo.lower, no.lower, 0.03 * no.lower);
  EXPECT_NEAR(vo.upper, no.upper, 0.03 * no.upper);
  EXPECT_NEAR(mo.lower, no.lower, 0.03 * no.lower);
  EXPECT_NEAR(mo.upper, no.upper, 0.03 * no.upper);

  const auto nb = nint_->interval_beta(0.99);
  const auto vbq = vb2_->posterior().interval_beta(0.99);
  EXPECT_NEAR(vbq.lower, nb.lower, 0.08 * nb.lower);
  EXPECT_NEAR(vbq.upper, nb.upper, 0.04 * nb.upper);
}

TEST_F(FailureTimeInfoCase, ReliabilityEstimatesAgree) {
  for (double u : {1000.0, 10000.0}) {
    const auto rn = nint_->reliability(u, 0.99);
    const auto rv = vb2_->posterior().reliability(u, 0.99);
    const auto rm = chain_->reliability(u, 0.99);
    EXPECT_NEAR(rv.point, rn.point, 0.01) << "u=" << u;
    EXPECT_NEAR(rm.point, rn.point, 0.01) << "u=" << u;
    EXPECT_NEAR(rv.lower, rn.lower, 0.02) << "u=" << u;
    EXPECT_NEAR(rv.upper, rn.upper, 0.02) << "u=" << u;
    EXPECT_NEAR(rm.lower, rn.lower, 0.02) << "u=" << u;
    EXPECT_NEAR(rm.upper, rn.upper, 0.02) << "u=" << u;
  }
}

TEST(GroupedInfoCase, Vb2TracksMcmcCloselyOnGroupedData) {
  const auto dg = d::datasets::system17_grouped();
  const c::Vb2Estimator vb2(1.0, dg, info_dg());
  b::McmcOptions mc;
  mc.seed = 4096;
  mc.burn_in = 4000;
  mc.thin = 4;
  mc.samples = 10000;
  const auto chain = b::gibbs_grouped(1.0, dg, info_dg(), mc);
  const auto sv = vb2.posterior().summary();
  const auto sm = chain.summary();
  EXPECT_NEAR(sv.mean_omega, sm.mean_omega, 0.03 * sm.mean_omega);
  EXPECT_NEAR(sv.mean_beta, sm.mean_beta, 0.03 * sm.mean_beta);
  EXPECT_NEAR(sv.var_omega, sm.var_omega, 0.12 * sm.var_omega);
  EXPECT_NEAR(sv.cov, sm.cov, 0.15 * std::abs(sm.cov));
}

TEST(GroupedNoInfoCase, EveryMethodReportsInstability) {
  // Paper Sec. 6: with flat priors the grouped data cannot identify
  // omega; the posterior grows a huge right tail.  We assert the
  // *symptom* each method shows, not agreement between them.
  const auto dg = d::datasets::system17_grouped();
  const auto flat = b::PriorPair::flat();

  const c::Vb2Estimator vb2(1.0, dg, flat);
  const auto sv = vb2.posterior().summary();
  const double cv_vb2 = std::sqrt(sv.var_omega) / sv.mean_omega;

  // Compare against the Info case: the NoInfo coefficient of variation
  // must be dramatically larger.
  const c::Vb2Estimator vb2_info(1.0, dg, info_dg());
  const auto si = vb2_info.posterior().summary();
  const double cv_info = std::sqrt(si.var_omega) / si.mean_omega;
  EXPECT_GT(cv_vb2, 2.0 * cv_info);

  // MCMC shows the same long tail (mean far above the Info value).
  b::McmcOptions mc;
  mc.seed = 11;
  mc.burn_in = 4000;
  mc.thin = 4;
  mc.samples = 10000;
  const auto chain = b::gibbs_grouped(1.0, dg, flat, mc);
  EXPECT_GT(chain.summary().var_omega, 10.0 * si.var_omega);
}

TEST(Performance, Vb2IsMuchFasterThanMcmcAtPaperConfigs) {
  const auto dt = d::datasets::system17_failure_times();
  const auto t0 = std::chrono::steady_clock::now();
  const c::Vb2Estimator vb2(1.0, dt, info_dt());
  const auto t1 = std::chrono::steady_clock::now();
  b::McmcOptions mc;  // paper defaults: 630000 variates
  const auto chain = b::gibbs_failure_times(1.0, dt, info_dt(), mc);
  const auto t2 = std::chrono::steady_clock::now();
  const double vb_sec = std::chrono::duration<double>(t1 - t0).count();
  const double mc_sec = std::chrono::duration<double>(t2 - t1).count();
  EXPECT_LT(vb_sec * 5.0, mc_sec)
      << "VB2 " << vb_sec << "s vs MCMC " << mc_sec << "s";
}

}  // namespace
