// End-to-end property sweep: across random data sets (seed x alpha0 x
// censoring), the VB2 posterior must agree with the Gibbs posterior on
// means (a few %) and the 99% reliability interval must not be
// pathologically narrow or inverted.  This is the "no plausible-but-
// wrong posterior sneaks through" harness for the core contribution.
#include <gtest/gtest.h>

#include <cmath>

#include "bayes/gibbs.hpp"
#include "core/vb2.hpp"
#include "data/simulate.hpp"
#include "random/rng.hpp"

namespace b = vbsrm::bayes;
namespace c = vbsrm::core;
namespace d = vbsrm::data;

namespace {

struct SweepCase {
  std::uint64_t seed;
  double alpha0;
  double censor_frac;  // horizon as a fraction of the mean fault life
};

class EndToEndSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EndToEndSweep, Vb2TracksGibbs) {
  const auto [seed, alpha0, censor_frac] = GetParam();
  vbsrm::random::Rng rng(seed);
  const double omega = 90.0;
  const double mean_life = 800.0;          // alpha0 / beta
  const double beta = alpha0 / mean_life;
  const double te = censor_frac * mean_life;
  const auto sim = d::simulate_gamma_nhpp(rng, omega, alpha0, beta, te);
  if (sim.count() < 10) GTEST_SKIP() << "degenerate draw";

  // Weakly informative priors keep the NoInfo impropriety out of the
  // comparison (see EXPERIMENTS.md) while barely constraining the fit.
  const b::PriorPair priors{b::GammaPrior::from_mean_sd(omega, 0.5 * omega),
                            b::GammaPrior::from_mean_sd(beta, 0.5 * beta)};

  const c::Vb2Estimator vb2(alpha0, sim, priors);
  b::McmcOptions mc;
  mc.seed = seed * 7919 + 13;
  mc.burn_in = 3000;
  mc.thin = 2;
  mc.samples = 8000;
  const auto chain = b::gibbs_failure_times(alpha0, sim, priors, mc);

  const auto sv = vb2.posterior().summary();
  const auto sm = chain.summary();
  // Tolerance scales with censoring: under strong censoring most of the
  // process is latent and the structured factorization (T independent
  // of mu *given N*) is at its weakest — deviations of ~5% from MCMC
  // are genuine VB behaviour there, not a bug.
  const double mean_tol = censor_frac < 0.5 ? 0.08 : 0.05;
  EXPECT_NEAR(sv.mean_omega, sm.mean_omega, mean_tol * sm.mean_omega)
      << "seed=" << seed;
  EXPECT_NEAR(sv.mean_beta, sm.mean_beta, mean_tol * sm.mean_beta)
      << "seed=" << seed;
  EXPECT_NEAR(std::sqrt(sv.var_omega), std::sqrt(sm.var_omega),
              0.15 * std::sqrt(sm.var_omega))
      << "seed=" << seed;
  // Correlation sign and rough size must agree.
  const double corr_v = sv.cov / std::sqrt(sv.var_omega * sv.var_beta);
  const double corr_m = sm.cov / std::sqrt(sm.var_omega * sm.var_beta);
  EXPECT_NEAR(corr_v, corr_m, 0.15) << "seed=" << seed;

  // Interval sanity: ordered, and the Gibbs bounds land inside a
  // slightly inflated VB2 interval (and vice versa).
  const auto iv = vb2.posterior().interval_omega(0.99);
  const auto im = chain.interval_omega(0.99);
  EXPECT_LT(iv.lower, iv.upper);
  EXPECT_NEAR(iv.lower, im.lower, 0.12 * im.lower) << "seed=" << seed;
  EXPECT_NEAR(iv.upper, im.upper, 0.12 * im.upper) << "seed=" << seed;

  // Reliability point estimates agree.
  const double u = 0.2 * te;
  const auto rv = vb2.posterior().reliability(u, 0.99);
  const auto rm = chain.reliability(u, 0.99);
  EXPECT_NEAR(rv.point, rm.point, 0.03) << "seed=" << seed;
  EXPECT_LT(rv.lower, rv.upper);
  EXPECT_GE(rv.lower, 0.0);
  EXPECT_LE(rv.upper, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EndToEndSweep,
    ::testing::Values(SweepCase{11, 1.0, 0.6}, SweepCase{12, 1.0, 1.2},
                      SweepCase{13, 1.0, 2.5}, SweepCase{14, 2.0, 0.8},
                      SweepCase{15, 2.0, 1.6}, SweepCase{16, 3.0, 1.0},
                      SweepCase{17, 1.0, 0.35}, SweepCase{18, 2.0, 3.0}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_a" +
             std::to_string(static_cast<int>(info.param.alpha0)) + "_c" +
             std::to_string(static_cast<int>(10 * info.param.censor_frac));
    });

// Grouped-data variant of the same property on a coarser sweep.
class EndToEndGroupedSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EndToEndGroupedSweep, Vb2TracksGibbsOnGroupedData) {
  const std::uint64_t seed = GetParam();
  vbsrm::random::Rng rng(seed);
  const auto sim =
      d::simulate_gamma_nhpp_grouped(rng, 70.0, 1.0, 1.5e-3, 1200.0, 24);
  if (sim.total_failures() < 10) GTEST_SKIP() << "degenerate draw";
  const b::PriorPair priors{b::GammaPrior::from_mean_sd(70.0, 35.0),
                            b::GammaPrior::from_mean_sd(1.5e-3, 7.5e-4)};
  const c::Vb2Estimator vb2(1.0, sim, priors);
  b::McmcOptions mc;
  mc.seed = seed + 101;
  mc.burn_in = 3000;
  mc.thin = 2;
  mc.samples = 6000;
  const auto chain = b::gibbs_grouped(1.0, sim, priors, mc);
  const auto sv = vb2.posterior().summary();
  const auto sm = chain.summary();
  EXPECT_NEAR(sv.mean_omega, sm.mean_omega, 0.06 * sm.mean_omega);
  EXPECT_NEAR(sv.mean_beta, sm.mean_beta, 0.06 * sm.mean_beta);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndGroupedSweep,
                         ::testing::Values(21u, 22u, 23u, 24u));

}  // namespace
