// Root finding, fixed points, and optimizers.
#include <gtest/gtest.h>

#include <cmath>

#include "math/optimize.hpp"
#include "math/roots.hpp"

namespace m = vbsrm::math;

namespace {

TEST(Bisect, FindsSimpleRoot) {
  const auto r = m::bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, ReportsFailureWithoutSignChange) {
  const auto r = m::bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0);
  EXPECT_FALSE(r.converged);
}

TEST(Bisect, ExactRootAtEndpoint) {
  const auto r = m::bisect([](double x) { return x - 1.0; }, 1.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.x, 1.0);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Brent, FasterThanBisectionOnSmooth) {
  int evals_brent = 0;
  auto f = [&](double x) {
    ++evals_brent;
    return std::cos(x) - x;
  };
  const auto r = m::brent(f, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.7390851332151607, 1e-12);
  EXPECT_LT(r.iterations, 15);
}

TEST(Brent, HandlesSteepFunctions) {
  const auto r =
      m::brent([](double x) { return std::exp(30.0 * x) - 1e6; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::log(1e6) / 30.0, 1e-10);
}

TEST(Newton, ConvergesQuadraticallyWithBracket) {
  auto f = [](double x) { return x * x * x - 8.0; };
  auto df = [](double x) { return 3.0 * x * x; };
  const auto r = m::newton(f, df, 1.0, 0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 2.0, 1e-12);
  EXPECT_LT(r.iterations, 12);
}

TEST(Newton, FallsBackToBisectionOnBadDerivative) {
  // f' reported as zero everywhere: Newton must still find the root via
  // the bracket midpoint fallback.
  auto f = [](double x) { return x - 0.3; };
  auto df = [](double) { return 0.0; };
  const auto r = m::newton(f, df, 0.9, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.3, 1e-9);
}

TEST(FixedPoint, ContractionConverges) {
  // x = cos(x) has the Dottie number as fixed point.
  const auto r = m::fixed_point([](double x) { return std::cos(x); }, 0.5);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.7390851332151607, 1e-11);
}

TEST(FixedPoint, DampingStabilizesOscillation) {
  // g(x) = 2.9 - x oscillates undamped around 1.45; damping converges.
  const auto r =
      m::fixed_point([](double x) { return 2.9 - x; }, 0.2, 1e-12, 500, 0.5);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 1.45, 1e-9);
}

TEST(FixedPoint, RejectsBadDamping) {
  EXPECT_THROW(m::fixed_point([](double x) { return x; }, 1.0, 1e-10, 10, 0.0),
               std::invalid_argument);
  EXPECT_THROW(m::fixed_point([](double x) { return x; }, 1.0, 1e-10, 10, 1.5),
               std::invalid_argument);
}

TEST(ExpandBracket, GrowsUntilSignChange) {
  auto f = [](double x) { return x - 100.0; };
  const auto b = m::expand_bracket(f, 0.0, 1.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_LT(f(b->first) * f(b->second), 0.0);
}

TEST(ExpandBracket, GivesUpWhenNoRoot) {
  auto f = [](double x) { return x * x + 1.0; };
  EXPECT_FALSE(m::expand_bracket(f, -1.0, 1.0, 10).has_value());
}

TEST(NelderMead, MinimizesRosenbrock) {
  auto rosen = [](const std::vector<double>& p) {
    const double a = 1.0 - p[0];
    const double b = p[1] - p[0] * p[0];
    return a * a + 100.0 * b * b;
  };
  m::NelderMeadOptions opt;
  opt.max_iter = 20000;
  opt.restarts = 3;
  const auto r = m::nelder_mead(rosen, {-1.2, 1.0}, opt);
  EXPECT_NEAR(r.x[0], 1.0, 1e-5);
  EXPECT_NEAR(r.x[1], 1.0, 1e-5);
  EXPECT_LT(r.f, 1e-9);
}

TEST(NelderMead, QuadraticBowl3D) {
  auto f = [](const std::vector<double>& p) {
    return (p[0] - 1.0) * (p[0] - 1.0) + 2.0 * (p[1] + 2.0) * (p[1] + 2.0) +
           0.5 * (p[2] - 3.0) * (p[2] - 3.0);
  };
  const auto r = m::nelder_mead(f, {0.0, 0.0, 0.0});
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
  EXPECT_NEAR(r.x[1], -2.0, 1e-6);
  EXPECT_NEAR(r.x[2], 3.0, 1e-6);
}

TEST(NelderMead, RejectsEmptyStart) {
  EXPECT_THROW(m::nelder_mead([](const std::vector<double>&) { return 0.0; },
                              {}),
               std::invalid_argument);
}

TEST(GoldenSection, FindsUnimodalMinimum) {
  const auto r = m::golden_section(
      [](double x) { return (x - 0.7) * (x - 0.7) + 3.0; }, -4.0, 5.0);
  EXPECT_NEAR(r.x[0], 0.7, 1e-6);  // golden section is sqrt(eps)-limited
  EXPECT_NEAR(r.f, 3.0, 1e-12);
}

TEST(NumericGradient, MatchesAnalytic) {
  auto f = [](const std::vector<double>& p) {
    return std::sin(p[0]) * std::exp(p[1]);
  };
  const std::vector<double> x{0.6, -0.3};
  const auto g = m::numeric_gradient(f, x);
  EXPECT_NEAR(g[0], std::cos(0.6) * std::exp(-0.3), 1e-7);
  EXPECT_NEAR(g[1], std::sin(0.6) * std::exp(-0.3), 1e-7);
}

TEST(NumericHessian, MatchesAnalyticAndIsSymmetric) {
  auto f = [](const std::vector<double>& p) {
    return p[0] * p[0] * p[1] + 3.0 * p[1] * p[1];
  };
  const std::vector<double> x{2.0, 1.5};
  const auto h = m::numeric_hessian(f, x);
  EXPECT_NEAR(h[0], 2.0 * 1.5, 1e-4);  // d2/dx2 = 2y
  EXPECT_NEAR(h[1], 2.0 * 2.0, 1e-4);  // d2/dxdy = 2x
  EXPECT_NEAR(h[3], 6.0, 1e-4);        // d2/dy2
  EXPECT_DOUBLE_EQ(h[1], h[2]);
}

}  // namespace
