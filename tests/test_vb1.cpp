// VB1 — the fully factorized baseline.  Its defining properties (the
// paper's critique): zero omega-beta covariance by construction, and
// variance underestimation relative to VB2/MCMC.
#include <gtest/gtest.h>

#include <cmath>

#include "core/vb1.hpp"
#include "core/vb2.hpp"
#include "data/datasets.hpp"

namespace c = vbsrm::core;
namespace b = vbsrm::bayes;
namespace d = vbsrm::data;

namespace {

b::PriorPair info_priors_dt() {
  return {b::GammaPrior::from_mean_sd(50.0, 15.8),
          b::GammaPrior::from_mean_sd(1e-5, 3.2e-6)};
}

b::PriorPair info_priors_dg() {
  return {b::GammaPrior::from_mean_sd(50.0, 15.8),
          b::GammaPrior::from_mean_sd(3.3e-2, 1.1e-2)};
}

TEST(Vb1, ConvergesOnBothDataSchemes) {
  const auto dt = d::datasets::system17_failure_times();
  const c::Vb1Estimator vt(1.0, dt, info_priors_dt());
  EXPECT_TRUE(vt.diagnostics().converged);
  const auto dg = d::datasets::system17_grouped();
  const c::Vb1Estimator vg(1.0, dg, info_priors_dg());
  EXPECT_TRUE(vg.diagnostics().converged);
}

TEST(Vb1, CovarianceIsExactlyZeroByConstruction) {
  const auto dt = d::datasets::system17_failure_times();
  const c::Vb1Estimator vb(1.0, dt, info_priors_dt());
  EXPECT_DOUBLE_EQ(vb.posterior().summary().cov, 0.0);
  EXPECT_EQ(vb.posterior().components().size(), 1u);
}

TEST(Vb1, UnderestimatesVarianceRelativeToVb2) {
  // Table 1's headline: VB1's Var(omega) and Var(beta) are well below
  // VB2's on both data sets.
  const auto dt = d::datasets::system17_failure_times();
  const c::Vb1Estimator v1(1.0, dt, info_priors_dt());
  const c::Vb2Estimator v2(1.0, dt, info_priors_dt());
  EXPECT_LT(v1.posterior().summary().var_omega,
            0.8 * v2.posterior().summary().var_omega);
  EXPECT_LT(v1.posterior().summary().var_beta,
            0.8 * v2.posterior().summary().var_beta);

  const auto dg = d::datasets::system17_grouped();
  const c::Vb1Estimator g1(1.0, dg, info_priors_dg());
  const c::Vb2Estimator g2(1.0, dg, info_priors_dg());
  EXPECT_LT(g1.posterior().summary().var_omega,
            0.75 * g2.posterior().summary().var_omega);
}

TEST(Vb1, MeansStayCloseToVb2) {
  // Despite the variance defect, first moments are in the right region
  // (the paper reports low-single-digit percent deviations).
  const auto dt = d::datasets::system17_failure_times();
  const c::Vb1Estimator v1(1.0, dt, info_priors_dt());
  const c::Vb2Estimator v2(1.0, dt, info_priors_dt());
  const auto s1 = v1.posterior().summary();
  const auto s2 = v2.posterior().summary();
  EXPECT_NEAR(s1.mean_omega, s2.mean_omega, 0.06 * s2.mean_omega);
  EXPECT_NEAR(s1.mean_beta, s2.mean_beta, 0.06 * s2.mean_beta);
}

TEST(Vb1, IntervalsNarrowerThanVb2) {
  const auto dt = d::datasets::system17_failure_times();
  const c::Vb1Estimator v1(1.0, dt, info_priors_dt());
  const c::Vb2Estimator v2(1.0, dt, info_priors_dt());
  const auto i1 = v1.posterior().interval_omega(0.99);
  const auto i2 = v2.posterior().interval_omega(0.99);
  EXPECT_LT(i1.upper - i1.lower, i2.upper - i2.lower);
}

TEST(Vb1, ReliabilityIntervalTooNarrow) {
  // Tables 4-5: VB1's reliability intervals are systematically narrower.
  const auto dt = d::datasets::system17_failure_times();
  const c::Vb1Estimator v1(1.0, dt, info_priors_dt());
  const c::Vb2Estimator v2(1.0, dt, info_priors_dt());
  const auto r1 = v1.posterior().reliability(10000.0, 0.99);
  const auto r2 = v2.posterior().reliability(10000.0, 0.99);
  EXPECT_LT(r1.upper - r1.lower, r2.upper - r2.lower);
  EXPECT_NEAR(r1.point, r2.point, 0.05);
}

TEST(Vb1, ConjugateOracleWithoutCensoring) {
  // Same oracle as VB2: with no unobserved mass VB1 is exact too.
  d::FailureTimeData ft({0.5, 1.2, 1.9, 2.6, 3.1, 4.0, 5.2, 6.0}, 400.0);
  const b::PriorPair priors{b::GammaPrior{2.0, 0.1}, b::GammaPrior{3.0, 2.0}};
  const c::Vb1Estimator vb(1.0, ft, priors);
  const auto s = vb.posterior().summary();
  EXPECT_NEAR(s.mean_omega, 10.0 / 1.1, 1e-3);
  EXPECT_NEAR(s.mean_beta, 11.0 / (2.0 + ft.total_time()), 1e-7);
  EXPECT_NEAR(vb.diagnostics().expected_total_faults, 8.0, 1e-3);
}

TEST(Vb1, ExpectedTotalFaultsExceedsObserved) {
  const auto dt = d::datasets::system17_failure_times();
  const c::Vb1Estimator vb(1.0, dt, info_priors_dt());
  EXPECT_GT(vb.diagnostics().expected_total_faults, 38.0);
}

TEST(Vb1, RejectsBadAlpha) {
  const auto dt = d::datasets::system17_failure_times();
  EXPECT_THROW(c::Vb1Estimator(-1.0, dt, b::PriorPair::flat()),
               std::invalid_argument);
}

}  // namespace
