// NINT grid estimator: validated against a conjugate case with an exact
// closed-form posterior, plus internal consistency of quantiles and
// reliability functionals.
//
// The conjugate construction: for the Goel-Okumoto model with *known*
// beta the posterior of omega is exactly Gamma(m_w + m, phi_w + G(te)).
// We cannot freeze beta inside NintEstimator, but we can make the beta
// prior extremely concentrated so the joint posterior factorizes to
// numerical precision — a strong end-to-end oracle for grid moments and
// quantiles.
#include <gtest/gtest.h>

#include <cmath>

#include "bayes/nint.hpp"
#include "data/datasets.hpp"
#include "math/specfun.hpp"

namespace b = vbsrm::bayes;
namespace d = vbsrm::data;
namespace m = vbsrm::math;

namespace {

b::PriorPair info_priors_dt() {
  return {b::GammaPrior::from_mean_sd(50.0, 15.8),
          b::GammaPrior::from_mean_sd(1e-5, 3.2e-6)};
}

TEST(Box, FromQuantilesAppliesPaperRule) {
  const auto box = b::Box::from_quantiles(30.0, 70.0, 6e-6, 1.8e-5);
  EXPECT_DOUBLE_EQ(box.omega_lo, 15.0);
  EXPECT_DOUBLE_EQ(box.omega_hi, 105.0);
  EXPECT_DOUBLE_EQ(box.beta_lo, 3e-6);
  EXPECT_DOUBLE_EQ(box.beta_hi, 2.7e-5);
}

TEST(Nint, RejectsBadBox) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_priors_dt());
  EXPECT_THROW(b::NintEstimator(post, {10.0, 5.0, 1e-6, 1e-5}),
               std::invalid_argument);
}

class NintConjugateOracle : public ::testing::Test {
 protected:
  void SetUp() override {
    dt_.emplace(d::datasets::system17_failure_times());
    // Nearly-degenerate beta prior at beta0: sd 0.01% of the mean.
    const double beta0 = 1.26e-5;
    priors_ = {b::GammaPrior::from_mean_sd(50.0, 15.8),
               b::GammaPrior::from_mean_sd(beta0, beta0 * 1e-4)};
    post_.emplace(1.0, *dt_, priors_);
    const double g_te = post_->exposure(beta0);
    shape_ = priors_.omega.shape + 38.0;
    rate_ = priors_.omega.rate + g_te;
    b::Box box{m::inv_gamma_p(shape_, 1e-8) / rate_,
               m::inv_gamma_p(shape_, 1.0 - 1e-8) / rate_,
               beta0 * (1.0 - 8e-4), beta0 * (1.0 + 8e-4)};
    nint_.emplace(*post_, box, b::NintOptions{64, 8});
  }

  std::optional<d::FailureTimeData> dt_;
  b::PriorPair priors_;
  std::optional<b::LogPosterior> post_;
  std::optional<b::NintEstimator> nint_;
  double shape_ = 0.0, rate_ = 0.0;
};

TEST_F(NintConjugateOracle, MomentsMatchClosedForm) {
  const auto s = nint_->summary();
  EXPECT_NEAR(s.mean_omega, shape_ / rate_, 1e-4 * shape_ / rate_);
  EXPECT_NEAR(s.var_omega, shape_ / (rate_ * rate_),
              1e-3 * shape_ / (rate_ * rate_));
  EXPECT_NEAR(s.mean_beta, 1.26e-5, 1e-8);
}

TEST_F(NintConjugateOracle, QuantilesMatchGammaQuantiles) {
  for (double p : {0.005, 0.025, 0.5, 0.975, 0.995}) {
    const double exact = m::inv_gamma_p(shape_, p) / rate_;
    EXPECT_NEAR(nint_->quantile_omega(p), exact, 2e-3 * exact) << "p=" << p;
  }
}

TEST_F(NintConjugateOracle, ReliabilityPointMatchesClosedForm) {
  // With beta pinned, E[e^{-omega h}] = (rate/(rate+h))^shape.
  const double u = 1000.0;
  const vbsrm::nhpp::GammaFailureLaw law{1.0};
  const double h = law.interval_mass(160000.0, 160000.0 + u, 1.26e-5);
  const double exact = std::pow(rate_ / (rate_ + h), shape_);
  EXPECT_NEAR(nint_->reliability_point(u), exact, 2e-4);
}

TEST_F(NintConjugateOracle, ReliabilityQuantileRoundTrips) {
  const double u = 1000.0;
  const double q = nint_->reliability_quantile(0.25, u);
  EXPECT_NEAR(nint_->reliability_cdf(q, u), 0.25, 5e-3);
  // And against the closed form: R_q solves P(omega >= -ln q / h) = ...
  const vbsrm::nhpp::GammaFailureLaw law{1.0};
  const double h = law.interval_mass(160000.0, 160000.0 + u, 1.26e-5);
  // P(R <= x) = Q(shape, rate * (-ln x)/h) = 0.25
  // => -ln x = h/rate * invQ. invQ at 0.25 == invP at 0.75.
  const double cut = m::inv_gamma_p(shape_, 0.75);
  const double exact = std::exp(-cut / rate_ * h);
  EXPECT_NEAR(q, exact, 2e-3);
}

TEST(Nint, IntervalBracketsAreOrdered) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_priors_dt());
  b::NintEstimator nint(post, {15.0, 110.0, 2e-6, 3e-5});
  const auto io = nint.interval_omega(0.99);
  EXPECT_LT(io.lower, io.upper);
  const auto s = nint.summary();
  EXPECT_GT(s.mean_omega, io.lower);
  EXPECT_LT(s.mean_omega, io.upper);
  const auto ib = nint.interval_beta(0.95);
  EXPECT_LT(ib.lower, s.mean_beta);
  EXPECT_GT(ib.upper, s.mean_beta);
}

TEST(Nint, MarginalsIntegrateToOne) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_priors_dt());
  b::NintEstimator nint(post, {15.0, 110.0, 2e-6, 3e-5});
  // Marginal density values times grid weights must sum to ~1; recover
  // the weights from consecutive midpoint gaps is fragile, so instead
  // check the quantile function is the inverse of the implied cdf.
  const double q25 = nint.quantile_omega(0.25);
  const double q75 = nint.quantile_omega(0.75);
  EXPECT_LT(q25, q75);
  const auto mo = nint.marginal_omega();
  // Density must be nonnegative and unimodal-ish around the mean.
  for (const auto& [x, f] : mo) {
    EXPECT_GE(f, 0.0);
    (void)x;
  }
}

TEST(Nint, JointDensityPeaksNearPosteriorMode) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_priors_dt());
  b::NintEstimator nint(post, {15.0, 110.0, 2e-6, 3e-5});
  const auto s = nint.summary();
  const double at_mean = nint.joint_density(s.mean_omega, s.mean_beta);
  const double far = nint.joint_density(100.0, 2.8e-5);
  EXPECT_GT(at_mean, 50.0 * far);
}

TEST(Nint, ReliabilityCdfMonotoneInX) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_priors_dt());
  b::NintEstimator nint(post, {15.0, 110.0, 2e-6, 3e-5});
  double prev = -1.0;
  for (double x = 0.05; x < 1.0; x += 0.05) {
    const double c = nint.reliability_cdf(x, 10000.0);
    EXPECT_GE(c, prev - 1e-9) << "x=" << x;
    prev = c;
  }
  EXPECT_DOUBLE_EQ(nint.reliability_cdf(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(nint.reliability_cdf(1.0, 1.0), 1.0);
}

}  // namespace
