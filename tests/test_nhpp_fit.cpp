// Likelihoods and point estimation (EM vs direct MLE) on synthetic data
// with known truth and on the bundled datasets.
#include <gtest/gtest.h>

#include <cmath>

#include "data/datasets.hpp"
#include "data/simulate.hpp"
#include "nhpp/fit.hpp"
#include "nhpp/likelihood.hpp"
#include "random/rng.hpp"

namespace n = vbsrm::nhpp;
namespace d = vbsrm::data;

namespace {

TEST(Likelihood, MatchesHandComputedExponentialCase) {
  // Two failures at t=1, 2, te=3, GO(omega=5, beta=0.5):
  // ll = sum log(beta e^{-beta t}) + 2 log omega - omega (1 - e^{-1.5}).
  d::FailureTimeData ft({1.0, 2.0}, 3.0);
  const auto model = n::goel_okumoto(5.0, 0.5);
  const double expected = (std::log(0.5) - 0.5) + (std::log(0.5) - 1.0) +
                          2.0 * std::log(5.0) -
                          5.0 * (1.0 - std::exp(-1.5));
  EXPECT_NEAR(n::log_likelihood(model, ft), expected, 1e-12);
}

TEST(Likelihood, GroupedMatchesHandComputed) {
  // One interval (0, 2] with 3 failures, GO(omega=4, beta=1).
  d::GroupedData g({2.0}, {3});
  const auto model = n::goel_okumoto(4.0, 1.0);
  const double p1 = 1.0 - std::exp(-2.0);
  const double expected = 3.0 * std::log(p1) + 3.0 * std::log(4.0) -
                          std::log(6.0) - 4.0 * p1;
  EXPECT_NEAR(n::log_likelihood(model, g), expected, 1e-12);
}

TEST(Likelihood, GroupingLosesLittleWhenBinsAreFine) {
  // Finely grouped likelihood surface should rank parameters like the
  // exact one: the MLEs should be close.
  const auto dt = d::datasets::system17_failure_times();
  std::vector<double> bounds;
  for (int i = 1; i <= 320; ++i) bounds.push_back(500.0 * i);
  const auto dg = dt.to_grouped(bounds);
  const auto fit_t = n::fit_em(1.0, dt);
  const auto fit_g = n::fit_em(1.0, dg);
  EXPECT_NEAR(fit_g.omega, fit_t.omega, 0.05 * fit_t.omega);
  EXPECT_NEAR(fit_g.beta, fit_t.beta, 0.05 * fit_t.beta);
}

TEST(Likelihood, OffDomainIsMinusInfinity) {
  const auto dt = d::datasets::system17_failure_times();
  EXPECT_TRUE(std::isinf(n::log_likelihood_at(1.0, -1.0, 1e-5, dt)));
  EXPECT_TRUE(std::isinf(n::log_likelihood_at(1.0, 10.0, 0.0, dt)));
}

TEST(InformationCriteria, Formulas) {
  EXPECT_DOUBLE_EQ(n::aic(-100.0), 204.0);
  EXPECT_DOUBLE_EQ(n::bic(-100.0, 38), 2.0 * std::log(38.0) + 200.0);
}

TEST(FitEm, RecoversTruthOnLargeSample) {
  vbsrm::random::Rng rng(12);
  const auto ft = d::simulate_gamma_nhpp(rng, 600.0, 1.0, 2e-3, 3000.0);
  const auto fit = n::fit_em(1.0, ft);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.omega, 600.0, 60.0);
  EXPECT_NEAR(fit.beta, 2e-3, 3e-4);
}

TEST(FitEm, MonotoneLikelihoodAscent) {
  const auto dt = d::datasets::system17_failure_times();
  // Run EM step by step via successively larger iteration budgets and
  // check the likelihood never decreases.
  double prev = -1e300;
  for (int iters : {1, 2, 3, 5, 10, 20, 50}) {
    n::FitOptions opt;
    opt.max_iterations = iters;
    opt.rel_tol = 0.0;  // force exactly `iters` iterations
    opt.compute_covariance = false;
    const auto fit = n::fit_em(1.0, dt, opt);
    EXPECT_GE(fit.log_likelihood, prev - 1e-9) << "iters=" << iters;
    prev = fit.log_likelihood;
  }
}

TEST(FitEm, AgreesWithDirectOptimizer) {
  const auto dt = d::datasets::system17_failure_times();
  const auto em = n::fit_em(1.0, dt);
  const auto direct = n::fit_direct(1.0, dt);
  EXPECT_NEAR(em.omega, direct.omega, 1e-3 * direct.omega);
  EXPECT_NEAR(em.beta, direct.beta, 1e-3 * direct.beta);
  EXPECT_NEAR(em.log_likelihood, direct.log_likelihood, 1e-6);
}

TEST(FitEm, GroupedAgreesWithDirectOptimizer) {
  const auto dg = d::datasets::system17_grouped();
  const auto em = n::fit_em(1.0, dg);
  const auto direct = n::fit_direct(1.0, dg);
  EXPECT_NEAR(em.omega, direct.omega, 2e-3 * direct.omega);
  EXPECT_NEAR(em.beta, direct.beta, 2e-3 * direct.beta);
}

TEST(FitEm, DelayedSShapedOnMatchingData) {
  vbsrm::random::Rng rng(13);
  const auto ft = d::simulate_gamma_nhpp(rng, 400.0, 2.0, 4e-3, 2500.0);
  const auto fit = n::fit_em(2.0, ft);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.omega, 400.0, 60.0);
  EXPECT_NEAR(fit.beta, 4e-3, 8e-4);
}

TEST(FitEm, CovarianceIsPlausible) {
  const auto dt = d::datasets::system17_failure_times();
  const auto fit = n::fit_em(1.0, dt);
  ASSERT_TRUE(fit.covariance.has_value());
  const auto& c = *fit.covariance;
  EXPECT_GT(c(0, 0), 0.0);
  EXPECT_GT(c(1, 1), 0.0);
  // omega and beta are negatively correlated in this family.
  EXPECT_LT(c(0, 1), 0.0);
  // Correlation bounded by 1.
  EXPECT_LT(c(0, 1) * c(0, 1), c(0, 0) * c(1, 1));
}

TEST(FitEm, RejectsEmptyData) {
  d::FailureTimeData empty({}, 10.0);
  EXPECT_THROW(n::fit_em(1.0, empty), std::invalid_argument);
}

TEST(FitEm, ModelSelectionPrefersGeneratingFamily) {
  // Data from a DSS process should get a better AIC under alpha0=2 than
  // alpha0=1, and vice versa.
  vbsrm::random::Rng rng(14);
  const auto dss_data = d::simulate_gamma_nhpp(rng, 500.0, 2.0, 3e-3, 3000.0);
  const double aic_dss = n::aic(n::fit_em(2.0, dss_data).log_likelihood);
  const double aic_go = n::aic(n::fit_em(1.0, dss_data).log_likelihood);
  EXPECT_LT(aic_dss, aic_go);
}

TEST(FitDirect, StartOverrideRespected) {
  const auto dt = d::datasets::system17_failure_times();
  n::FitOptions opt;
  opt.start = {{40.0, 1.2e-5}};
  const auto fit = n::fit_direct(1.0, dt, opt);
  EXPECT_NEAR(fit.omega, 43.6, 1.0);  // same optimum from a good start
}

TEST(DefaultStart, SensibleScales) {
  const auto [omega, beta] = n::default_start(2.0, 38, 160000.0);
  EXPECT_NEAR(omega, 1.3 * 38.0, 1e-9);
  EXPECT_GT(beta, 0.0);
  EXPECT_NEAR(2.0 / beta, 0.6 * 160000.0, 1.0);
}

}  // namespace
