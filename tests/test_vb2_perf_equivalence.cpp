// Equivalence guard for the VB2 / gamma-mixture hot paths: the cached
// fast paths (GroupedMassTable zeta, lgamma ladder recurrences, chunked
// sweep, functional quadrature cache) must reproduce the naive
// reference paths — bit-for-bit where the code path is shared, and to
// quadrature/fixed-point tolerance where the arithmetic is reassociated.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "core/gamma_mixture.hpp"
#include "core/vb2.hpp"
#include "data/datasets.hpp"
#include "data/simulate.hpp"
#include "nhpp/model.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace c = vbsrm::core;
namespace b = vbsrm::bayes;
namespace d = vbsrm::data;
namespace n = vbsrm::nhpp;

namespace {

b::PriorPair info_priors_dt() {
  return {b::GammaPrior::from_mean_sd(50.0, 15.8),
          b::GammaPrior::from_mean_sd(1e-5, 3.2e-6)};
}

b::PriorPair info_priors_dg() {
  return {b::GammaPrior::from_mean_sd(50.0, 15.8),
          b::GammaPrior::from_mean_sd(3.3e-2, 1.1e-2)};
}

c::Vb2Options naive_options() {
  c::Vb2Options o;
  o.threads = 1;
  o.sweep_chunk = 0;
  o.use_zeta_table = false;
  o.use_lgamma_recurrence = false;
  o.use_steffensen = false;
  return o;
}

/// Compare two fits component-by-component (aligned on N) and on the
/// summary moments.  `rel` absorbs fixed-point-tolerance and arithmetic
/// reassociation differences between the paths.
void expect_posteriors_close(const c::GammaMixturePosterior& a,
                             const c::GammaMixturePosterior& bb,
                             double rel) {
  std::map<std::uint64_t, const c::ProductGammaComponent*> by_n;
  for (const auto& comp : bb.components()) by_n[comp.n] = &comp;
  for (const auto& comp : a.components()) {
    if (comp.weight < 1e-12) continue;  // pruning-boundary components
    const auto it = by_n.find(comp.n);
    ASSERT_NE(it, by_n.end()) << "missing component N=" << comp.n;
    EXPECT_NEAR(comp.weight, it->second->weight, rel + rel * comp.weight)
        << "N=" << comp.n;
    EXPECT_NEAR(comp.beta.rate, it->second->beta.rate,
                rel * comp.beta.rate)
        << "N=" << comp.n;
  }
  const auto sa = a.summary();
  const auto sb = bb.summary();
  EXPECT_NEAR(sa.mean_omega, sb.mean_omega, rel * sa.mean_omega);
  EXPECT_NEAR(sa.mean_beta, sb.mean_beta, rel * sa.mean_beta);
  EXPECT_NEAR(sa.var_omega, sb.var_omega, 100 * rel * sa.var_omega);
  EXPECT_NEAR(sa.var_beta, sb.var_beta, 100 * rel * sa.var_beta);
}

}  // namespace

TEST(Vb2PerfEquivalence, FastMatchesNaiveFailureTime) {
  const auto dt = d::datasets::system17_failure_times();
  const c::Vb2Estimator fast(1.0, dt, info_priors_dt());
  const c::Vb2Estimator naive(1.0, dt, info_priors_dt(), naive_options());
  expect_posteriors_close(fast.posterior(), naive.posterior(), 1e-10);
  EXPECT_EQ(fast.diagnostics().n_max_used, naive.diagnostics().n_max_used);
}

TEST(Vb2PerfEquivalence, FastMatchesNaiveGrouped) {
  const auto dg = d::datasets::system17_grouped();
  const c::Vb2Estimator fast(1.0, dg, info_priors_dg());
  const c::Vb2Estimator naive(1.0, dg, info_priors_dg(), naive_options());
  expect_posteriors_close(fast.posterior(), naive.posterior(), 1e-9);
  // Downstream functionals agree too (same cache settings both sides).
  const auto ia = fast.posterior().interval_beta(0.9);
  const auto ib = naive.posterior().interval_beta(0.9);
  EXPECT_NEAR(ia.lower, ib.lower, 1e-9 * ia.lower);
  EXPECT_NEAR(ia.upper, ib.upper, 1e-9 * ia.upper);
}

TEST(Vb2PerfEquivalence, FastMatchesNaiveAlpha0Two) {
  vbsrm::random::Rng rng(19);
  const auto ft = d::simulate_gamma_nhpp(rng, 120.0, 2.0, 2.5e-3, 2000.0);
  const c::Vb2Estimator fast(2.0, ft, b::PriorPair::flat());
  const c::Vb2Estimator naive(2.0, ft, b::PriorPair::flat(),
                              naive_options());
  expect_posteriors_close(fast.posterior(), naive.posterior(), 1e-9);
}

TEST(Vb2PerfEquivalence, FastMatchesNaiveUnderForcedDoubling) {
  const auto dg = d::datasets::system17_grouped();
  c::Vb2Options fast_o, naive_o = naive_options();
  fast_o.n_max = 40;  // n_min = 38: forces the adaptive loop to double
  naive_o.n_max = 40;
  const c::Vb2Estimator fast(1.0, dg, info_priors_dg(), fast_o);
  const c::Vb2Estimator naive(1.0, dg, info_priors_dg(), naive_o);
  EXPECT_GT(fast.diagnostics().n_max_doublings, 0u);
  EXPECT_EQ(fast.diagnostics().n_max_used, naive.diagnostics().n_max_used);
  EXPECT_EQ(fast.diagnostics().n_max_doublings,
            naive.diagnostics().n_max_doublings);
  expect_posteriors_close(fast.posterior(), naive.posterior(), 1e-9);
}

TEST(Vb2PerfEquivalence, ThreadCountIsBitIrrelevant) {
  // Chunk decomposition and warm-start seeding depend only on
  // sweep_chunk, so any thread count must give bit-identical output.
  const auto dg = d::datasets::system17_grouped();
  c::Vb2Options o1, o2, o4;
  o1.threads = 1;
  o2.threads = 2;
  o4.threads = 4;
  const c::Vb2Estimator e1(1.0, dg, info_priors_dg(), o1);
  const c::Vb2Estimator e2(1.0, dg, info_priors_dg(), o2);
  const c::Vb2Estimator e4(1.0, dg, info_priors_dg(), o4);
  const auto& c1 = e1.posterior().components();
  const auto& c2 = e2.posterior().components();
  const auto& c4 = e4.posterior().components();
  ASSERT_EQ(c1.size(), c2.size());
  ASSERT_EQ(c1.size(), c4.size());
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1[i].weight, c2[i].weight);
    EXPECT_EQ(c1[i].beta.rate, c2[i].beta.rate);
    EXPECT_EQ(c1[i].weight, c4[i].weight);
    EXPECT_EQ(c1[i].beta.rate, c4[i].beta.rate);
  }
  EXPECT_EQ(e1.diagnostics().total_fixed_point_iterations,
            e2.diagnostics().total_fixed_point_iterations);
  EXPECT_EQ(e1.diagnostics().total_fixed_point_iterations,
            e4.diagnostics().total_fixed_point_iterations);
}

TEST(Vb2PerfEquivalence, SerialChunkModeEqualsLegacyChain) {
  // sweep_chunk = 0 restores the strictly sequential warm-start chain;
  // with the caches also off this is literally the pre-optimization
  // code path.  Chunked mode only changes warm starts, so converged
  // fixed points agree to solver tolerance.
  const auto dg = d::datasets::system17_grouped();
  c::Vb2Options legacy = naive_options();
  c::Vb2Options chunked = naive_options();
  chunked.sweep_chunk = 16;
  const c::Vb2Estimator a(1.0, dg, info_priors_dg(), legacy);
  const c::Vb2Estimator b2(1.0, dg, info_priors_dg(), chunked);
  expect_posteriors_close(a.posterior(), b2.posterior(), 1e-9);
}

TEST(Vb2PerfEquivalence, LgammaRecurrenceMatchesDirectEvaluation) {
  const auto dg = d::datasets::system17_grouped();
  c::Vb2Options rec, direct;
  direct.use_lgamma_recurrence = false;
  rec.lgamma_resync = 1024;  // exercise long ladders
  const c::Vb2Estimator a(1.0, dg, info_priors_dg(), rec);
  const c::Vb2Estimator b2(1.0, dg, info_priors_dg(), direct);
  expect_posteriors_close(a.posterior(), b2.posterior(), 1e-9);
}

TEST(Vb2PerfEquivalence, SteffensenMatchesPlainSubstitution) {
  // Acceleration changes how fast the xi fixed point is reached, never
  // which xi is accepted: both solvers stop on the same residual bound.
  const auto dg = d::datasets::system17_grouped();
  c::Vb2Options accel = naive_options();
  accel.use_steffensen = true;
  const c::Vb2Estimator a(1.0, dg, info_priors_dg(), accel);
  const c::Vb2Estimator b2(1.0, dg, info_priors_dg(), naive_options());
  expect_posteriors_close(a.posterior(), b2.posterior(), 1e-9);
  EXPECT_LT(a.diagnostics().total_fixed_point_iterations,
            b2.diagnostics().total_fixed_point_iterations / 3);
}

TEST(Vb2PerfEquivalence, GroupedMassTableMatchesFailureLaw) {
  const auto dg = d::datasets::system17_grouped();
  for (const double alpha0 : {1.0, 2.0, 2.7}) {
    const n::GammaFailureLaw law{alpha0};
    n::GroupedMassTable table(alpha0, dg.boundaries());
    for (const double beta : {1e-4, 3.3e-2, 0.5, 5.0}) {
      table.evaluate(beta);
      double prev = 0.0;
      for (std::size_t i = 0; i < table.bins(); ++i) {
        const double s = dg.boundaries()[i];
        const double ref = law.interval_mass(prev, s, beta);
        EXPECT_NEAR(table.interval_mass(i), ref, 1e-12 * ref + 1e-280)
            << "alpha0=" << alpha0 << " beta=" << beta << " bin=" << i;
        if (ref > 1e-280) {
          EXPECT_NEAR(table.truncated_mean(i),
                      law.truncated_mean(prev, s, beta),
                      1e-10 * law.truncated_mean(prev, s, beta));
          EXPECT_NEAR(table.log_interval_mass(i),
                      law.log_interval_mass(prev, s, beta), 1e-10);
        }
        prev = s;
      }
      const double inf = std::numeric_limits<double>::infinity();
      const double tail_ref = law.survival(prev, beta);
      EXPECT_NEAR(table.tail_survival(), tail_ref,
                  1e-12 * tail_ref + 1e-280);
      if (tail_ref > 1e-280) {
        EXPECT_NEAR(table.tail_truncated_mean(),
                    law.truncated_mean(prev, inf, beta),
                    1e-10 * law.truncated_mean(prev, inf, beta));
      }
    }
  }
}

TEST(Vb2PerfEquivalence, FunctionalCacheMatchesNaiveOnTableScenarios) {
  // Reliability point / cdf / quantile with the quadrature cache on must
  // match the uncached evaluation to 1e-10 on the Table 4/5 workloads.
  const auto dt = d::datasets::system17_failure_times();
  const auto dg = d::datasets::system17_grouped();
  const c::Vb2Estimator vt(1.0, dt, info_priors_dt());
  const c::Vb2Estimator vg(1.0, dg, info_priors_dg());
  for (const auto* post : {&vt.posterior(), &vg.posterior()}) {
    c::GammaMixturePosterior cached(post->components(), post->alpha0(),
                                    post->horizon());
    c::GammaMixturePosterior naive(post->components(), post->alpha0(),
                                   post->horizon());
    naive.set_functional_cache(false);
    for (const double u : {0.01 * post->horizon(), 0.1 * post->horizon(),
                           0.5 * post->horizon()}) {
      EXPECT_NEAR(cached.reliability_point(u), naive.reliability_point(u),
                  1e-10);
      for (const double x : {0.2, 0.5, 0.9}) {
        EXPECT_NEAR(cached.reliability_cdf(x, u),
                    naive.reliability_cdf(x, u), 1e-10);
      }
      for (const double p : {0.05, 0.5, 0.95}) {
        EXPECT_NEAR(cached.reliability_quantile(p, u),
                    naive.reliability_quantile(p, u), 1e-10)
            << "p=" << p << " u=" << u;
      }
    }
  }
}

TEST(Vb2PerfEquivalence, BinarySearchSamplePreservesDrawSequence) {
  const auto dg = d::datasets::system17_grouped();
  const c::Vb2Estimator vb(1.0, dg, info_priors_dg());
  const auto& post = vb.posterior();

  // Reference: the pre-optimization linear subtractive scan.
  auto linear_sample = [&](vbsrm::random::Rng& rng) {
    double u = rng.next_double();
    const c::ProductGammaComponent* pick = &post.components().back();
    for (const auto& comp : post.components()) {
      if (u < comp.weight) {
        pick = &comp;
        break;
      }
      u -= comp.weight;
    }
    return std::pair<double, double>{
        vbsrm::random::sample_gamma(rng, pick->omega.shape,
                                    pick->omega.rate),
        vbsrm::random::sample_gamma(rng, pick->beta.shape,
                                    pick->beta.rate)};
  };

  vbsrm::random::Rng r1(12345), r2(12345);
  for (int i = 0; i < 20000; ++i) {
    const auto a = post.sample(r1);
    const auto bb = linear_sample(r2);
    ASSERT_EQ(a.first, bb.first) << "draw " << i;
    ASSERT_EQ(a.second, bb.second) << "draw " << i;
  }
}
