// serve::json: round-trip fidelity, strict rejection of malformed
// input, and the bit-exact number formatting the result cache's
// byte-identity guarantee rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "serve/json.hpp"

namespace json = vbsrm::serve::json;

namespace {

std::uint64_t bits_of(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

TEST(ServeJson, RoundTripComposite) {
  json::Value doc = json::Value::object();
  doc["name"] = "vb2";
  doc["count"] = 42;
  doc["ratio"] = 0.1;
  doc["flag"] = true;
  doc["nothing"] = nullptr;
  json::Value arr = json::Value::array();
  arr.push_back(1.5);
  arr.push_back("two");
  arr.push_back(false);
  doc["items"] = std::move(arr);
  json::Value nested = json::Value::object();
  nested["lower"] = 1e-3;
  nested["upper"] = 1e3;
  doc["interval"] = std::move(nested);

  const std::string compact = json::write(doc);
  const json::Value reparsed = json::parse(compact);
  EXPECT_EQ(json::write(reparsed), compact) << compact;

  // Pretty output parses back to the same document.
  const std::string pretty = json::write(doc, 2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(json::write(json::parse(pretty)), compact);
}

TEST(ServeJson, ObjectsPreserveInsertionOrder) {
  json::Value doc = json::Value::object();
  doc["zebra"] = 1;
  doc["apple"] = 2;
  doc["mango"] = 3;
  EXPECT_EQ(json::write(doc), R"({"zebra":1,"apple":2,"mango":3})");

  // operator[] on an existing key is get, not re-insert.
  doc["apple"] = 7;
  EXPECT_EQ(json::write(doc), R"({"zebra":1,"apple":7,"mango":3})");
  EXPECT_EQ(doc.size(), 3u);

  ASSERT_NE(doc.find("mango"), nullptr);
  EXPECT_EQ(doc.find("mango")->as_number(), 3.0);
  EXPECT_EQ(doc.find("absent"), nullptr);
  EXPECT_TRUE(doc.contains("zebra"));
  EXPECT_FALSE(doc.contains("absent"));
}

TEST(ServeJson, NumberFidelityBitExact) {
  const double cases[] = {
      0.1,
      1.0 / 3.0,
      -0.0,
      1e308,                                   // near overflow
      5e-324,                                  // smallest subnormal
      2.2250738585072014e-308,                 // smallest normal
      std::numeric_limits<double>::max(),
      12345.6789,
      -1.0000000000000002,                     // 1 ulp above -1
      6.02214076e23,
      1e-15,
  };
  for (const double x : cases) {
    const std::string text = json::write_number(x);
    const json::Value v = json::parse(text);
    ASSERT_TRUE(v.is_number()) << text;
    EXPECT_EQ(bits_of(v.as_number()), bits_of(x))
        << "wrote " << text << " for " << x;
    // Writing is a fixed point: same bytes again.
    EXPECT_EQ(json::write_number(v.as_number()), text);
  }
}

TEST(ServeJson, NonFiniteSerializesAsNull) {
  EXPECT_EQ(json::write_number(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(json::write_number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(json::write_number(-std::numeric_limits<double>::infinity()),
            "null");
}

TEST(ServeJson, StringEscapesDecode) {
  const json::Value v =
      json::parse(R"("a\nb\t\"\\\/\u0041\u00e9")");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "a\nb\t\"\\/A\xC3\xA9");
}

TEST(ServeJson, SurrogatePairDecodesToUtf8) {
  const json::Value v = json::parse(R"("\ud83d\ude00")");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "\xF0\x9F\x98\x80");  // U+1F600
}

TEST(ServeJson, WriterEscapesControlCharacters) {
  const json::Value v(std::string("a\nb\x01"));
  EXPECT_EQ(json::write(v), R"("a\nb\u0001")");
  // And the escaped form round-trips.
  EXPECT_EQ(json::parse(json::write(v)).as_string(), v.as_string());
}

TEST(ServeJson, MalformedInputsRejected) {
  const char* bad[] = {
      "",
      "{",
      "[1,]",
      R"({"a":1,})",
      R"({"a" 1})",
      R"({1:2})",
      "01",
      "1.",
      ".5",
      "+1",
      "- 1",
      "1e",
      "nul",
      "tru",
      "falze",
      "nan",
      "Infinity",
      "1e999",           // overflows double
      "\"abc",           // unterminated string
      "\"\\x\"",         // unknown escape
      "\"\t\"",          // raw control character
      "\"\\ud800\"",     // lone high surrogate
      "\"\\u12\"",       // truncated \u
      "1 2",             // trailing garbage
      "{} []",
      "[1] x",
  };
  for (const char* text : bad) {
    EXPECT_THROW(json::parse(text), json::ParseError) << "accepted: " << text;
  }
}

TEST(ServeJson, ParseErrorCarriesOffset) {
  try {
    json::parse("[1, 2, x]");
    FAIL() << "expected ParseError";
  } catch (const json::ParseError& e) {
    EXPECT_EQ(e.offset(), 7u);
  }
}

TEST(ServeJson, DepthCapEnforced) {
  const auto nested = [](int n) {
    return std::string(static_cast<std::size_t>(n), '[') +
           std::string(static_cast<std::size_t>(n), ']');
  };
  EXPECT_NO_THROW(json::parse(nested(10)));
  EXPECT_THROW(json::parse(nested(100)), json::ParseError);
  // Custom cap: the root sits at depth 0, so `max_depth` n admits n+1
  // nested brackets and rejects n+2.
  EXPECT_NO_THROW(json::parse(nested(5), 4));
  EXPECT_THROW(json::parse(nested(6), 4), json::ParseError);
}

TEST(ServeJson, TypeMismatchesThrowLogicError) {
  const json::Value num(1.0);
  EXPECT_THROW(num.as_string(), std::logic_error);
  EXPECT_THROW(num.as_bool(), std::logic_error);
  EXPECT_THROW(num.items(), std::logic_error);
  EXPECT_THROW(num.members(), std::logic_error);

  json::Value str("hi");
  EXPECT_THROW(str.as_number(), std::logic_error);
  EXPECT_THROW(str["key"], std::logic_error);
  EXPECT_THROW(str.push_back(json::Value(1.0)), std::logic_error);
}

TEST(ServeJson, UnderflowKeptOverflowRejected) {
  // Sub-minimal magnitudes collapse toward zero instead of erroring...
  const json::Value tiny = json::parse("1e-400");
  ASSERT_TRUE(tiny.is_number());
  EXPECT_EQ(tiny.as_number(), 0.0);
  // ...but values beyond double range are a hard parse error, because
  // silently clamping to infinity would poison downstream arithmetic.
  EXPECT_THROW(json::parse("1e309"), json::ParseError);
}

}  // namespace
