// The mixture-of-product-gammas posterior object: moments, quantiles,
// densities, sampling, and reliability functionals, validated against
// closed forms for single components and against Monte Carlo for
// multi-component mixtures.
#include <gtest/gtest.h>

#include <cmath>

#include "core/gamma_mixture.hpp"
#include "math/specfun.hpp"
#include "nhpp/model.hpp"
#include "random/rng.hpp"
#include "stats/descriptive.hpp"

namespace c = vbsrm::core;
namespace m = vbsrm::math;

namespace {

c::GammaMixturePosterior one_component() {
  c::ProductGammaComponent comp;
  comp.n = 40;
  comp.weight = 1.0;
  comp.omega = {48.0, 1.2};   // mean 40, var 33.3
  comp.beta = {9.77, 9.77e5}; // mean 1e-5
  return c::GammaMixturePosterior({comp}, 1.0, 160000.0);
}

c::GammaMixturePosterior two_components() {
  c::ProductGammaComponent a, b;
  a.n = 40;
  a.weight = 3.0;  // unnormalized on purpose
  a.omega = {40.0, 1.0};
  a.beta = {10.0, 1e6};
  b.n = 60;
  b.weight = 1.0;
  b.omega = {60.0, 1.0};
  b.beta = {10.0, 0.8e6};
  return c::GammaMixturePosterior({a, b}, 1.0, 160000.0);
}

TEST(GammaParams, MomentsQuantileCdfAgree) {
  const c::GammaParams g{5.0, 2.0};
  EXPECT_DOUBLE_EQ(g.mean(), 2.5);
  EXPECT_DOUBLE_EQ(g.variance(), 1.25);
  const double q = g.quantile(0.3);
  EXPECT_NEAR(g.cdf(q), 0.3, 1e-10);
  // pdf integrates against cdf: numeric derivative check.
  const double h = 1e-6;
  EXPECT_NEAR((g.cdf(q + h) - g.cdf(q - h)) / (2 * h),
              std::exp(g.log_pdf(q)), 1e-5);
}

TEST(Mixture, ValidatesComponents) {
  EXPECT_THROW(c::GammaMixturePosterior({}, 1.0, 1.0), std::invalid_argument);
  c::ProductGammaComponent bad;
  bad.weight = -1.0;
  EXPECT_THROW(c::GammaMixturePosterior({bad}, 1.0, 1.0),
               std::invalid_argument);
  c::ProductGammaComponent zero;
  zero.weight = 0.0;
  zero.omega = {1.0, 1.0};
  zero.beta = {1.0, 1.0};
  EXPECT_THROW(c::GammaMixturePosterior({zero}, 1.0, 1.0),
               std::invalid_argument);
}

TEST(Mixture, NormalizesWeights) {
  const auto mix = two_components();
  EXPECT_NEAR(mix.components()[0].weight, 0.75, 1e-12);
  EXPECT_NEAR(mix.components()[1].weight, 0.25, 1e-12);
  EXPECT_NEAR(mix.prob_total_faults(40), 0.75, 1e-12);
  EXPECT_NEAR(mix.mean_total_faults(), 0.75 * 40 + 0.25 * 60, 1e-9);
}

TEST(Mixture, SingleComponentMomentsAreGammaMoments) {
  const auto mix = one_component();
  const auto s = mix.summary();
  EXPECT_NEAR(s.mean_omega, 40.0, 1e-10);
  EXPECT_NEAR(s.var_omega, 48.0 / 1.44, 1e-9);
  EXPECT_NEAR(s.mean_beta, 1e-5, 1e-15);
  EXPECT_NEAR(s.cov, 0.0, 1e-15);  // independent within one component
}

TEST(Mixture, TwoComponentMomentsByTotalVarianceFormula) {
  const auto mix = two_components();
  const auto s = mix.summary();
  // E[omega] = .75*40 + .25*60 = 45.
  EXPECT_NEAR(s.mean_omega, 45.0, 1e-9);
  // Var = E[Var|N] + Var(E[omega|N]) = (.75*40+.25*60) + (.75*25+.25*225).
  EXPECT_NEAR(s.var_omega, 45.0 + 75.0, 1e-9);
  // Cov from component means: E[mo*mb] - E[mo]E[mb].
  const double mb_a = 10.0 / 1e6, mb_b = 10.0 / 0.8e6;
  const double eb = 0.75 * mb_a + 0.25 * mb_b;
  const double eob = 0.75 * 40.0 * mb_a + 0.25 * 60.0 * mb_b;
  EXPECT_NEAR(s.cov, eob - 45.0 * eb, 1e-15);
  EXPECT_GT(s.cov, 0.0);  // bigger N pairs with bigger beta mean here
}

TEST(Mixture, CdfQuantileRoundTrip) {
  const auto mix = two_components();
  for (double p : {0.005, 0.1, 0.5, 0.9, 0.995}) {
    EXPECT_NEAR(mix.cdf_omega(mix.quantile_omega(p)), p, 1e-9) << p;
    EXPECT_NEAR(mix.cdf_beta(mix.quantile_beta(p)), p, 1e-9) << p;
  }
  EXPECT_THROW(mix.quantile_omega(0.0), std::invalid_argument);
  EXPECT_THROW(mix.quantile_beta(1.0), std::invalid_argument);
}

TEST(Mixture, IntervalsOrdered) {
  const auto mix = two_components();
  const auto io = mix.interval_omega(0.99);
  const auto s = mix.summary();
  EXPECT_LT(io.lower, s.mean_omega);
  EXPECT_GT(io.upper, s.mean_omega);
  const auto i95 = mix.interval_omega(0.95);
  EXPECT_GT(i95.lower, io.lower);
  EXPECT_LT(i95.upper, io.upper);
}

TEST(Mixture, MarginalPdfIntegratesToOne) {
  const auto mix = two_components();
  double mass = 0.0;
  const double dx = 0.05;
  for (double x = dx / 2; x < 150.0; x += dx) {
    mass += mix.marginal_pdf_omega(x) * dx;
  }
  EXPECT_NEAR(mass, 1.0, 1e-6);
}

TEST(Mixture, JointDensityIsProductMixture) {
  const auto mix = one_component();
  const double o = 40.0, be = 1e-5;
  const auto& comp = mix.components()[0];
  EXPECT_NEAR(mix.joint_density(o, be),
              std::exp(comp.omega.log_pdf(o) + comp.beta.log_pdf(be)),
              1e-12);
}

TEST(Mixture, SamplingMatchesMoments) {
  const auto mix = two_components();
  vbsrm::random::Rng rng(77);
  std::vector<double> omega, beta;
  for (int i = 0; i < 200000; ++i) {
    const auto [o, b] = mix.sample(rng);
    omega.push_back(o);
    beta.push_back(b);
  }
  const auto s = mix.summary();
  EXPECT_NEAR(vbsrm::stats::mean(omega), s.mean_omega, 0.1);
  EXPECT_NEAR(vbsrm::stats::variance(omega), s.var_omega, 2.5);
  EXPECT_NEAR(vbsrm::stats::mean(beta), s.mean_beta, 1e-7);
  EXPECT_NEAR(vbsrm::stats::covariance(omega, beta), s.cov, 3e-5);
}

TEST(MixtureReliability, SingleComponentClosedFormInOmega) {
  // With beta essentially degenerate the reliability point estimate is
  // (b_w/(b_w+h))^{a_w} exactly.
  c::ProductGammaComponent comp;
  comp.weight = 1.0;
  comp.omega = {48.0, 1.2};
  comp.beta = {1e8, 1e8 / 1e-5};  // mean 1e-5, sd 1e-9
  c::GammaMixturePosterior mix({comp}, 1.0, 160000.0);
  const double u = 1000.0;
  const vbsrm::nhpp::GammaFailureLaw law{1.0};
  const double h = law.interval_mass(160000.0, 161000.0, 1e-5);
  const double exact = std::pow(1.2 / (1.2 + h), 48.0);
  EXPECT_NEAR(mix.reliability_point(u), exact, 1e-6);
}

TEST(MixtureReliability, AgainstMonteCarlo) {
  const auto mix = two_components();
  vbsrm::random::Rng rng(88);
  const double u = 10000.0;
  const vbsrm::nhpp::GammaFailureLaw law{1.0};
  std::vector<double> r;
  for (int i = 0; i < 200000; ++i) {
    const auto [o, b] = mix.sample(rng);
    r.push_back(std::exp(-o * law.interval_mass(160000.0, 160000.0 + u, b)));
  }
  EXPECT_NEAR(mix.reliability_point(u), vbsrm::stats::mean(r), 2e-3);
  // Cross-check the cdf at a couple of points.
  for (double x : {0.5, 0.8, 0.95}) {
    double mc = 0.0;
    for (double v : r) mc += (v <= x);
    mc /= static_cast<double>(r.size());
    EXPECT_NEAR(mix.reliability_cdf(x, u), mc, 5e-3) << "x=" << x;
  }
}

TEST(MixtureReliability, QuantileRoundTripsAndOrdering) {
  const auto mix = two_components();
  const double u = 10000.0;
  const auto r = mix.reliability(u, 0.99);
  EXPECT_GT(r.lower, 0.0);
  EXPECT_LT(r.upper, 1.0);
  EXPECT_LT(r.lower, r.point);
  EXPECT_GT(r.upper, r.point);
  EXPECT_NEAR(mix.reliability_cdf(r.lower, u), 0.005, 1e-6);
  EXPECT_NEAR(mix.reliability_cdf(r.upper, u), 0.995, 1e-6);
}

TEST(MixtureReliability, CdfBoundaries) {
  const auto mix = one_component();
  EXPECT_DOUBLE_EQ(mix.reliability_cdf(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(mix.reliability_cdf(1.0, 100.0), 1.0);
  EXPECT_THROW(mix.reliability_quantile(0.0, 100.0), std::invalid_argument);
}

}  // namespace
