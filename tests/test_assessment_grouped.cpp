// One-interval-ahead assessment for grouped data.
#include <gtest/gtest.h>

#include <cmath>

#include "data/datasets.hpp"
#include "data/simulate.hpp"
#include "nhpp/assessment.hpp"
#include "random/rng.hpp"
#include "stats/descriptive.hpp"

namespace n = vbsrm::nhpp;
namespace d = vbsrm::data;

namespace {

TEST(GroupedAssessment, WellSpecifiedModelIsRoughlyCalibrated) {
  vbsrm::random::Rng rng(91);
  const auto sim =
      d::simulate_gamma_nhpp_grouped(rng, 150.0, 1.0, 1.8e-3, 2000.0, 40);
  ASSERT_GT(sim.total_failures(), 60u);
  const auto a = n::assess_one_step_ahead(1.0, sim, 6);
  EXPECT_GT(a.predictions, 25u);
  // Mid-p PITs of calibrated forecasts have mean ~ 1/2.
  EXPECT_NEAR(vbsrm::stats::mean(a.mid_p), 0.5, 0.12);
  for (double u : a.mid_p) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  EXPECT_TRUE(std::isfinite(a.prequential_log_likelihood));
}

TEST(GroupedAssessment, RightModelBeatsWrongModelPrequentially) {
  vbsrm::random::Rng rng(92);
  const auto sim =
      d::simulate_gamma_nhpp_grouped(rng, 200.0, 2.0, 3e-3, 2000.0, 40);
  ASSERT_GT(sim.total_failures(), 80u);
  const auto dss = n::assess_one_step_ahead(2.0, sim, 6);
  const auto go = n::assess_one_step_ahead(1.0, sim, 6);
  EXPECT_GT(dss.prequential_log_likelihood, go.prequential_log_likelihood);
}

TEST(GroupedAssessment, System17GroupedScoresDssAboveGo) {
  // The grouped stand-in is DSS-generated; honest one-step prediction
  // must prefer alpha0 = 2.
  const auto dg = d::datasets::system17_grouped();
  const auto dss = n::assess_one_step_ahead(2.0, dg, 10);
  const auto go = n::assess_one_step_ahead(1.0, dg, 10);
  EXPECT_GT(dss.prequential_log_likelihood, go.prequential_log_likelihood);
}

TEST(GroupedAssessment, ValidatesWarmup) {
  const auto dg = d::datasets::system17_grouped();
  EXPECT_THROW(n::assess_one_step_ahead(1.0, dg, 1), std::invalid_argument);
  EXPECT_THROW(n::assess_one_step_ahead(1.0, dg, 64), std::invalid_argument);
}

TEST(GroupedAssessment, SkipsIntervalsBeforeEnoughSignal) {
  // A data set whose first intervals are empty: predictions only start
  // once >= 2 failures have been seen, with no crash.
  d::GroupedData sparse({1, 2, 3, 4, 5, 6, 7, 8}, {0, 0, 0, 1, 2, 1, 3, 2});
  const auto a = n::assess_one_step_ahead(1.0, sparse, 2);
  EXPECT_LT(a.predictions, 6u);
  EXPECT_GT(a.predictions, 0u);
}

}  // namespace
