// Empirical-Bayes prior estimation, infinite-failures contrast models,
// and mixture-posterior serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "bayes/empirical.hpp"
#include "core/vb2.hpp"
#include "data/datasets.hpp"
#include "data/simulate.hpp"
#include "nhpp/fit.hpp"
#include "nhpp/infinite.hpp"
#include "nhpp/likelihood.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace b = vbsrm::bayes;
namespace c = vbsrm::core;
namespace d = vbsrm::data;
namespace ninf = vbsrm::nhpp::infinite;

namespace {

std::vector<d::FailureTimeData> historical_projects(std::uint64_t seed,
                                                    int n_projects) {
  // Projects drawn around a common hyperprior: omega ~ N(100, 20),
  // beta ~ around 1.5e-3.
  std::vector<d::FailureTimeData> out;
  vbsrm::random::Rng master(seed);
  for (int k = 0; k < n_projects; ++k) {
    vbsrm::random::Rng rng = master.split(static_cast<std::uint64_t>(k));
    const double omega = 100.0 + 20.0 * (rng.next_double() - 0.5) * 2.0;
    const double beta = 1.5e-3 * (0.8 + 0.4 * rng.next_double());
    out.push_back(d::simulate_gamma_nhpp(rng, omega, 1.0, beta, 2200.0));
  }
  return out;
}

TEST(EmpiricalBayes, RequiresTwoProjects) {
  const auto one = historical_projects(5, 1);
  EXPECT_THROW(b::empirical_bayes_priors(1.0, one), std::invalid_argument);
}

TEST(EmpiricalBayes, RecoversHyperpriorRegion) {
  const auto projects = historical_projects(7, 5);
  const auto eb = b::empirical_bayes_priors(1.0, projects);
  EXPECT_TRUE(eb.converged);
  // The fitted prior means must be near the generating hyperprior
  // centers (omega ~ 100, beta ~ 1.5e-3 within generous bands).
  EXPECT_NEAR(eb.priors.omega.mean(), 100.0, 30.0);
  EXPECT_NEAR(eb.priors.beta.mean(), 1.5e-3, 7e-4);
  // The optimized evidence beats a deliberately poor prior's.
  const b::PriorPair bad{b::GammaPrior::from_mean_sd(15.0, 3.0),
                         b::GammaPrior::from_mean_sd(1e-4, 2e-5)};
  EXPECT_GT(eb.log_marginal,
            b::total_log_marginal(1.0, projects, bad) + 10.0);
}

TEST(EmpiricalBayes, FittedPriorsImproveNextProjectIntervals) {
  // Using the empirical-Bayes priors on a *new* project from the same
  // population should shrink the interval relative to flat priors while
  // keeping the (known) truth covered.
  // Type-II ML with a handful of projects is known to understate the
  // hyper-variance, so test with a population-typical new project (the
  // hyperprior center), not an edge case.
  const auto projects = historical_projects(11, 6);
  const auto eb = b::empirical_bayes_priors(1.0, projects);
  vbsrm::random::Rng rng(999);
  const double omega_new = 100.0, beta_new = 1.5e-3;
  const auto fresh = d::simulate_gamma_nhpp(rng, omega_new, 1.0, beta_new,
                                            900.0);  // early, little data
  const c::Vb2Estimator with_eb(1.0, fresh, eb.priors);
  const c::Vb2Estimator with_flat(1.0, fresh, b::PriorPair::flat());
  const auto io_eb = with_eb.posterior().interval_omega(0.95);
  const auto io_flat = with_flat.posterior().interval_omega(0.95);
  EXPECT_LT(io_eb.upper - io_eb.lower, io_flat.upper - io_flat.lower);
  EXPECT_GE(omega_new, io_eb.lower);
  EXPECT_LE(omega_new, io_eb.upper);
}

TEST(MusaOkumoto, MeanValueAndIntensityConsistent) {
  const ninf::MusaOkumotoModel mo{2.0, 0.05};
  EXPECT_DOUBLE_EQ(mo.mean_value(0.0), 0.0);
  // d/dt Lambda = intensity.
  for (double t : {0.5, 3.0, 20.0}) {
    const double h = 1e-6 * (t + 1.0);
    const double num = (mo.mean_value(t + h) - mo.mean_value(t - h)) / (2 * h);
    EXPECT_NEAR(num, mo.intensity(t), 1e-7) << t;
  }
  // Unbounded mean value (infinite failures category).
  EXPECT_GT(mo.mean_value(1e9), mo.mean_value(1e6) + 1.0);
}

TEST(PowerLaw, ClosedFormMleMatchesLikelihoodMaximum) {
  vbsrm::random::Rng rng(61);
  // Simulate a power-law NHPP by inverse transform of Lambda: event
  // count ~ Poisson(Lambda(te)); times t = te * U^{1/b} i.i.d.
  const double a = 0.8, bb = 0.6, te = 1000.0;
  const auto n = vbsrm::random::sample_poisson(rng, a * std::pow(te, bb));
  std::vector<double> times;
  for (std::uint64_t i = 0; i < n; ++i) {
    times.push_back(te * std::pow(rng.next_open(), 1.0 / bb));
  }
  std::sort(times.begin(), times.end());
  d::FailureTimeData sim(std::move(times), te);

  const auto fit = ninf::fit_power_law(sim);
  EXPECT_NEAR(fit.model.b, bb, 0.15);
  // MLE beats nearby parameter points.
  for (double db : {-0.05, 0.05}) {
    ninf::PowerLawModel nearby{fit.model.a, fit.model.b + db};
    EXPECT_GE(fit.log_likelihood, ninf::log_likelihood(nearby, sim));
  }
}

TEST(MusaOkumoto, FitBeatsNaiveStartAndMatchesCategory) {
  // Data from a Musa-Okumoto process (simulate via thinning).
  vbsrm::random::Rng rng(62);
  const ninf::MusaOkumotoModel truth{0.4, 0.08};
  const auto sim = d::simulate_by_thinning(
      rng, [&](double t) { return truth.intensity(t); }, truth.intensity(0.0),
      2000.0);
  ASSERT_GT(sim.count(), 20u);
  const auto fit = ninf::fit_musa_okumoto(sim);
  EXPECT_TRUE(fit.converged);
  EXPECT_GE(fit.log_likelihood, ninf::log_likelihood(truth, sim) - 1e-6);
  // Category contrast: on log-growth data, Musa-Okumoto should beat the
  // finite GO model in AIC terms.
  const auto go = vbsrm::nhpp::fit_em(1.0, sim);
  EXPECT_LT(fit.aic, vbsrm::nhpp::aic(go.log_likelihood) + 2.0);
}

TEST(InfiniteModels, ReliabilityDecaysButNeverSaturates) {
  const ninf::PowerLawModel pl{0.5, 0.7};
  const double t = 500.0;
  EXPECT_LT(pl.reliability(t, 100.0), 1.0);
  EXPECT_GT(pl.reliability(t, 100.0), pl.reliability(t, 1000.0));
  EXPECT_THROW(pl.reliability(t, -1.0), std::invalid_argument);
  // Unlike finite models, R(t, u) -> 0 as u -> inf.
  EXPECT_LT(pl.reliability(t, 1e8), 1e-6);
}

TEST(InfiniteModels, FitValidation) {
  d::FailureTimeData one({5.0}, 10.0);
  EXPECT_THROW(ninf::fit_power_law(one), std::invalid_argument);
  EXPECT_THROW(ninf::fit_musa_okumoto(one), std::invalid_argument);
}

TEST(Serialization, MixtureRoundTripsThroughCsv) {
  const auto dt = d::datasets::system17_failure_times();
  const b::PriorPair priors{b::GammaPrior::from_mean_sd(50.0, 15.8),
                            b::GammaPrior::from_mean_sd(1e-5, 3.2e-6)};
  const c::Vb2Estimator vb2(1.0, dt, priors);
  const auto& post = vb2.posterior();

  std::istringstream in(post.to_csv());
  const auto back = c::GammaMixturePosterior::from_csv(in);

  EXPECT_EQ(back.components().size(), post.components().size());
  EXPECT_DOUBLE_EQ(back.alpha0(), post.alpha0());
  EXPECT_DOUBLE_EQ(back.horizon(), post.horizon());
  const auto s0 = post.summary();
  const auto s1 = back.summary();
  // The constructor renormalizes the reparsed weights, whose printed
  // sum is 1 only to accumulation ulps; var_beta = E[b^2] - E[b]^2
  // cancels heavily, so allow those ulps amplified by the cancellation.
  EXPECT_NEAR(s1.mean_omega, s0.mean_omega, 1e-13 * s0.mean_omega);
  EXPECT_NEAR(s1.var_beta, s0.var_beta, 1e-11 * s0.var_beta);
  EXPECT_NEAR(back.reliability_point(1000.0), post.reliability_point(1000.0),
              1e-14);
}

TEST(Serialization, RejectsMalformedCsv) {
  std::istringstream bad("1.0,100\n40,0.5,1.0\n");
  EXPECT_THROW(c::GammaMixturePosterior::from_csv(bad),
               std::invalid_argument);
  std::istringstream empty("");
  EXPECT_THROW(c::GammaMixturePosterior::from_csv(empty),
               std::invalid_argument);
}

}  // namespace
