// Sequential predictive assessment (u-plot / prequential likelihood),
// multi-chain R-hat, and the Laplace model evidence.
#include <gtest/gtest.h>

#include <cmath>

#include "bayes/laplace.hpp"
#include "bayes/multichain.hpp"
#include "data/datasets.hpp"
#include "data/simulate.hpp"
#include "nhpp/assessment.hpp"
#include "random/rng.hpp"

namespace n = vbsrm::nhpp;
namespace b = vbsrm::bayes;
namespace d = vbsrm::data;

namespace {

TEST(Assessment, WellSpecifiedModelIsCalibrated) {
  // Data from a GO process, assessed with the GO model: the u_i must be
  // consistent with U(0,1).
  vbsrm::random::Rng rng(55);
  const auto sim = d::simulate_gamma_nhpp(rng, 120.0, 1.0, 1.5e-3, 2500.0);
  ASSERT_GT(sim.count(), 60u);
  const auto a = n::assess_one_step_ahead(1.0, sim, 10);
  EXPECT_EQ(a.predictions, sim.count() - 10);
  EXPECT_GT(a.u_plot_pvalue, 0.01);
  for (double u : a.u) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Assessment, MisspecifiedModelScoresWorse) {
  // DSS data: the DSS model must beat GO on prequential likelihood.
  vbsrm::random::Rng rng(56);
  const auto sim = d::simulate_gamma_nhpp(rng, 150.0, 2.0, 2.5e-3, 2500.0);
  ASSERT_GT(sim.count(), 60u);
  const auto ranking = n::prequential_ranking({1.0, 2.0}, sim, 10);
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking.front().first, 2.0);
  EXPECT_GT(ranking.front().second, ranking.back().second);
}

TEST(Assessment, ValidatesArguments) {
  const auto dt = d::datasets::system17_failure_times();
  EXPECT_THROW(n::assess_one_step_ahead(1.0, dt, 1), std::invalid_argument);
  EXPECT_THROW(n::assess_one_step_ahead(1.0, dt, 38), std::invalid_argument);
}

TEST(Assessment, System17StandInIsCentredButUnderDispersed) {
  // The D_T stand-in is generated from expected order statistics with
  // small jitter, i.e. *more regular* than a genuine Poisson
  // realization.  One-step-ahead predictions are therefore unbiased
  // (mean u ~ 1/2: no systematic optimism/pessimism) but the u's are
  // under-dispersed, which the u-plot correctly flags — a nice
  // demonstration that the diagnostic detects super-regularity too.
  const auto dt = d::datasets::system17_failure_times();
  const auto a = n::assess_one_step_ahead(1.0, dt, 8);
  double mean_u = 0.0;
  for (double u : a.u) mean_u += u;
  mean_u /= static_cast<double>(a.u.size());
  EXPECT_GT(mean_u, 0.38);
  EXPECT_LT(mean_u, 0.72);
  EXPECT_LT(a.u_plot_pvalue, 0.05);  // regularity detected
  EXPECT_TRUE(std::isfinite(a.prequential_log_likelihood));
}

TEST(MultiChain, RhatNearOneForWellMixedChains) {
  const auto dt = d::datasets::system17_failure_times();
  const b::PriorPair priors{b::GammaPrior::from_mean_sd(50.0, 15.8),
                            b::GammaPrior::from_mean_sd(1e-5, 3.2e-6)};
  b::McmcOptions opt;
  opt.burn_in = 2000;
  opt.thin = 2;
  opt.samples = 4000;
  opt.seed = 2;
  const auto mc = b::gibbs_failure_times_chains(4, 1.0, dt, priors, opt);
  EXPECT_EQ(mc.chains.size(), 4u);
  EXPECT_LT(mc.rhat_omega, 1.01);
  EXPECT_LT(mc.rhat_beta, 1.01);
  EXPECT_TRUE(mc.converged());
  EXPECT_EQ(mc.pooled.size(), 16000u);
  // Chains genuinely differ (independent seeds).
  EXPECT_NE(mc.chains[0].omega()[0], mc.chains[1].omega()[0]);
}

TEST(MultiChain, RhatDetectsDisagreeingChains) {
  // Two hand-built "chains" around different levels: R-hat must flag it.
  std::vector<std::vector<double>> chains(2, std::vector<double>(500));
  vbsrm::random::Rng rng(9);
  for (int c = 0; c < 2; ++c) {
    for (auto& v : chains[static_cast<std::size_t>(c)]) {
      v = (c == 0 ? 0.0 : 5.0) + rng.next_double();
    }
  }
  EXPECT_GT(b::cross_chain_rhat(chains), 2.0);
}

TEST(MultiChain, ValidatesInput) {
  EXPECT_THROW(b::cross_chain_rhat({{1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(b::cross_chain_rhat({{1.0, 2.0}, {1.0}}),
               std::invalid_argument);
  const auto dt = d::datasets::system17_failure_times();
  EXPECT_THROW(
      b::gibbs_failure_times_chains(1, 1.0, dt, b::PriorPair::flat()),
      std::invalid_argument);
}

TEST(LaplaceEvidence, NormalizesAConjugateCase) {
  // Nearly-Gaussian posterior (tight priors): the Laplace evidence must
  // be close to a brute-force 2-D integral of the posterior.
  const auto dt = d::datasets::system17_failure_times();
  const b::PriorPair tight{b::GammaPrior::from_mean_sd(50.0, 2.0),
                           b::GammaPrior::from_mean_sd(1e-5, 4e-7)};
  b::LogPosterior post(1.0, dt, tight);
  b::LaplaceEstimator lap(post);

  // Brute force on a +-6 sd box.
  const double so = std::sqrt(lap.covariance()(0, 0));
  const double sb = std::sqrt(lap.covariance()(1, 1));
  double z = 0.0;
  const int grid = 220;
  const double olo = lap.map_omega() - 6 * so, ohi = lap.map_omega() + 6 * so;
  const double blo = lap.map_beta() - 6 * sb, bhi = lap.map_beta() + 6 * sb;
  const double dw = (ohi - olo) / grid, db = (bhi - blo) / grid;
  for (int i = 0; i < grid; ++i) {
    for (int j = 0; j < grid; ++j) {
      z += std::exp(post(olo + (i + 0.5) * dw, blo + (j + 0.5) * db) -
                    post(lap.map_omega(), lap.map_beta()));
    }
  }
  const double log_z = std::log(z * dw * db) +
                       post(lap.map_omega(), lap.map_beta());
  EXPECT_NEAR(lap.log_marginal_likelihood(), log_z, 0.02);
}

TEST(LaplaceEvidence, BayesFactorPrefersGeneratingModel) {
  // GO-generated data: evidence(GO) > evidence(DSS) under equal priors.
  vbsrm::random::Rng rng(58);
  const auto sim = d::simulate_gamma_nhpp(rng, 150.0, 1.0, 1.2e-3, 2500.0);
  const b::PriorPair priors{b::GammaPrior::from_mean_sd(150.0, 75.0),
                            b::GammaPrior::from_mean_sd(1.5e-3, 1.5e-3)};
  b::LogPosterior post_go(1.0, sim, priors);
  b::LogPosterior post_dss(2.0, sim, priors);
  const double ev_go = b::LaplaceEstimator(post_go).log_marginal_likelihood();
  const double ev_dss =
      b::LaplaceEstimator(post_dss).log_marginal_likelihood();
  EXPECT_GT(ev_go, ev_dss);
}

}  // namespace
