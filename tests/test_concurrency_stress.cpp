// ThreadSanitizer-targeted stress tests for every concurrent subsystem:
// math::parallel_for's contended error path, BatchRunner cancellation
// mid-grid, the serve worker pool's backpressure / deadline / drain
// paths, sharded cache hit/miss races, and the multi-chain MCMC
// thread-count invariance.  The assertions are deliberately structural
// (every response is one of the statuses the state machine can produce,
// every cache hit returns the bytes that were put) — the real check is
// TSan observing the interleavings race-free.  Sized to stay fast under
// TSan's ~10x slowdown.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bayes/multichain.hpp"
#include "bayes/prior.hpp"
#include "data/failure_data.hpp"
#include "engine/batch.hpp"
#include "engine/registry.hpp"
#include "math/parallel.hpp"
#include "serve/cache.hpp"
#include "serve/service.hpp"

using namespace vbsrm;

namespace {

// --- a cheap registered method with a tunable fit duration ---------------

std::atomic<int> g_fit_ms{0};

class StressEstimator : public engine::Estimator {
 public:
  std::string_view method() const override { return "stress"; }
  bayes::PosteriorSummary summarize() const override {
    bayes::PosteriorSummary s;
    s.mean_omega = 30.0;
    s.mean_beta = 0.02;
    s.var_omega = 4.0;
    s.var_beta = 1e-4;
    s.cov = 0.01;
    return s;
  }
  bayes::CredibleInterval interval_omega(double level) const override {
    return {20.0, 40.0, level};
  }
  bayes::CredibleInterval interval_beta(double level) const override {
    return {0.01, 0.03, level};
  }
  bayes::ReliabilityEstimate reliability(double, double level) const override {
    return {0.9, 0.8, 0.95, level};
  }
};

void ensure_stress_registered() {
  static const bool once = [] {
    engine::register_method("stress", [](const engine::EstimatorRequest&) {
      const int ms = g_fit_ms.load();
      if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      return std::make_unique<StressEstimator>();
    });
    return true;
  }();
  (void)once;
}

engine::EstimatorRequest tiny_request() {
  return engine::EstimatorRequest(
      1.0, data::FailureTimeData({5.0, 12.0, 25.0, 40.0, 60.0}, 100.0),
      bayes::PriorPair::flat());
}

serve::Request estimate_request(double deadline_ms = 0.0) {
  return serve::Request{
      "POST", "/v1/estimate",
      "{\"method\":\"stress\","
      "\"data\":{\"type\":\"failure_times\",\"times\":[5,12,25,40,60],"
      "\"observation_end\":100},\"level\":0.99}",
      deadline_ms};
}

}  // namespace

// --- math::parallel_for ----------------------------------------------------

TEST(ParallelForStress, ContendedErrorCaptureRethrowsFirstException) {
  for (int round = 0; round < 8; ++round) {
    std::atomic<int> executed{0};
    EXPECT_THROW(
        math::parallel_for(256, 8,
                           [&](std::size_t i) {
                             ++executed;
                             if (i % 7 == 0) {
                               throw std::runtime_error("task failure");
                             }
                           }),
        std::runtime_error);
    EXPECT_EQ(executed.load(), 256);  // an error never stops the sweep
  }
}

TEST(ParallelForStress, NestedParallelSweeps) {
  std::vector<int> out(64, 0);
  math::parallel_for(8, 4, [&](std::size_t outer) {
    math::parallel_for(8, 2, [&](std::size_t inner) {
      out[outer * 8 + inner] = static_cast<int>(outer * 8 + inner);
    });
  });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], i);
}

// --- BatchRunner cancellation ---------------------------------------------

TEST(BatchRunnerStress, CancelMidGridLeavesOnlyOkOrCanceledCells) {
  ensure_stress_registered();
  g_fit_ms.store(2);
  engine::BatchSpec spec;
  spec.methods = {"stress"};
  for (int i = 0; i < 64; ++i) spec.requests.push_back(tiny_request());
  spec.levels = {0.99};

  std::atomic<bool> cancel{false};
  std::thread trigger([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    cancel.store(true);
  });
  const std::vector<engine::EstimationReport> reports =
      engine::BatchRunner(8).run(spec, &cancel);
  trigger.join();
  g_fit_ms.store(0);

  ASSERT_EQ(reports.size(), 64u);
  std::size_t canceled = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].method, "stress");
    EXPECT_EQ(reports[i].request_index, i);  // slot order is fixed
    if (reports[i].ok) {
      EXPECT_EQ(reports[i].summary.mean_omega, 30.0);
    } else {
      EXPECT_EQ(reports[i].error, "canceled");
      ++canceled;
    }
  }
  // 64 cells x 2 ms across 8 workers runs ~16 ms; the 10 ms trigger
  // lands mid-grid, so completed and canceled cells both exist.
  EXPECT_GT(canceled, 0u);
  EXPECT_LT(canceled, reports.size());
}

TEST(BatchRunnerStress, ConcurrentIndependentGrids) {
  ensure_stress_registered();
  g_fit_ms.store(0);
  engine::BatchSpec spec;
  spec.methods = {"stress"};
  for (int i = 0; i < 8; ++i) spec.requests.push_back(tiny_request());
  std::vector<std::thread> drivers;
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&spec] {
      const auto reports = engine::BatchRunner(4).run(spec);
      ASSERT_EQ(reports.size(), 8u);
      for (const auto& r : reports) EXPECT_TRUE(r.ok) << r.error;
    });
  }
  for (std::thread& t : drivers) t.join();
}

// --- serve::ResultCache ----------------------------------------------------

TEST(CacheStress, RacingHitsMissesAndEvictionsStayConsistent) {
  serve::ResultCache cache(32, 4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 400; ++i) {
        const std::string key = "key-" + std::to_string((t * 31 + i) % 50);
        if (i % 3 == 0) {
          cache.put(key, key + ":value");
        } else if (std::optional<std::string> hit = cache.get(key)) {
          // A hit must carry exactly the bytes some put stored for this
          // key — never a torn value, never another key's bytes.
          EXPECT_EQ(*hit, key + ":value");
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), 32u);
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

// --- serve::Service --------------------------------------------------------

TEST(ServiceStress, QueueFullAnswers503UnderContention) {
  ensure_stress_registered();
  g_fit_ms.store(30);
  serve::ServiceOptions opt;
  opt.workers = 2;
  opt.queue_capacity = 1;
  opt.cache_capacity = 0;  // every request must take the queue path
  serve::Service service(opt);

  constexpr int kClients = 12;
  std::vector<int> status(kClients, 0);
  // vector<char>, not vector<bool>: bit-packed elements share bytes and
  // concurrent writes to neighbours would be a real data race.
  std::vector<char> has_retry_after(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, &status, &has_retry_after, c] {
      const serve::Response r = service.handle(estimate_request());
      status[c] = r.status;
      for (const auto& [name, value] : r.headers) {
        if (name == "Retry-After") has_retry_after[c] = value.empty() ? 0 : 1;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  g_fit_ms.store(0);

  int ok = 0, rejected = 0;
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(status[c] == 200 || status[c] == 503) << status[c];
    if (status[c] == 200) ++ok;
    if (status[c] == 503) {
      ++rejected;
      EXPECT_TRUE(has_retry_after[c]);
    }
  }
  // 12 simultaneous clients against 2 workers + 1 queue slot: some are
  // served, some shed.  (>= 3 can be served as workers free up.)
  EXPECT_GE(ok, 1);
  EXPECT_GE(rejected, 1);

  const serve::MetricsSnapshot m = service.metrics_snapshot();
  EXPECT_EQ(m.requests_total, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(m.queue_full_503, static_cast<std::uint64_t>(rejected));
}

TEST(ServiceStress, DeadlineExpiryUnderContentionThenRecovers) {
  ensure_stress_registered();
  g_fit_ms.store(50);
  serve::ServiceOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 8;
  opt.cache_capacity = 0;
  serve::Service service(opt);

  std::vector<int> status(4, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&service, &status, c] {
      status[c] = service.handle(estimate_request(/*deadline_ms=*/5.0)).status;
    });
  }
  for (std::thread& t : clients) t.join();

  int expired = 0;
  for (const int s : status) {
    ASSERT_TRUE(s == 200 || s == 504) << s;
    if (s == 504) ++expired;
  }
  EXPECT_GE(expired, 1);  // a 5 ms budget cannot cover 50 ms fits queued 4 deep

  // Abandoned jobs must not wedge the pool: a fresh request with the
  // default (30 s) deadline is served normally.
  g_fit_ms.store(0);
  EXPECT_EQ(service.handle(estimate_request()).status, 200);
}

TEST(ServiceStress, ConcurrentShutdownWhileClientsPost) {
  ensure_stress_registered();
  for (int round = 0; round < 4; ++round) {
    g_fit_ms.store(3);
    serve::ServiceOptions opt;
    opt.workers = 2;
    opt.queue_capacity = 16;
    opt.cache_capacity = 0;
    auto service = std::make_unique<serve::Service>(opt);

    std::vector<std::thread> clients;
    for (int c = 0; c < 6; ++c) {
      clients.emplace_back([&service] {
        for (int i = 0; i < 3; ++i) {
          const int s = service->handle(estimate_request()).status;
          // In-flight and queued jobs complete (200); requests arriving
          // after the drain began are shed (503).
          ASSERT_TRUE(s == 200 || s == 503) << s;
        }
      });
    }
    // Two racing shutdown calls model the destructor racing a
    // signal-initiated drain; the join must happen exactly once.
    std::thread stopper1([&service] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      service->shutdown();
    });
    std::thread stopper2([&service] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      service->shutdown();
    });
    for (std::thread& t : clients) t.join();
    stopper1.join();
    stopper2.join();
    service->shutdown();  // idempotent after the fact
    service.reset();      // destructor shutdown is a no-op
    g_fit_ms.store(0);
  }
}

TEST(ServiceStress, MetricsSnapshotsRaceRequestTraffic) {
  ensure_stress_registered();
  g_fit_ms.store(1);
  serve::ServiceOptions opt;
  opt.workers = 2;
  opt.cache_capacity = 0;
  serve::Service service(opt);

  std::atomic<bool> done{false};
  std::thread observer([&] {
    while (!done.load()) {
      const serve::MetricsSnapshot m = service.metrics_snapshot();
      EXPECT_LE(m.responses_2xx + m.responses_4xx + m.responses_5xx,
                m.requests_total);
      (void)service.queue_depth();
    }
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&service] {
      for (int i = 0; i < 8; ++i) {
        (void)service.handle(estimate_request());
        (void)service.handle(serve::Request{"GET", "/metrics", "", 0.0});
      }
    });
  }
  for (std::thread& t : clients) t.join();
  done.store(true);
  observer.join();
  g_fit_ms.store(0);

  const serve::MetricsSnapshot m = service.metrics_snapshot();
  EXPECT_EQ(m.requests_total, 4u * 8u * 2u);
}

// --- multi-chain MCMC ------------------------------------------------------

TEST(MultichainStress, PooledDrawsAreThreadCountInvariant) {
  const data::FailureTimeData d({5.0, 12.0, 25.0, 40.0, 60.0}, 100.0);
  const bayes::PriorPair priors = bayes::PriorPair::flat();
  bayes::McmcOptions opt;
  opt.burn_in = 50;
  opt.thin = 1;
  opt.samples = 200;
  opt.seed = 0xFEEDull;

  const bayes::MultiChainResult serial =
      bayes::gibbs_failure_times_chains(4, 1.0, d, priors, opt, /*threads=*/1);
  const bayes::MultiChainResult parallel =
      bayes::gibbs_failure_times_chains(4, 1.0, d, priors, opt, /*threads=*/4);

  ASSERT_EQ(serial.pooled.size(), parallel.pooled.size());
  EXPECT_EQ(serial.pooled.omega(), parallel.pooled.omega());
  EXPECT_EQ(serial.pooled.beta(), parallel.pooled.beta());
  EXPECT_EQ(serial.rhat_omega, parallel.rhat_omega);
  EXPECT_EQ(serial.rhat_beta, parallel.rhat_beta);
  EXPECT_EQ(serial.pooled.variates_generated(),
            parallel.pooled.variates_generated());
}
