// Profile-posterior intervals and the Monte-Carlo coverage harness.
#include <gtest/gtest.h>

#include <cmath>

#include "bayes/laplace.hpp"
#include "math/specfun.hpp"
#include "bayes/nint.hpp"
#include "bayes/profile.hpp"
#include "core/coverage.hpp"
#include "core/vb2.hpp"
#include "data/datasets.hpp"

namespace b = vbsrm::bayes;
namespace c = vbsrm::core;
namespace d = vbsrm::data;

namespace {

b::PriorPair info_dt() {
  return {b::GammaPrior::from_mean_sd(50.0, 15.8),
          b::GammaPrior::from_mean_sd(1e-5, 3.2e-6)};
}

TEST(Profile, ModeMatchesLaplaceMap) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_dt());
  const b::ProfileIntervalEstimator prof(post);
  const b::LaplaceEstimator lap(post);
  EXPECT_NEAR(prof.mode_omega(), lap.map_omega(), 1e-3 * lap.map_omega());
  EXPECT_NEAR(prof.mode_beta(), lap.map_beta(), 1e-3 * lap.map_beta());
}

TEST(Profile, ProfileIsZeroAtModeAndNegativeElsewhere) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_dt());
  const b::ProfileIntervalEstimator prof(post);
  EXPECT_NEAR(prof.profile_omega(prof.mode_omega()), 0.0, 1e-6);
  EXPECT_LT(prof.profile_omega(0.7 * prof.mode_omega()), -0.05);
  EXPECT_LT(prof.profile_omega(1.4 * prof.mode_omega()), -0.05);
  EXPECT_NEAR(prof.profile_beta(prof.mode_beta()), 0.0, 1e-6);
  EXPECT_LT(prof.profile_beta(0.6 * prof.mode_beta()), -0.05);
}

TEST(Profile, EndpointsSitOnTheThreshold) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_dt());
  const b::ProfileIntervalEstimator prof(post);
  const double level = 0.95;
  const auto io = prof.interval_omega(level);
  const double z = vbsrm::math::normal_quantile(0.5 + 0.5 * level);
  EXPECT_NEAR(prof.profile_omega(io.lower), -0.5 * z * z, 1e-5);
  EXPECT_NEAR(prof.profile_omega(io.upper), -0.5 * z * z, 1e-5);
  EXPECT_LT(io.lower, prof.mode_omega());
  EXPECT_GT(io.upper, prof.mode_omega());
}

TEST(Profile, CapturesSkewUnlikeLaplace) {
  // The posterior of omega is right-skewed: the profile interval's
  // upper arm must be longer than its lower arm, and both endpoints
  // should sit closer to NINT's than LAPL's do.
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_dt());
  const b::ProfileIntervalEstimator prof(post);
  const b::LaplaceEstimator lap(post);
  const c::Vb2Estimator vb2(1.0, dt, info_dt());
  const b::NintEstimator nint(
      post, b::Box::from_quantiles(vb2.posterior().quantile_omega(0.005),
                                   vb2.posterior().quantile_omega(0.995),
                                   vb2.posterior().quantile_beta(0.005),
                                   vb2.posterior().quantile_beta(0.995)));

  const double level = 0.99;
  const auto ip = prof.interval_omega(level);
  const auto il = lap.interval_omega(level);
  const auto in = nint.interval_omega(level);

  // Asymmetry around the mode.
  EXPECT_GT(ip.upper - prof.mode_omega(), prof.mode_omega() - ip.lower);
  // Strictly better than LAPL on both endpoints w.r.t. NINT.
  EXPECT_LT(std::abs(ip.upper - in.upper), std::abs(il.upper - in.upper));
  EXPECT_LT(std::abs(ip.lower - in.lower), std::abs(il.lower - in.lower));
}

TEST(Profile, ValidatesLevel) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_dt());
  const b::ProfileIntervalEstimator prof(post);
  EXPECT_THROW(prof.interval_omega(0.0), std::invalid_argument);
  EXPECT_THROW(prof.interval_beta(1.0), std::invalid_argument);
}

TEST(Coverage, StudyRunsAndRanksMethodsSanely) {
  c::CoverageConfig cfg;
  cfg.alpha0 = 1.0;
  cfg.omega = 90.0;
  cfg.beta = 1.25e-3;
  cfg.horizon = 1600.0;
  cfg.level = 0.9;
  cfg.replications = 60;  // small but decisive for the ordering checks
  cfg.seed = 99;
  cfg.priors = {b::GammaPrior::from_mean_sd(90.0, 45.0),
                b::GammaPrior::from_mean_sd(1.25e-3, 6e-4)};
  const auto results = c::run_coverage_study(cfg);
  ASSERT_EQ(results.size(), 4u);

  const auto& vb2 = results[0];
  const auto& vb1 = results[1];
  ASSERT_EQ(vb2.method, "VB2");
  ASSERT_EQ(vb1.method, "VB1");
  EXPECT_EQ(vb2.trials, 60);

  // VB2 coverage within 4 binomial sd of nominal.
  const double se = c::coverage_standard_error(cfg.level, vb2.trials);
  EXPECT_NEAR(vb2.rate_omega(), cfg.level, 4.0 * se);
  EXPECT_NEAR(vb2.rate_beta(), cfg.level, 4.0 * se);

  // VB1's intervals are narrower and cover no better.
  EXPECT_LT(vb1.mean_width_omega, vb2.mean_width_omega);
  EXPECT_LE(vb1.covered_omega, vb2.covered_omega + 3);
}

TEST(Coverage, StandardErrorFormula) {
  EXPECT_NEAR(c::coverage_standard_error(0.5, 100), 0.05, 1e-12);
  EXPECT_EQ(c::coverage_standard_error(0.9, 0), 1.0);
}

TEST(Coverage, RejectsBadConfig) {
  c::CoverageConfig cfg;
  cfg.replications = 0;
  EXPECT_THROW(c::run_coverage_study(cfg), std::invalid_argument);
}

}  // namespace
