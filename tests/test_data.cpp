// Failure-data containers, CSV round trips, simulation, and the bundled
// datasets.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "data/datasets.hpp"
#include "data/failure_data.hpp"
#include "data/simulate.hpp"
#include "random/rng.hpp"
#include "stats/descriptive.hpp"

namespace d = vbsrm::data;
namespace r = vbsrm::random;

namespace {

TEST(FailureTimeData, SortsAndValidates) {
  d::FailureTimeData ft({3.0, 1.0, 2.0}, 10.0);
  EXPECT_EQ(ft.count(), 3u);
  EXPECT_DOUBLE_EQ(ft.times()[0], 1.0);
  EXPECT_DOUBLE_EQ(ft.times()[2], 3.0);
  EXPECT_DOUBLE_EQ(ft.total_time(), 6.0);
  EXPECT_NEAR(ft.total_log_time(), std::log(6.0), 1e-12);  // ln1+ln2+ln3
}

TEST(FailureTimeData, RejectsBadInputs) {
  EXPECT_THROW(d::FailureTimeData({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(d::FailureTimeData({-1.0}, 10.0), std::invalid_argument);
  EXPECT_THROW(d::FailureTimeData({0.0}, 10.0), std::invalid_argument);
  EXPECT_THROW(d::FailureTimeData({11.0}, 10.0), std::invalid_argument);
}

TEST(FailureTimeData, EmptyIsAllowed) {
  d::FailureTimeData ft({}, 5.0);
  EXPECT_EQ(ft.count(), 0u);
  EXPECT_DOUBLE_EQ(ft.total_time(), 0.0);
}

TEST(FailureTimeData, CsvRoundTrip) {
  d::FailureTimeData ft({1.5, 2.5, 9.0}, 10.0);
  std::istringstream in(ft.to_csv());
  const auto back = d::FailureTimeData::from_csv(in, 10.0);
  EXPECT_EQ(back.times(), ft.times());
}

TEST(FailureTimeData, CsvSkipsCommentsAndBlanks) {
  std::istringstream in("# header\n1.0\n\n2.0 # trailing comment\n");
  const auto ft = d::FailureTimeData::from_csv(in, 10.0);
  EXPECT_EQ(ft.count(), 2u);
}

TEST(FailureTimeData, ToGroupedCountsCorrectly) {
  d::FailureTimeData ft({0.5, 1.0, 1.5, 2.5, 3.0}, 3.0);
  const auto g = ft.to_grouped({1.0, 2.0, 3.0});
  ASSERT_EQ(g.intervals(), 3u);
  EXPECT_EQ(g.counts()[0], 2u);  // (0,1]: 0.5, 1.0
  EXPECT_EQ(g.counts()[1], 1u);  // (1,2]: 1.5
  EXPECT_EQ(g.counts()[2], 2u);  // (2,3]: 2.5, 3.0
  EXPECT_EQ(g.total_failures(), 5u);
}

TEST(GroupedData, ValidatesBoundaries) {
  EXPECT_THROW(d::GroupedData({2.0, 1.0}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(d::GroupedData({1.0, 1.0}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(d::GroupedData({}, {}), std::invalid_argument);
  EXPECT_THROW(d::GroupedData({1.0}, {1, 2}), std::invalid_argument);
}

TEST(GroupedData, EdgesAndCumulative) {
  d::GroupedData g({1.0, 2.5, 4.0}, {3, 0, 2});
  EXPECT_DOUBLE_EQ(g.left_edge(0), 0.0);
  EXPECT_DOUBLE_EQ(g.right_edge(0), 1.0);
  EXPECT_DOUBLE_EQ(g.left_edge(2), 2.5);
  EXPECT_DOUBLE_EQ(g.observation_end(), 4.0);
  const auto cum = g.cumulative();
  EXPECT_EQ(cum.back(), 5u);
  EXPECT_EQ(cum[1], 3u);
}

TEST(GroupedData, CsvRoundTrip) {
  d::GroupedData g({1.0, 2.0, 3.0}, {4, 0, 7});
  std::istringstream in(g.to_csv());
  const auto back = d::GroupedData::from_csv(in);
  EXPECT_EQ(back.counts(), g.counts());
  EXPECT_EQ(back.boundaries(), g.boundaries());
}

TEST(Simulate, GammaNhppRespectsHorizonAndScale) {
  r::Rng rng(5);
  const auto ft = d::simulate_gamma_nhpp(rng, 100.0, 1.0, 1e-3, 5000.0);
  for (double t : ft.times()) {
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, 5000.0);
  }
  // Expected failures: 100 * (1 - e^{-5}) ~ 99.3; allow wide band.
  EXPECT_GT(ft.count(), 60u);
  EXPECT_LT(ft.count(), 140u);
}

TEST(Simulate, CountsArePoissonAcrossReplications) {
  // Mean and variance of M(te) should both be ~ Lambda(te).
  std::vector<double> counts;
  const double omega = 50.0, beta = 1e-3, te = 2000.0;
  const double lambda = omega * (1.0 - std::exp(-beta * te));
  for (std::uint64_t s = 0; s < 400; ++s) {
    r::Rng rng(1000 + s);
    counts.push_back(static_cast<double>(
        d::simulate_gamma_nhpp(rng, omega, 1.0, beta, te).count()));
  }
  EXPECT_NEAR(vbsrm::stats::mean(counts), lambda, 0.15 * lambda);
  EXPECT_NEAR(vbsrm::stats::variance(counts), lambda, 0.35 * lambda);
}

TEST(Simulate, GroupedSumsMatchFullSimulation) {
  r::Rng rng(6);
  const auto g = d::simulate_gamma_nhpp_grouped(rng, 80.0, 2.0, 2e-3, 4000.0,
                                                16);
  EXPECT_EQ(g.intervals(), 16u);
  EXPECT_DOUBLE_EQ(g.observation_end(), 4000.0);
}

TEST(Simulate, ThinningMatchesMeanValue) {
  // Constant intensity 0.02 on (0, 1000]: expect ~20 events.
  std::vector<double> counts;
  for (std::uint64_t s = 0; s < 300; ++s) {
    r::Rng rng(50 + s);
    counts.push_back(static_cast<double>(
        d::simulate_by_thinning(rng, [](double) { return 0.02; }, 0.02,
                                1000.0)
            .count()));
  }
  EXPECT_NEAR(vbsrm::stats::mean(counts), 20.0, 1.5);
}

TEST(Simulate, ThinningRejectsUnderstatedBound) {
  r::Rng rng(9);
  EXPECT_THROW(d::simulate_by_thinning(rng, [](double) { return 2.0; }, 1.0,
                                       100.0),
               std::invalid_argument);
}

TEST(Simulate, ExpectedOrderStatisticsHitTargets) {
  auto mv = [](double t) { return 10.0 * (1.0 - std::exp(-0.01 * t)); };
  const auto times = d::expected_order_statistics(mv, 1000.0, 9);
  ASSERT_EQ(times.size(), 9u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(mv(times[i]), static_cast<double>(i) + 0.5, 1e-9);
  }
}

TEST(Simulate, ExpectedOrderStatisticsRejectsOverdraw) {
  auto mv = [](double t) { return 0.001 * t; };  // Lambda(te)=1 at te=1000
  EXPECT_THROW(d::expected_order_statistics(mv, 1000.0, 5),
               std::invalid_argument);
}

TEST(Datasets, System17FailureTimesShape) {
  const auto dt = d::datasets::system17_failure_times();
  EXPECT_EQ(dt.count(), 38u);
  EXPECT_DOUBLE_EQ(dt.observation_end(), 160000.0);
  // Strictly increasing.
  for (std::size_t i = 1; i < dt.count(); ++i) {
    EXPECT_LT(dt.times()[i - 1], dt.times()[i]);
  }
  // Deterministic across calls.
  const auto again = d::datasets::system17_failure_times();
  EXPECT_EQ(dt.times(), again.times());
}

TEST(Datasets, System17GroupedShape) {
  const auto dg = d::datasets::system17_grouped();
  EXPECT_EQ(dg.intervals(), 64u);
  EXPECT_EQ(dg.total_failures(), 38u);
  EXPECT_DOUBLE_EQ(dg.observation_end(), 64.0);
  // Hump-shaped (delayed S generator): the first day sees fewer failures
  // than the peak region.
  std::size_t peak = 0;
  for (auto c : dg.counts()) peak = std::max(peak, c);
  EXPECT_GE(peak, 1u);
  EXPECT_LE(dg.counts()[0], peak);
}

TEST(Datasets, NtdsMatchesPublishedTotals) {
  const auto ntds = d::datasets::ntds_failure_times();
  EXPECT_EQ(ntds.count(), 26u);
  EXPECT_DOUBLE_EQ(ntds.times().back(), 250.0);  // published total: day 250
  EXPECT_DOUBLE_EQ(ntds.times().front(), 9.0);
}

TEST(Datasets, SyntheticReleaseTestSeeded) {
  const auto a = d::datasets::synthetic_release_test(7);
  const auto b = d::datasets::synthetic_release_test(7);
  const auto c = d::datasets::synthetic_release_test(8);
  EXPECT_EQ(a.times(), b.times());
  EXPECT_NE(a.times(), c.times());
  EXPECT_GT(a.count(), 50u);
}

}  // namespace
