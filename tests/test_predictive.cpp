// Posterior-predictive distributions: internal consistency (pmf sums
// to 1, P(K=0) equals the reliability point estimate), agreement with
// Monte Carlo, and the residual-fault distribution.
#include <gtest/gtest.h>

#include <cmath>

#include "core/predictive.hpp"
#include "core/vb2.hpp"
#include "data/datasets.hpp"
#include "nhpp/model.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace c = vbsrm::core;
namespace b = vbsrm::bayes;
namespace d = vbsrm::data;

namespace {

const c::Vb2Estimator& fitted_vb2() {
  static const c::Vb2Estimator vb2(
      1.0, d::datasets::system17_failure_times(),
      b::PriorPair{b::GammaPrior::from_mean_sd(50.0, 15.8),
                   b::GammaPrior::from_mean_sd(1e-5, 3.2e-6)});
  return vb2;
}

TEST(Predictive, PmfIsADistribution) {
  const c::PredictiveDistribution pred(fitted_vb2().posterior(), 10000.0);
  double total = 0.0;
  for (std::uint64_t k = 0; k <= 60; ++k) {
    const double p = pred.pmf(k);
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_NEAR(pred.cdf(60), 1.0, 1e-6);
}

TEST(Predictive, ProbZeroEqualsReliabilityPoint) {
  const double u = 1000.0;
  const c::PredictiveDistribution pred(fitted_vb2().posterior(), u);
  EXPECT_NEAR(pred.prob_zero(),
              fitted_vb2().posterior().reliability_point(u), 1e-8);
}

TEST(Predictive, MeanMatchesPmfSum) {
  const c::PredictiveDistribution pred(fitted_vb2().posterior(), 10000.0);
  double mean_from_pmf = 0.0;
  for (std::uint64_t k = 1; k <= 80; ++k) {
    mean_from_pmf += static_cast<double>(k) * pred.pmf(k);
  }
  EXPECT_NEAR(pred.mean(), mean_from_pmf, 1e-5);
}

TEST(Predictive, VarianceExceedsPoissonMean) {
  // Posterior mixing always adds dispersion: Var(K) > E[K].
  const c::PredictiveDistribution pred(fitted_vb2().posterior(), 10000.0);
  EXPECT_GT(pred.variance(), pred.mean());
}

TEST(Predictive, MatchesMonteCarlo) {
  const double u = 10000.0;
  const auto& post = fitted_vb2().posterior();
  const c::PredictiveDistribution pred(post, u);
  vbsrm::random::Rng rng(314);
  const vbsrm::nhpp::GammaFailureLaw law{1.0};
  const double te = post.horizon();
  std::vector<double> counts;
  for (int i = 0; i < 200000; ++i) {
    const auto [omega, beta] = post.sample(rng);
    const double h = law.interval_mass(te, te + u, beta);
    counts.push_back(static_cast<double>(
        vbsrm::random::sample_poisson(rng, omega * h)));
  }
  double mc_mean = 0.0;
  for (double v : counts) mc_mean += v;
  mc_mean /= static_cast<double>(counts.size());
  EXPECT_NEAR(pred.mean(), mc_mean, 0.03);
  // pmf at a few points.
  for (std::uint64_t k : {0ull, 1ull, 3ull, 6ull}) {
    double mc_p = 0.0;
    for (double v : counts) mc_p += (v == static_cast<double>(k));
    mc_p /= static_cast<double>(counts.size());
    EXPECT_NEAR(pred.pmf(k), mc_p, 5e-3) << "k=" << k;
  }
}

TEST(Predictive, QuantileIsGeneralizedInverse) {
  const c::PredictiveDistribution pred(fitted_vb2().posterior(), 10000.0);
  for (double p : {0.05, 0.5, 0.95}) {
    const auto q = pred.quantile(p);
    EXPECT_GE(pred.cdf(q), p);
    if (q > 0) {
      EXPECT_LT(pred.cdf(q - 1), p);
    }
  }
}

TEST(Predictive, IntervalCoversMassAndIsOrdered) {
  const c::PredictiveDistribution pred(fitted_vb2().posterior(), 10000.0);
  const auto [lo, hi] = pred.interval(0.95);
  EXPECT_LE(lo, hi);
  const double mass = pred.cdf(hi) - (lo > 0 ? pred.cdf(lo - 1) : 0.0);
  EXPECT_GE(mass, 0.95 - 1e-9);
}

TEST(Predictive, RejectsBadWindow) {
  EXPECT_THROW(c::PredictiveDistribution(fitted_vb2().posterior(), 0.0),
               std::invalid_argument);
  const c::PredictiveDistribution pred(fitted_vb2().posterior(), 1.0);
  EXPECT_THROW(pred.quantile(0.0), std::invalid_argument);
}

TEST(ResidualFaults, PmfMatchesMixtureWeights) {
  const auto& post = fitted_vb2().posterior();
  const auto res = c::ResidualFaultDistribution::from_posterior(post);
  EXPECT_EQ(res.observed, 38u);
  double total = 0.0;
  for (double p : res.pmf) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(res.mean(), post.mean_total_faults() - 38.0, 1e-9);
  EXPECT_NEAR(res.pmf[2], post.prob_total_faults(40), 1e-15);
}

TEST(ResidualFaults, QuantileAndTailProbabilities) {
  const auto res = c::ResidualFaultDistribution::from_posterior(
      fitted_vb2().posterior());
  const auto median = res.quantile(0.5);
  EXPECT_GE(res.prob_at_most(median), 0.5);
  EXPECT_GT(res.prob_at_most(100), 0.999);
  EXPECT_LE(res.prob_at_most(0), res.prob_at_most(1));
  EXPECT_THROW(res.quantile(1.0), std::invalid_argument);
}

}  // namespace
