// MCMC: Gibbs samplers (both data schemes), the MH fallback, and chain
// summaries.  Correctness oracles: a conjugate case with known posterior
// and cross-agreement between independent samplers.
#include <gtest/gtest.h>

#include <cmath>

#include "bayes/gibbs.hpp"
#include "bayes/metropolis.hpp"
#include "data/datasets.hpp"
#include "data/simulate.hpp"
#include "random/rng.hpp"
#include "math/specfun.hpp"

namespace b = vbsrm::bayes;
namespace d = vbsrm::data;

namespace {

b::PriorPair info_priors_dt() {
  return {b::GammaPrior::from_mean_sd(50.0, 15.8),
          b::GammaPrior::from_mean_sd(1e-5, 3.2e-6)};
}

b::PriorPair info_priors_dg() {
  return {b::GammaPrior::from_mean_sd(50.0, 15.8),
          b::GammaPrior::from_mean_sd(3.3e-2, 1.1e-2)};
}

b::McmcOptions fast_opts(std::uint64_t seed = 99) {
  b::McmcOptions o;
  o.burn_in = 2000;
  o.thin = 2;
  o.samples = 8000;
  o.seed = seed;
  return o;
}

TEST(ChainResult, ValidatesInput) {
  EXPECT_THROW(b::ChainResult({}, {}, 1.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(b::ChainResult({1.0}, {1.0, 2.0}, 1.0, 10.0, 0),
               std::invalid_argument);
}

TEST(ChainResult, SummaryAndIntervalFromKnownSamples) {
  std::vector<double> omega, beta;
  for (int i = 1; i <= 1000; ++i) {
    omega.push_back(static_cast<double>(i));
    beta.push_back(1000.0 - i);
  }
  b::ChainResult c(std::move(omega), std::move(beta), 1.0, 1.0, 3000);
  EXPECT_NEAR(c.summary().mean_omega, 500.5, 1e-9);
  EXPECT_LT(c.summary().cov, 0.0);
  const auto io = c.interval_omega(0.98);
  EXPECT_DOUBLE_EQ(io.lower, 10.0);   // ceil(0.01*1000) = 10th smallest
  EXPECT_DOUBLE_EQ(io.upper, 990.0);  // ceil(0.99*1000) = 990th
  EXPECT_EQ(c.variates_generated(), 3000u);
}

TEST(GibbsFailureTimes, DeterministicGivenSeed) {
  const auto dt = d::datasets::system17_failure_times();
  const auto a = b::gibbs_failure_times(1.0, dt, info_priors_dt(),
                                        fast_opts(7));
  const auto c = b::gibbs_failure_times(1.0, dt, info_priors_dt(),
                                        fast_opts(7));
  EXPECT_EQ(a.omega(), c.omega());
  const auto diff = b::gibbs_failure_times(1.0, dt, info_priors_dt(),
                                           fast_opts(8));
  EXPECT_NE(a.omega(), diff.omega());
}

TEST(GibbsFailureTimes, ConjugateOracleWithoutCensoring) {
  // Horizon pushed far beyond all failure mass: the residual count is
  // ~always 0, so omega | data ~ Gamma(m_w + m, phi_w + 1) *exactly*
  // and beta | data ~ Gamma(m_b + m, phi_b + sum t) exactly.
  d::FailureTimeData ft({0.5, 1.2, 1.9, 2.6, 3.1, 4.0, 5.2, 6.0}, 500.0);
  const b::PriorPair priors{b::GammaPrior{2.0, 0.1}, b::GammaPrior{3.0, 2.0}};
  auto opts = fast_opts(21);
  opts.samples = 20000;
  const auto chain = b::gibbs_failure_times(1.0, ft, priors, opts);
  const double m = 8.0, sum_t = ft.total_time();
  const auto s = chain.summary();
  EXPECT_NEAR(s.mean_omega, (2.0 + m) / (0.1 + 1.0), 0.15);
  EXPECT_NEAR(s.var_omega, (2.0 + m) / (1.1 * 1.1), 0.4);
  EXPECT_NEAR(s.mean_beta, (3.0 + m) / (2.0 + sum_t), 0.01);
  // omega and beta are exactly independent here.
  EXPECT_NEAR(s.cov, 0.0, 0.01);
}

TEST(GibbsFailureTimes, VariateAccountingMatchesPaperFormula) {
  // GO + failure data: 3 variates per iteration; the paper's Table 6
  // count for burn-in 10000 + 10*20000 is 630000.
  const auto dt = d::datasets::system17_failure_times();
  b::McmcOptions opt;  // paper defaults
  opt.seed = 3;
  const auto chain = b::gibbs_failure_times(1.0, dt, info_priors_dt(), opt);
  EXPECT_EQ(chain.variates_generated(), 630000u);
  EXPECT_EQ(chain.size(), 20000u);
}

TEST(GibbsFailureTimes, MixesWell) {
  const auto dt = d::datasets::system17_failure_times();
  const auto chain =
      b::gibbs_failure_times(1.0, dt, info_priors_dt(), fast_opts());
  const auto [ess_o, ess_b] = chain.effective_sample_sizes();
  EXPECT_GT(ess_o, 1000.0);
  EXPECT_GT(ess_b, 1000.0);
}

TEST(GibbsFailureTimes, DelayedSShapedAugmentationPath) {
  // alpha0 = 2 exercises the truncated-gamma augmentation branch.
  vbsrm::random::Rng rng(31);
  const auto ft = vbsrm::data::simulate_gamma_nhpp(rng, 60.0, 2.0, 3e-3,
                                                   1500.0);
  const auto chain = b::gibbs_failure_times(
      2.0, ft, b::PriorPair::flat(), fast_opts(32));
  const auto s = chain.summary();
  EXPECT_NEAR(s.mean_omega, 60.0, 25.0);
  EXPECT_NEAR(s.mean_beta, 3e-3, 1.2e-3);
}

TEST(GibbsGrouped, AgreesWithFailureTimeChainOnFineBins) {
  // Grouping into fine bins loses little: the two Gibbs samplers target
  // nearly the same posterior.
  const auto dt = d::datasets::system17_failure_times();
  std::vector<double> bounds;
  for (int i = 1; i <= 160; ++i) bounds.push_back(1000.0 * i);
  const auto dg = dt.to_grouped(bounds);
  const auto ct = b::gibbs_failure_times(1.0, dt, info_priors_dt(),
                                         fast_opts(41));
  const auto cg = b::gibbs_grouped(1.0, dg, info_priors_dt(), fast_opts(42));
  EXPECT_NEAR(cg.summary().mean_omega, ct.summary().mean_omega, 1.0);
  EXPECT_NEAR(cg.summary().mean_beta, ct.summary().mean_beta,
              0.05 * ct.summary().mean_beta);
}

TEST(GibbsGrouped, VariateAccountingIncludesAugmentation) {
  // (3 + 38) variates per iteration for GO: paper's 8,610,000 at the
  // default configuration.
  const auto dg = d::datasets::system17_grouped();
  b::McmcOptions opt;
  opt.seed = 5;
  const auto chain = b::gibbs_grouped(1.0, dg, info_priors_dg(), opt);
  EXPECT_EQ(chain.variates_generated(), 8610000u);
}

TEST(GibbsGrouped, RejectsEmptyData) {
  d::GroupedData empty({1.0, 2.0}, {0, 0});
  EXPECT_THROW(b::gibbs_grouped(1.0, empty, b::PriorPair::flat()),
               std::invalid_argument);
}

TEST(Metropolis, AgreesWithGibbsOnInfoCase) {
  const auto dt = d::datasets::system17_failure_times();
  b::LogPosterior post(1.0, dt, info_priors_dt());
  b::MhOptions opt;
  opt.mcmc = fast_opts(51);
  opt.mcmc.burn_in = 5000;
  const auto mh = b::metropolis(post, opt);
  const auto gibbs =
      b::gibbs_failure_times(1.0, dt, info_priors_dt(), fast_opts(52));
  EXPECT_NEAR(mh.chain.summary().mean_omega, gibbs.summary().mean_omega,
              0.8);
  EXPECT_NEAR(mh.chain.summary().mean_beta, gibbs.summary().mean_beta,
              4e-7);
  // Step adaptation should land acceptance in a healthy band.
  EXPECT_GT(mh.acceptance_rate, 0.15);
  EXPECT_LT(mh.acceptance_rate, 0.6);
}

TEST(ChainReliability, BoundsOrderedAndInUnitInterval) {
  const auto dt = d::datasets::system17_failure_times();
  const auto chain =
      b::gibbs_failure_times(1.0, dt, info_priors_dt(), fast_opts(61));
  const auto r = chain.reliability(1000.0, 0.99);
  EXPECT_GT(r.lower, 0.0);
  EXPECT_LT(r.upper, 1.0);
  EXPECT_LT(r.lower, r.point);
  EXPECT_GT(r.upper, r.point);
}

}  // namespace
