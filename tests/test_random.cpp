// RNG determinism and sampler distributional correctness (moment checks
// with generous tolerances sized to the sample counts, plus KS tests
// against exact CDFs).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "math/specfun.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/gof.hpp"

namespace r = vbsrm::random;
namespace s = vbsrm::stats;
namespace m = vbsrm::math;

namespace {

TEST(Rng, DeterministicGivenSeed) {
  r::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  r::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, DoublesInHalfOpenUnit) {
  r::Rng g(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NextOpenNeverZero) {
  r::Rng g(7);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(g.next_open(), 0.0);
}

TEST(Rng, NextBelowIsUnbiasedish) {
  r::Rng g(11);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[g.next_below(5)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  r::Rng g(3);
  r::Rng h = g.split(1);
  r::Rng h2 = g.split(2);
  EXPECT_NE(h.next_u64(), h2.next_u64());
}

TEST(Exponential, MomentsMatch) {
  r::Rng g(101);
  std::vector<double> x;
  for (int i = 0; i < 200000; ++i) x.push_back(r::sample_exponential(g, 2.5));
  EXPECT_NEAR(s::mean(x), 1.0 / 2.5, 0.005);
  EXPECT_NEAR(s::variance(x), 1.0 / (2.5 * 2.5), 0.01);
}

TEST(Exponential, KsAgainstExactCdf) {
  r::Rng g(102);
  std::vector<double> x;
  for (int i = 0; i < 5000; ++i) x.push_back(r::sample_exponential(g, 1.0));
  const auto ks = s::ks_test(x, [](double t) { return 1.0 - std::exp(-t); });
  EXPECT_GT(ks.p_value, 1e-3);
}

TEST(Exponential, RejectsBadRate) {
  r::Rng g(1);
  EXPECT_THROW(r::sample_exponential(g, 0.0), std::invalid_argument);
}

TEST(Normal, MomentsAndSymmetry) {
  r::Rng g(103);
  std::vector<double> x;
  for (int i = 0; i < 200000; ++i) x.push_back(r::sample_normal(g));
  EXPECT_NEAR(s::mean(x), 0.0, 0.01);
  EXPECT_NEAR(s::variance(x), 1.0, 0.02);
  EXPECT_NEAR(s::skewness(x), 0.0, 0.03);
}

TEST(Normal, KsAgainstExactCdf) {
  r::Rng g(104);
  std::vector<double> x;
  for (int i = 0; i < 5000; ++i) x.push_back(r::sample_normal(g, 1.0, 2.0));
  const auto ks =
      s::ks_test(x, [](double t) { return m::normal_cdf((t - 1.0) / 2.0); });
  EXPECT_GT(ks.p_value, 1e-3);
}

TEST(Gamma, MomentsAcrossShapes) {
  for (double shape : {0.5, 1.0, 2.0, 9.77, 50.0}) {
    r::Rng g(200 + static_cast<std::uint64_t>(shape * 10));
    const double rate = 3.0;
    std::vector<double> x;
    for (int i = 0; i < 100000; ++i) {
      x.push_back(r::sample_gamma(g, shape, rate));
    }
    EXPECT_NEAR(s::mean(x), shape / rate, 0.03 * shape / rate)
        << "shape=" << shape;
    EXPECT_NEAR(s::variance(x), shape / (rate * rate),
                0.08 * shape / (rate * rate))
        << "shape=" << shape;
  }
}

TEST(Gamma, KsAgainstIncompleteGamma) {
  r::Rng g(210);
  std::vector<double> x;
  for (int i = 0; i < 5000; ++i) x.push_back(r::sample_gamma(g, 2.5, 1.5));
  const auto ks =
      s::ks_test(x, [](double t) { return m::gamma_p(2.5, 1.5 * t); });
  EXPECT_GT(ks.p_value, 1e-3);
}

TEST(Gamma, RejectsBadParams) {
  r::Rng g(1);
  EXPECT_THROW(r::sample_gamma(g, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(r::sample_gamma(g, 1.0, -1.0), std::invalid_argument);
}

TEST(Poisson, SmallMeanMoments) {
  r::Rng g(301);
  std::vector<double> x;
  for (int i = 0; i < 200000; ++i) {
    x.push_back(static_cast<double>(r::sample_poisson(g, 3.2)));
  }
  EXPECT_NEAR(s::mean(x), 3.2, 0.02);
  EXPECT_NEAR(s::variance(x), 3.2, 0.06);
}

TEST(Poisson, LargeMeanMoments) {
  r::Rng g(302);
  std::vector<double> x;
  for (int i = 0; i < 100000; ++i) {
    x.push_back(static_cast<double>(r::sample_poisson(g, 750.0)));
  }
  EXPECT_NEAR(s::mean(x), 750.0, 1.0);
  EXPECT_NEAR(s::variance(x), 750.0, 15.0);
}

TEST(Poisson, ZeroMeanIsZero) {
  r::Rng g(1);
  EXPECT_EQ(r::sample_poisson(g, 0.0), 0u);
  EXPECT_THROW(r::sample_poisson(g, -1.0), std::invalid_argument);
}

TEST(Beta, MomentsMatch) {
  r::Rng g(401);
  std::vector<double> x;
  for (int i = 0; i < 100000; ++i) x.push_back(r::sample_beta(g, 2.0, 5.0));
  EXPECT_NEAR(s::mean(x), 2.0 / 7.0, 0.005);
  EXPECT_NEAR(s::variance(x), 2.0 * 5.0 / (49.0 * 8.0), 0.002);
}

TEST(TruncatedGamma, RespectsBoundsInterval) {
  r::Rng g(501);
  for (int i = 0; i < 20000; ++i) {
    const double x = r::sample_truncated_gamma(g, 2.0, 1.0, 1.0, 2.5);
    EXPECT_GT(x, 1.0);
    EXPECT_LE(x, 2.5);
  }
}

TEST(TruncatedGamma, RespectsBoundsTail) {
  r::Rng g(502);
  for (int i = 0; i < 20000; ++i) {
    const double x = r::sample_truncated_gamma(
        g, 1.0, 1.0, 5.0, std::numeric_limits<double>::infinity());
    EXPECT_GT(x, 5.0);
  }
}

TEST(TruncatedGamma, ExponentialTailIsMemoryless) {
  // For shape 1 (exponential), X | X > a  ==  a + Exp(rate).
  r::Rng g(503);
  std::vector<double> x;
  const double a = 3.0, rate = 2.0;
  for (int i = 0; i < 100000; ++i) {
    x.push_back(r::sample_truncated_gamma(
                    g, 1.0, rate, a, std::numeric_limits<double>::infinity()) -
                a);
  }
  EXPECT_NEAR(s::mean(x), 1.0 / rate, 0.01);
  EXPECT_NEAR(s::variance(x), 1.0 / (rate * rate), 0.02);
}

TEST(TruncatedGamma, DeepTailInversionStaysFinite) {
  // Conditioning region carries ~e^{-50} mass: must not hang or return
  // out-of-bounds values.
  r::Rng g(504);
  for (int i = 0; i < 100; ++i) {
    const double x = r::sample_truncated_gamma(
        g, 1.0, 1.0, 50.0, std::numeric_limits<double>::infinity());
    EXPECT_GT(x, 50.0);
    EXPECT_LT(x, 120.0);
    EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(TruncatedGamma, MatchesConditionalMoments) {
  // E[X | a < X <= b] against the closed-form truncated mean.
  r::Rng g(505);
  const double shape = 2.0, rate = 0.7, a = 1.0, b = 4.0;
  std::vector<double> x;
  for (int i = 0; i < 200000; ++i) {
    x.push_back(r::sample_truncated_gamma(g, shape, rate, a, b));
  }
  // E[X; a<X<=b] = shape/rate * (P(shape+1, rate b) - P(shape+1, rate a)).
  const double num = (m::gamma_p(shape + 1.0, rate * b) -
                      m::gamma_p(shape + 1.0, rate * a)) *
                     shape / rate;
  const double den =
      m::gamma_p(shape, rate * b) - m::gamma_p(shape, rate * a);
  EXPECT_NEAR(s::mean(x), num / den, 0.01);
}

TEST(TruncatedGamma, RejectsBadBounds) {
  r::Rng g(1);
  EXPECT_THROW(r::sample_truncated_gamma(g, 1.0, 1.0, 2.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW(r::sample_truncated_gamma(g, 1.0, 1.0, -1.0, 2.0),
               std::invalid_argument);
}

TEST(SampleGammaMany, SizeAndDeterminism) {
  r::Rng g1(9), g2(9);
  const auto a = r::sample_gamma_many(g1, 50, 2.0, 1.0);
  const auto b = r::sample_gamma_many(g2, 50, 2.0, 1.0);
  ASSERT_EQ(a.size(), 50u);
  EXPECT_EQ(a, b);
}

}  // namespace
